//! Expression evaluation.
//!
//! NULL semantics are simplified two-valued logic: any comparison against
//! NULL is false (`IS NULL` exists for explicit checks). This matches what
//! the TPC-C / Sysbench statements rely on.

use crate::ast::BinOp;
use crate::plan::Expr;
use gdb_model::{Datum, GdbError, GdbResult, Row};
use std::cmp::Ordering;

/// Row context: one optional row per slot (inner slot absent while
/// evaluating outer-only expressions).
pub struct RowCtx<'a> {
    pub slots: [Option<&'a Row>; 2],
}

impl<'a> RowCtx<'a> {
    pub fn empty() -> Self {
        RowCtx {
            slots: [None, None],
        }
    }

    pub fn outer(row: &'a Row) -> Self {
        RowCtx {
            slots: [Some(row), None],
        }
    }

    pub fn joined(outer: &'a Row, inner: &'a Row) -> Self {
        RowCtx {
            slots: [Some(outer), Some(inner)],
        }
    }
}

/// Evaluate a bound expression.
pub fn eval(e: &Expr, params: &[Datum], ctx: &RowCtx) -> GdbResult<Datum> {
    Ok(match e {
        Expr::Lit(d) => d.clone(),
        Expr::Param(i) => params
            .get(*i)
            .cloned()
            .ok_or_else(|| GdbError::Execution(format!("missing parameter ${i}")))?,
        Expr::ColRef { slot, idx } => {
            let row = ctx.slots[*slot]
                .ok_or_else(|| GdbError::Internal(format!("no row bound for slot {slot}")))?;
            row.get(*idx)
                .cloned()
                .ok_or_else(|| GdbError::Internal(format!("column {idx} out of range")))?
        }
        Expr::Bin(l, op, r) => {
            match op {
                BinOp::And => {
                    // Short-circuit.
                    if !truthy(&eval(l, params, ctx)?) {
                        return Ok(Datum::Bool(false));
                    }
                    return Ok(Datum::Bool(truthy(&eval(r, params, ctx)?)));
                }
                BinOp::Or => {
                    if truthy(&eval(l, params, ctx)?) {
                        return Ok(Datum::Bool(true));
                    }
                    return Ok(Datum::Bool(truthy(&eval(r, params, ctx)?)));
                }
                _ => {}
            }
            let lv = eval(l, params, ctx)?;
            let rv = eval(r, params, ctx)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(&lv, *op, &rv)?,
                BinOp::Eq => cmp_bool(&lv, &rv, |o| o == Ordering::Equal),
                BinOp::Neq => cmp_bool(&lv, &rv, |o| o != Ordering::Equal),
                BinOp::Lt => cmp_bool(&lv, &rv, |o| o == Ordering::Less),
                BinOp::Lte => cmp_bool(&lv, &rv, |o| o != Ordering::Greater),
                BinOp::Gt => cmp_bool(&lv, &rv, |o| o == Ordering::Greater),
                BinOp::Gte => cmp_bool(&lv, &rv, |o| o != Ordering::Less),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
        Expr::Not(inner) => Datum::Bool(!truthy(&eval(inner, params, ctx)?)),
        Expr::Between { expr, lo, hi } => {
            let v = eval(expr, params, ctx)?;
            let l = eval(lo, params, ctx)?;
            let h = eval(hi, params, ctx)?;
            let ge = matches!(v.sql_cmp(&l), Some(Ordering::Greater | Ordering::Equal));
            let le = matches!(v.sql_cmp(&h), Some(Ordering::Less | Ordering::Equal));
            Datum::Bool(ge && le)
        }
        Expr::InList { expr, list } => {
            let v = eval(expr, params, ctx)?;
            let mut found = false;
            for item in list {
                let iv = eval(item, params, ctx)?;
                if v.sql_cmp(&iv) == Some(Ordering::Equal) {
                    found = true;
                    break;
                }
            }
            Datum::Bool(found)
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, params, ctx)?;
            Datum::Bool(v.is_null() != *negated)
        }
    })
}

/// SQL truthiness: TRUE is true; everything else (FALSE, NULL, non-bools)
/// is false.
pub fn truthy(d: &Datum) -> bool {
    matches!(d, Datum::Bool(true))
}

fn cmp_bool(l: &Datum, r: &Datum, f: impl Fn(Ordering) -> bool) -> Datum {
    match l.sql_cmp(r) {
        Some(o) => Datum::Bool(f(o)),
        None => Datum::Bool(false), // NULL comparisons are false
    }
}

/// Numeric arithmetic. Mixing Int and Decimal yields Decimal (raw scaled
/// value arithmetic — the workload layer owns scale bookkeeping).
fn arith(l: &Datum, op: BinOp, r: &Datum) -> GdbResult<Datum> {
    let (lv, rv, decimal) = match (l, r) {
        (Datum::Int(a), Datum::Int(b)) => (*a, *b, false),
        (Datum::Decimal(a), Datum::Decimal(b)) => (*a, *b, true),
        (Datum::Int(a), Datum::Decimal(b)) | (Datum::Decimal(a), Datum::Int(b)) => (*a, *b, true),
        (Datum::Null, _) | (_, Datum::Null) => return Ok(Datum::Null),
        (a, b) => {
            return Err(GdbError::Execution(format!(
                "cannot apply arithmetic to {a} and {b}"
            )))
        }
    };
    let v = match op {
        BinOp::Add => lv.wrapping_add(rv),
        BinOp::Sub => lv.wrapping_sub(rv),
        BinOp::Mul => lv.wrapping_mul(rv),
        BinOp::Div => {
            if rv == 0 {
                return Err(GdbError::Execution("division by zero".into()));
            }
            lv / rv
        }
        _ => unreachable!(),
    };
    Ok(if decimal {
        Datum::Decimal(v)
    } else {
        Datum::Int(v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i64) -> Expr {
        Expr::Lit(Datum::Int(v))
    }

    fn no_rows() -> RowCtx<'static> {
        RowCtx::empty()
    }

    #[test]
    fn arithmetic_and_precedence_results() {
        let e = Expr::Bin(
            Box::new(lit(2)),
            BinOp::Add,
            Box::new(Expr::Bin(Box::new(lit(3)), BinOp::Mul, Box::new(lit(4)))),
        );
        assert_eq!(eval(&e, &[], &no_rows()).unwrap(), Datum::Int(14));
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = Expr::Bin(Box::new(lit(1)), BinOp::Div, Box::new(lit(0)));
        assert!(eval(&e, &[], &no_rows()).is_err());
    }

    #[test]
    fn decimal_int_mixing() {
        let e = Expr::Bin(
            Box::new(Expr::Lit(Datum::Decimal(150))),
            BinOp::Add,
            Box::new(lit(50)),
        );
        assert_eq!(eval(&e, &[], &no_rows()).unwrap(), Datum::Decimal(200));
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        let e = Expr::Bin(
            Box::new(Expr::Lit(Datum::Null)),
            BinOp::Add,
            Box::new(lit(1)),
        );
        assert_eq!(eval(&e, &[], &no_rows()).unwrap(), Datum::Null);
    }

    #[test]
    fn null_comparisons_are_false() {
        let e = Expr::Bin(
            Box::new(Expr::Lit(Datum::Null)),
            BinOp::Eq,
            Box::new(lit(1)),
        );
        assert_eq!(eval(&e, &[], &no_rows()).unwrap(), Datum::Bool(false));
        let e2 = Expr::Bin(
            Box::new(Expr::Lit(Datum::Null)),
            BinOp::Neq,
            Box::new(lit(1)),
        );
        assert_eq!(eval(&e2, &[], &no_rows()).unwrap(), Datum::Bool(false));
    }

    #[test]
    fn params_resolve_and_missing_params_error() {
        let e = Expr::Param(0);
        assert_eq!(
            eval(&e, &[Datum::Int(9)], &no_rows()).unwrap(),
            Datum::Int(9)
        );
        assert!(eval(&Expr::Param(3), &[Datum::Int(9)], &no_rows()).is_err());
    }

    #[test]
    fn column_refs_read_rows() {
        let outer = Row(vec![Datum::Int(1), Datum::Text("a".into())]);
        let inner = Row(vec![Datum::Int(2)]);
        let ctx = RowCtx::joined(&outer, &inner);
        assert_eq!(
            eval(&Expr::ColRef { slot: 0, idx: 1 }, &[], &ctx).unwrap(),
            Datum::Text("a".into())
        );
        assert_eq!(
            eval(&Expr::ColRef { slot: 1, idx: 0 }, &[], &ctx).unwrap(),
            Datum::Int(2)
        );
    }

    #[test]
    fn between_in_isnull() {
        let between = Expr::Between {
            expr: Box::new(lit(5)),
            lo: Box::new(lit(1)),
            hi: Box::new(lit(10)),
        };
        assert_eq!(eval(&between, &[], &no_rows()).unwrap(), Datum::Bool(true));
        let inlist = Expr::InList {
            expr: Box::new(lit(3)),
            list: vec![lit(1), lit(2), lit(3)],
        };
        assert_eq!(eval(&inlist, &[], &no_rows()).unwrap(), Datum::Bool(true));
        let isnull = Expr::IsNull {
            expr: Box::new(Expr::Lit(Datum::Null)),
            negated: false,
        };
        assert_eq!(eval(&isnull, &[], &no_rows()).unwrap(), Datum::Bool(true));
        let isnotnull = Expr::IsNull {
            expr: Box::new(lit(1)),
            negated: true,
        };
        assert_eq!(
            eval(&isnotnull, &[], &no_rows()).unwrap(),
            Datum::Bool(true)
        );
    }

    #[test]
    fn and_or_short_circuit() {
        // (1 = 1) OR (1 / 0) — the division must never run.
        let bad = Expr::Bin(Box::new(lit(1)), BinOp::Div, Box::new(lit(0)));
        let ok = Expr::Bin(Box::new(lit(1)), BinOp::Eq, Box::new(lit(1)));
        let e = Expr::Bin(Box::new(ok.clone()), BinOp::Or, Box::new(bad.clone()));
        assert_eq!(eval(&e, &[], &no_rows()).unwrap(), Datum::Bool(true));
        // (1 = 2) AND (1 / 0) — also short-circuits.
        let ne = Expr::Bin(Box::new(lit(1)), BinOp::Eq, Box::new(lit(2)));
        let e2 = Expr::Bin(Box::new(ne), BinOp::And, Box::new(bad));
        assert_eq!(eval(&e2, &[], &no_rows()).unwrap(), Datum::Bool(false));
    }

    #[test]
    fn not_inverts() {
        let e = Expr::Not(Box::new(Expr::Lit(Datum::Bool(false))));
        assert_eq!(eval(&e, &[], &no_rows()).unwrap(), Datum::Bool(true));
    }
}
