//! Ablation — commit-wait cost vs clock quality (paper §III).
//!
//! The GClock commit wait is `≈ T_err = T_sync + T_drift`. Sweeping the
//! clock-sync round trip (the paper's hardware achieves ≤ 60 µs) shows how
//! timestamp-oracle quality turns into commit latency — the reason the
//! paper deploys GPS/atomic time devices rather than NTP (whose errors are
//! milliseconds, as in CockroachDB's HLC approach).
//!
//! Regenerate with: `cargo run -p gdb-bench --release --bin ablation_clock`

use gdb_bench::{print_table, tpcc_run, BenchParams};
use gdb_simclock::GClockConfig;
use gdb_simnet::SimDuration;
use gdb_workloads::tpcc::TpccMix;
use globaldb::ClusterConfig;

fn main() {
    let params = BenchParams::from_env();
    let sync_rtts_us = [10u64, 60, 500, 2_000, 10_000];
    let mut rows = Vec::new();
    for &rtt_us in &sync_rtts_us {
        let config = ClusterConfig {
            gclock: GClockConfig {
                sync_rtt: SimDuration::from_micros(rtt_us),
                ..GClockConfig::default()
            },
            ..ClusterConfig::globaldb_three_city()
        };
        let (cluster, report) = tpcc_run(config, &params, TpccMix::standard(), |wl| {
            wl.set_all_local();
        });
        let commits = report.total_commits().max(1);
        let mean_wait_us = cluster.db.stats().commit_wait_total.as_micros() as f64 / commits as f64;
        rows.push(vec![
            format!("{rtt_us} us"),
            format!("{:.0}", report.tpmc()),
            format!("{:.0} us", mean_wait_us),
            format!("{}", report.mean_latency("new_order")),
        ]);
    }
    print_table(
        "Ablation — clock sync quality vs commit wait (GClock, Three-City)",
        &[
            "sync RTT (T_sync)",
            "tpmC (sim)",
            "mean commit wait",
            "NewOrder mean",
        ],
        &rows,
    );
    println!(
        "Expected: commit wait tracks the clock error bound; NTP-grade \
         (ms) errors visibly tax every commit, the paper's 60 us device \
         does not."
    );
}
