//! Test-runner configuration and failure type.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;
