//! The commit pipeline, structured as explicit phases (paper §III/§IV):
//!
//! 1. **Prepare** ([`TxnHandle::prepare_phase`]) — the 2PC prepare round
//!    across written shards (multi-shard only), each branch durably
//!    replicating writes + PREPARE;
//! 2. **Commit point** ([`TxnHandle::commit_point_phase`]) — obtain the
//!    commit timestamp per the TM mode (local GClock read, GTM counter
//!    round trip, or DUAL);
//! 3. **Commit wait** — the clock-uncertainty (or DUAL bridging) wait;
//! 4. **Replicate-ack** ([`TxnHandle::replicate_phase`]) — ship the
//!    commit record to each shard, install versions, release locks, and
//!    collect the per-shard acks.
//!
//! Each phase returns a state struct carrying its timing boundaries; the
//! per-shard 2PC branches are kept so observability can record them as
//! child spans of the prepare / replication-ack phases.

use super::{TxnHandle, OP_MSG_BYTES};
use crate::net::RpcKind;
use crate::stats::TxnOutcome;
use gdb_model::{Datum, GdbError, GdbResult, Timestamp};
use gdb_obs::SpanKind;
use gdb_replication::{quorum_wait, ReplicationMode};
use gdb_simnet::{SimDuration, SimTime};
use gdb_txnmgr::{CommitPlan, TmMode};
use gdb_wal::RedoPayload;

/// One shard's branch of a 2PC round: out-message through ack.
#[derive(Debug, Clone, Copy)]
struct BranchAck {
    shard: usize,
    acked: SimTime,
}

/// Outcome of the 2PC prepare round. Empty (`prepare_done` = phase start,
/// no branches) for single-shard commits, which skip the round.
struct PrepareOutcome {
    prepare_done: SimTime,
    branches: Vec<BranchAck>,
}

/// Outcome of commit-timestamp acquisition.
struct CommitPoint {
    commit_ts: Timestamp,
    /// Commit wait imposed by the plan (GClock uncertainty window or DUAL
    /// bridging wait; zero for a pure GTM counter commit).
    clock_wait: SimDuration,
}

/// Outcome of the commit-record fan-out after the commit point.
struct ReplicateOutcome {
    /// When the commit wait ended (versions may not become visible, nor
    /// locks release, before this instant).
    wait_end: SimTime,
    /// When the last shard ack returned: the client-visible commit time.
    ack: SimTime,
    branches: Vec<BranchAck>,
}

/// The full set of write-phase boundaries, passed to phase recording.
struct WritePhases {
    prepare_done: SimTime,
    wait_end: SimTime,
    ack: SimTime,
    prepare_branches: Vec<BranchAck>,
    commit_branches: Vec<BranchAck>,
}

impl<'a> TxnHandle<'a> {
    /// Estimated redo bytes for one shard's portion of the write set.
    fn redo_bytes(&self, shard: usize) -> u64 {
        let mut bytes = 64u64; // pending + commit framing
        for w in &self.write_log {
            if w.shard == shard {
                bytes += 48;
                if let Some(r) = &w.row {
                    bytes +=
                        r.0.iter()
                            .map(|d| match d {
                                Datum::Text(s) => s.len() as u64 + 2,
                                _ => 9,
                            })
                            .sum::<u64>();
                }
            }
        }
        bytes
    }

    /// Strongest replication mode demanded by the tables this transaction
    /// wrote on `shard` (per-table sync overrides, else the cluster mode).
    fn shard_replication_mode(&self, shard: usize) -> ReplicationMode {
        fn rank(m: ReplicationMode) -> u8 {
            match m {
                ReplicationMode::Async => 0,
                ReplicationMode::SyncLocalQuorum => 1,
                ReplicationMode::SyncRemoteQuorum { .. } => 2,
            }
        }
        let mut mode = self.db.config.replication;
        for w in &self.write_log {
            if w.shard != shard {
                continue;
            }
            if let Some(&m) = self.db.table_replication.get(&w.table) {
                if rank(m) > rank(mode) {
                    mode = m;
                }
            }
        }
        mode
    }

    /// Extra commit wait imposed by synchronous replication for one shard.
    fn sync_quorum_wait(&mut self, shard: usize, bytes: u64) -> GdbResult<SimDuration> {
        let mode = self.shard_replication_mode(shard);
        let db = &mut *self.db;
        let primary = db.shards[shard].primary;
        let primary_region = db.shards[shard].region;
        match mode {
            ReplicationMode::Async => Ok(SimDuration::ZERO),
            ReplicationMode::SyncLocalQuorum => {
                // All same-region replicas; if none exist (geo placement),
                // the nearest replica stands in.
                let nodes: Vec<gdb_simnet::NetNodeId> = db.shards[shard]
                    .replicas
                    .iter()
                    .filter(|r| r.region == primary_region)
                    .map(|r| r.node)
                    .collect();
                let delays: Vec<Option<SimDuration>> = if nodes.is_empty() {
                    let all: Vec<gdb_simnet::NetNodeId> =
                        db.shards[shard].replicas.iter().map(|r| r.node).collect();
                    let mut ds: Vec<Option<SimDuration>> = Vec::new();
                    for node in all {
                        ds.push(db.plane.ship_rtt(
                            &mut db.topo,
                            RpcKind::SyncQuorumShip,
                            primary,
                            node,
                            bytes,
                        ));
                    }
                    let min = ds.iter().flatten().min().copied();
                    vec![min]
                } else {
                    let mut ds: Vec<Option<SimDuration>> = Vec::new();
                    for n in nodes {
                        ds.push(db.plane.ship_rtt(
                            &mut db.topo,
                            RpcKind::SyncQuorumShip,
                            primary,
                            n,
                            bytes,
                        ));
                    }
                    ds
                };
                let q = delays.iter().flatten().count();
                quorum_wait(&delays, q.max(1)).ok_or_else(|| {
                    GdbError::NodeUnavailable("sync local quorum unreachable".into())
                })
            }
            ReplicationMode::SyncRemoteQuorum { quorum } => {
                let single_region = db.regions.len() == 1;
                let targets: Vec<gdb_simnet::NetNodeId> = db.shards[shard]
                    .replicas
                    .iter()
                    .filter(|r| r.region != primary_region || single_region)
                    .map(|r| r.node)
                    .collect();
                let mut delays: Vec<Option<SimDuration>> = Vec::new();
                for n in targets {
                    delays.push(db.plane.ship_rtt(
                        &mut db.topo,
                        RpcKind::SyncQuorumShip,
                        primary,
                        n,
                        bytes,
                    ));
                }
                quorum_wait(&delays, quorum).ok_or_else(|| {
                    GdbError::NodeUnavailable("sync remote quorum unreachable".into())
                })
            }
        }
    }

    /// Phase 1 — the 2PC prepare round (multi-shard only): writes + PREPARE
    /// must be durable (and quorum-replicated in sync modes) on every shard
    /// before the commit point.
    fn prepare_phase(
        &mut self,
        write_shards: &[usize],
        multi_shard: bool,
    ) -> GdbResult<PrepareOutcome> {
        let start = self.now;
        let mut out = PrepareOutcome {
            prepare_done: start,
            branches: Vec::new(),
        };
        if !multi_shard {
            return Ok(out);
        }
        let cn_node = self.db.cns[self.cn].node;
        for &s in write_shards {
            let bytes = self.redo_bytes(s);
            let db = &mut *self.db;
            let primary = db.shards[s].primary;
            let ow = db
                .plane
                .send(&mut db.topo, RpcKind::TwoPcPrepare, cn_node, primary, bytes)
                .ok_or_else(|| GdbError::NodeUnavailable("shard unreachable".into()))?;
            let arrive = start + ow;
            db.shards[s]
                .log
                .append(arrive, self.txn, RedoPayload::Prepare);
            let q = self.sync_quorum_wait(s, bytes)?;
            let db = &mut *self.db;
            let back = db
                .plane
                .send(
                    &mut db.topo,
                    RpcKind::TwoPcPrepare,
                    primary,
                    cn_node,
                    OP_MSG_BYTES,
                )
                .ok_or_else(|| GdbError::NodeUnavailable("shard unreachable".into()))?;
            let acked = arrive + q + back;
            out.prepare_done = out.prepare_done.max(acked);
            out.branches.push(BranchAck { shard: s, acked });
        }
        self.now = out.prepare_done;
        Ok(out)
    }

    /// Phase 2 — the commit point: obtain the commit timestamp per the TM
    /// mode's plan.
    fn commit_point_phase(&mut self) -> GdbResult<CommitPoint> {
        self.db.sync_cn_clock(self.cn, self.now);
        let plan = self.db.cns[self.cn].tm.plan_commit(self.now);
        let cn_node = self.db.cns[self.cn].node;
        let (commit_ts, clock_wait) = match plan {
            CommitPlan::GClockLocal { ts, commit_wait } => (ts, commit_wait),
            CommitPlan::ViaGtmCounter => {
                let db = &mut *self.db;
                let gtm_node = db.gtm_node;
                let rtt = db
                    .plane
                    .rtt(&mut db.topo, RpcKind::GtmCommitTs, cn_node, gtm_node)
                    .ok_or_else(|| GdbError::NodeUnavailable("GTM unreachable".into()))?;
                self.now += rtt;
                // A straggler GTM transaction after the cluster moved to
                // GClock aborts here (paper §III-A); `commit` rolls back.
                db.gtm.commit_gtm()?
            }
            CommitPlan::ViaGtmDual { gclock_ts } => {
                let db = &mut *self.db;
                let gtm_node = db.gtm_node;
                let rtt = db
                    .plane
                    .rtt(&mut db.topo, RpcKind::GtmDualCommit, cn_node, gtm_node)
                    .ok_or_else(|| GdbError::NodeUnavailable("GTM unreachable".into()))?;
                self.now += rtt;
                let ts = db.gtm.commit_dual(gclock_ts);
                let wait = db.cns[self.cn].tm.dual_post_wait(self.now, ts);
                (ts, wait)
            }
        };
        self.db.stats.commit_wait_total += clock_wait;
        Ok(CommitPoint {
            commit_ts,
            clock_wait,
        })
    }

    /// Phases 3+4 — commit wait, then the commit-record fan-out: ship the
    /// commit record to each shard; versions install and locks release at
    /// each shard's apply instant — but never before the commit wait ends
    /// (Spanner-style: releasing a hot-row lock early would let the next
    /// writer obtain a *smaller* timestamp than this commit's).
    fn replicate_phase(
        &mut self,
        write_shards: &[usize],
        multi_shard: bool,
        point: &CommitPoint,
    ) -> GdbResult<ReplicateOutcome> {
        let commit_ts = point.commit_ts;
        let wait_end = self.now + point.clock_wait;
        let cn_node = self.db.cns[self.cn].node;
        let mut out = ReplicateOutcome {
            wait_end,
            ack: wait_end,
            branches: Vec::new(),
        };
        for &s in write_shards {
            let bytes = if multi_shard {
                OP_MSG_BYTES // writes shipped during prepare
            } else {
                self.redo_bytes(s)
            };
            let db = &mut *self.db;
            let primary = db.shards[s].primary;
            let ow = db
                .plane
                .send(&mut db.topo, RpcKind::TwoPcCommit, cn_node, primary, bytes)
                .ok_or_else(|| GdbError::NodeUnavailable("shard unreachable".into()))?;
            // Single-shard sync replication waits at commit time. The
            // quorum check runs *before* the commit record is appended: if
            // the quorum is unreachable the whole transaction must roll
            // back, and a commit record already in the log would replicate
            // a commit the primary never installed.
            let q = if multi_shard {
                SimDuration::ZERO
            } else {
                self.sync_quorum_wait(s, bytes)?
            };
            let apply_at = self.now + ow;
            let visible_at = apply_at.max(wait_end);
            let payload = if multi_shard {
                RedoPayload::CommitPrepared { commit_ts }
            } else {
                RedoPayload::Commit { commit_ts }
            };
            self.commit_appended = true;
            self.db.shards[s].log.append(apply_at, self.txn, payload);
            let shard_ack = apply_at + q;
            let db = &mut *self.db;
            let back = db
                .plane
                .send(
                    &mut db.topo,
                    RpcKind::TwoPcCommit,
                    primary,
                    cn_node,
                    OP_MSG_BYTES,
                )
                .ok_or_else(|| GdbError::NodeUnavailable("shard unreachable".into()))?;
            let acked = (shard_ack + back).max(wait_end);
            out.ack = out.ack.max(acked);
            out.branches.push(BranchAck { shard: s, acked });

            // Install the versions on the primary at the apply instant.
            for w in &self.write_log {
                if w.shard != s {
                    continue;
                }
                match &w.row {
                    Some(r) => self.db.shards[s].storage.apply_put(
                        w.table,
                        w.key.clone(),
                        r.clone(),
                        commit_ts,
                        visible_at,
                    )?,
                    None => self.db.shards[s].storage.apply_delete(
                        w.table,
                        w.key.clone(),
                        commit_ts,
                        visible_at,
                    )?,
                }
            }
            // Pin the locks to the visibility instant.
            for (ls, table, key) in &self.locked {
                if ls == &s {
                    self.db.shards[s]
                        .storage
                        .locks
                        .set_release(*table, key, self.txn, visible_at);
                }
            }
        }
        self.now = out.ack;
        Ok(out)
    }

    /// Commit the transaction; consumes the handle's buffered writes.
    ///
    /// On a commit-time failure before the commit record ships (quorum
    /// unreachable, GTM unreachable, straggler GTM abort), the transaction
    /// rolls back cleanly: locks release and ABORT records resolve any
    /// PREPARE / PENDING_COMMIT state already replicated — otherwise a
    /// fault hitting mid-commit would leave replica tuples locked forever.
    pub fn commit(mut self) -> GdbResult<TxnOutcome> {
        self.finished = true;
        match self.try_commit() {
            Ok(outcome) => Ok(outcome),
            Err(e) => {
                if !self.commit_appended {
                    self.abort_inner();
                }
                Err(e)
            }
        }
    }

    fn try_commit(&mut self) -> GdbResult<TxnOutcome> {
        let exec_done = self.now;

        if self.shards_written.is_empty() {
            // Pure read: nothing to make durable.
            self.record_phases(exec_done, None);
            return Ok(TxnOutcome {
                commit_ts: None,
                snapshot: self.snapshot,
                completed_at: self.now,
                latency: self.now.since(self.started_at),
                shards_written: vec![],
                used_replica: self.used_replica,
                aborted: false,
            });
        }

        let write_shards: Vec<usize> = self.shards_written.iter().copied().collect();
        let multi_shard = write_shards.len() > 1;

        let prepare = self.prepare_phase(&write_shards, multi_shard)?;
        let point = self.commit_point_phase()?;
        let replicate = self.replicate_phase(&write_shards, multi_shard, &point)?;

        self.db.cns[self.cn].tm.finish_commit(point.commit_ts);
        if self.db.cns[self.cn].tm.mode == TmMode::GClock {
            // Asynchronous observe so the GTM can later take over without
            // waiting (Fig. 3) and DUAL timestamps bridge (Listing 1).
            self.db.gtm.observe_commit(point.commit_ts);
        }
        self.record_phases(
            exec_done,
            Some(WritePhases {
                prepare_done: prepare.prepare_done,
                wait_end: replicate.wait_end,
                ack: replicate.ack,
                prepare_branches: prepare.branches,
                commit_branches: replicate.branches,
            }),
        );

        Ok(TxnOutcome {
            commit_ts: Some(point.commit_ts),
            snapshot: self.snapshot,
            completed_at: self.now,
            latency: self.now.since(self.started_at),
            shards_written: write_shards,
            used_replica: self.used_replica,
            aborted: false,
        })
    }

    /// Record the per-phase latency breakdown (and, when tracing is on,
    /// the transaction's span tree). The phases tile the transaction:
    /// begin → snapshot acquire → execute, then for writes prepare →
    /// commit-wait → replication-ack. The commit-wait phase deliberately
    /// includes the commit-timestamp acquisition (a GTM round trip in
    /// centralized mode, the clock-uncertainty wait in GClock mode) —
    /// that sum is exactly the per-commit cost Fig. 6a contrasts.
    ///
    /// The parallel 2PC branches become children of the `prepare` /
    /// `replication_ack` spans: each branch starts at the phase start and
    /// ends at its shard's ack, so together they cover the parent exactly
    /// (the phase ends when its slowest branch does).
    fn record_phases(&mut self, exec_done: SimTime, write: Option<WritePhases>) {
        let tm = self.db.hot.txn;
        let m = &mut self.db.obs.metrics;
        m.record(tm.phase_snapshot_us, self.begin_done.since(self.started_at));
        m.record(tm.phase_execute_us, exec_done.since(self.begin_done));
        if let Some(w) = &write {
            m.record(tm.phase_prepare_us, w.prepare_done.since(exec_done));
            m.record(tm.phase_commit_wait_us, w.wait_end.since(w.prepare_done));
            m.record(tm.phase_replication_ack_us, w.ack.since(w.wait_end));
        }
        let t = &mut self.db.obs.tracer;
        if t.is_enabled() {
            let label = self.txn.0;
            let root = t.record(SpanKind::Txn, label, self.started_at, self.now);
            t.record_child(
                root,
                SpanKind::SnapshotAcquire,
                label,
                self.started_at,
                self.begin_done,
            );
            t.record_child(root, SpanKind::Execute, label, self.begin_done, exec_done);
            if let Some(w) = &write {
                let prepare =
                    t.record_child(root, SpanKind::Prepare, label, exec_done, w.prepare_done);
                for b in &w.prepare_branches {
                    t.record_child(
                        prepare,
                        SpanKind::TwoPcBranch,
                        b.shard as u64,
                        exec_done,
                        b.acked,
                    );
                }
                t.record_child(
                    root,
                    SpanKind::CommitWait,
                    label,
                    w.prepare_done,
                    w.wait_end,
                );
                let repl = t.record_child(root, SpanKind::ReplicationAck, label, w.wait_end, w.ack);
                for b in &w.commit_branches {
                    t.record_child(
                        repl,
                        SpanKind::TwoPcBranch,
                        b.shard as u64,
                        w.wait_end,
                        b.acked,
                    );
                }
            }
        }
    }
}
