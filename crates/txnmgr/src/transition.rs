//! The zero-downtime GTM↔GClock transition protocol (paper §III-A,
//! Figs. 2–3).
//!
//! GTM→GClock (Fig. 2):
//! 1. The GTM server switches to DUAL and broadcasts `SwitchToDual`.
//! 2. Each CN switches to DUAL and acks with its current clock error
//!    bound; the server tracks the maximum. Transactions keep flowing the
//!    whole time: DUAL commits bridge via Eq. 3; straggling GTM commits
//!    wait `2 × max_err` (preventing the Listing-1 anomaly).
//! 3. Once all CNs acked, the server holds DUAL for another
//!    `2 × max_err`, then switches to GClock and broadcasts
//!    `SwitchToGClock`. Straggling GTM transactions that try to commit
//!    after this abort.
//!
//! GClock→GTM (Fig. 3) — e.g. after a clock-synchronization failure:
//! 1. Server → DUAL, broadcast `SwitchToDual`.
//! 2. CN acks carry their current GClock upper bound; the server raises
//!    its counter above all of them, so every future GTM timestamp exceeds
//!    every issued GClock timestamp. No hold wait is needed and no
//!    transaction aborts.
//! 3. Once all acked, server → GTM, broadcast `SwitchToGtm`.

use crate::cn::CnTm;
use crate::gtm::GtmServer;
use crate::mode::{TmMode, TmMsg};
use gdb_simnet::{SimDuration, SimTime};
use std::collections::HashSet;

/// Which way the cluster is transitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionDirection {
    /// GTM → GClock (Fig. 2): activate decentralized timestamps.
    ToGClock,
    /// GClock → GTM (Fig. 3): fall back to the centralized counter.
    ToGtm,
}

/// Side effects the cluster layer must enact (send messages with network
/// latency, arm timers on the event queue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransitionEvent {
    SendToCn {
        cn: usize,
        msg: TmMsg,
    },
    /// Hold DUAL mode for this long before finalizing (Fig. 2 only).
    StartHoldTimer {
        duration: SimDuration,
    },
    /// The transition finished; all nodes are in the target mode.
    Completed {
        direction: TransitionDirection,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    WaitDualAcks,
    Holding,
    WaitFinalAcks,
}

/// GTM-server-side orchestration state.
#[derive(Debug)]
pub struct TransitionOrchestrator {
    cn_count: usize,
    direction: Option<TransitionDirection>,
    phase: Phase,
    pending: HashSet<usize>,
}

impl TransitionOrchestrator {
    pub fn new(cn_count: usize) -> Self {
        TransitionOrchestrator {
            cn_count,
            direction: None,
            phase: Phase::Idle,
            pending: HashSet::new(),
        }
    }

    pub fn in_progress(&self) -> bool {
        self.phase != Phase::Idle
    }

    pub fn direction(&self) -> Option<TransitionDirection> {
        self.direction
    }

    /// Begin a transition. The server immediately enters DUAL mode and the
    /// cluster stays fully online.
    pub fn start(
        &mut self,
        direction: TransitionDirection,
        gtm: &mut GtmServer,
    ) -> Vec<TransitionEvent> {
        assert!(!self.in_progress(), "transition already in progress");
        self.direction = Some(direction);
        self.phase = Phase::WaitDualAcks;
        self.pending = (0..self.cn_count).collect();
        gtm.reset_err_tracking();
        gtm.set_mode(TmMode::Dual);
        (0..self.cn_count)
            .map(|cn| TransitionEvent::SendToCn {
                cn,
                msg: TmMsg::SwitchToDual,
            })
            .collect()
    }

    /// Handle a CN's DUAL acknowledgment.
    pub fn on_ack_dual(
        &mut self,
        cn: usize,
        err_bound: SimDuration,
        gclock_upper: gdb_model::Timestamp,
        gtm: &mut GtmServer,
    ) -> Vec<TransitionEvent> {
        if self.phase != Phase::WaitDualAcks {
            return Vec::new();
        }
        gtm.record_err_bound(err_bound);
        // Raise the counter above every timestamp the CN issued under
        // GClock (needed for ToGtm; harmless for ToGClock).
        gtm.observe_commit(gclock_upper);
        self.pending.remove(&cn);
        if !self.pending.is_empty() {
            return Vec::new();
        }
        match self.direction.expect("direction set while in progress") {
            TransitionDirection::ToGClock => {
                // All CNs in DUAL: hold for 2 × max err (Fig. 2), then
                // finalize via on_hold_elapsed.
                self.phase = Phase::Holding;
                vec![TransitionEvent::StartHoldTimer {
                    duration: gtm.max_err_seen() * 2,
                }]
            }
            TransitionDirection::ToGtm => {
                // No hold needed (Fig. 3): counter already exceeds every
                // GClock timestamp.
                self.finalize(gtm)
            }
        }
    }

    /// The DUAL hold timer elapsed (Fig. 2 path).
    pub fn on_hold_elapsed(&mut self, gtm: &mut GtmServer) -> Vec<TransitionEvent> {
        if self.phase != Phase::Holding {
            return Vec::new();
        }
        self.finalize(gtm)
    }

    fn finalize(&mut self, gtm: &mut GtmServer) -> Vec<TransitionEvent> {
        let direction = self.direction.expect("in progress");
        let (mode, msg) = match direction {
            TransitionDirection::ToGClock => (TmMode::GClock, TmMsg::SwitchToGClock),
            TransitionDirection::ToGtm => (TmMode::Gtm, TmMsg::SwitchToGtm),
        };
        gtm.set_mode(mode);
        self.phase = Phase::WaitFinalAcks;
        self.pending = (0..self.cn_count).collect();
        (0..self.cn_count)
            .map(|cn| TransitionEvent::SendToCn {
                cn,
                msg: msg.clone(),
            })
            .collect()
    }

    /// Handle a CN's final-mode acknowledgment.
    pub fn on_ack_final(&mut self, cn: usize) -> Vec<TransitionEvent> {
        if self.phase != Phase::WaitFinalAcks {
            return Vec::new();
        }
        self.pending.remove(&cn);
        if self.pending.is_empty() {
            let direction = self.direction.take().expect("in progress");
            self.phase = Phase::Idle;
            vec![TransitionEvent::Completed { direction }]
        } else {
            Vec::new()
        }
    }
}

/// CN-side message handling: switch mode, produce the ack.
pub fn handle_cn_msg(cn_index: usize, cn: &mut CnTm, msg: &TmMsg, now: SimTime) -> Option<TmMsg> {
    match msg {
        TmMsg::SwitchToDual => {
            cn.mode = TmMode::Dual;
            Some(TmMsg::AckDual {
                cn: cn_index,
                err_bound: cn.gclock.t_err(now),
                gclock_upper: cn.gclock.now_bound(now).latest,
            })
        }
        TmMsg::SwitchToGClock => {
            cn.mode = TmMode::GClock;
            Some(TmMsg::AckFinal { cn: cn_index })
        }
        TmMsg::SwitchToGtm => {
            cn.mode = TmMode::Gtm;
            Some(TmMsg::AckFinal { cn: cn_index })
        }
        TmMsg::AckDual { .. } | TmMsg::AckFinal { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdb_model::Timestamp;
    use gdb_simclock::{GClock, GClockConfig};

    fn make_cn(sync_rtt_us: u64, at: SimTime) -> CnTm {
        let mut g = GClock::new(
            sync_rtt_us, // reuse as seed for variety
            0.0,
            GClockConfig {
                sync_rtt: SimDuration::from_micros(sync_rtt_us),
                ..GClockConfig::default()
            },
        );
        g.sync(at);
        CnTm::new(TmMode::Gtm, g)
    }

    /// Walk the full Fig. 2 protocol: GTM → DUAL (all CNs) → hold → GClock.
    #[test]
    fn full_to_gclock_transition() {
        let t0 = SimTime::from_secs(1);
        let mut gtm = GtmServer::new();
        let mut cns = [make_cn(60, t0), make_cn(80, t0), make_cn(40, t0)];
        let mut orch = TransitionOrchestrator::new(3);

        let evs = orch.start(TransitionDirection::ToGClock, &mut gtm);
        assert_eq!(evs.len(), 3);
        assert_eq!(gtm.mode(), TmMode::Dual);
        assert!(orch.in_progress());

        // Deliver SwitchToDual to each CN and feed acks back.
        let mut hold = None;
        for (i, cn) in cns.iter_mut().enumerate() {
            let ack = handle_cn_msg(i, cn, &TmMsg::SwitchToDual, t0).unwrap();
            assert_eq!(cn.mode, TmMode::Dual);
            if let TmMsg::AckDual {
                cn: idx,
                err_bound,
                gclock_upper,
            } = ack
            {
                let evs = orch.on_ack_dual(idx, err_bound, gclock_upper, &mut gtm);
                if !evs.is_empty() {
                    hold = Some(evs);
                }
            } else {
                panic!("expected AckDual");
            }
        }
        // Hold timer sized at 2 × the max reported error bound (80 µs CN).
        let hold = hold.expect("hold timer after last ack");
        match &hold[0] {
            TransitionEvent::StartHoldTimer { duration } => {
                assert_eq!(*duration, SimDuration::from_micros(160));
            }
            other => panic!("{other:?}"),
        }

        // While holding, GTM commits must pay the 2×err wait.
        let (_, wait) = gtm.commit_gtm().unwrap();
        assert_eq!(wait, SimDuration::from_micros(160));

        let evs = orch.on_hold_elapsed(&mut gtm);
        assert_eq!(gtm.mode(), TmMode::GClock);
        assert_eq!(evs.len(), 3);
        for (i, cn) in cns.iter_mut().enumerate() {
            let ack = handle_cn_msg(i, cn, &TmMsg::SwitchToGClock, t0).unwrap();
            assert_eq!(cn.mode, TmMode::GClock);
            if let TmMsg::AckFinal { cn: idx } = ack {
                let evs = orch.on_ack_final(idx);
                if i == 2 {
                    assert_eq!(
                        evs,
                        vec![TransitionEvent::Completed {
                            direction: TransitionDirection::ToGClock
                        }]
                    );
                }
            }
        }
        assert!(!orch.in_progress());

        // Straggler GTM-mode commit now aborts.
        assert!(gtm.commit_gtm().is_err());
    }

    /// Fig. 3: falling back to GTM requires no hold and no aborts, and the
    /// counter exceeds every issued GClock timestamp.
    #[test]
    fn full_to_gtm_transition() {
        let t0 = SimTime::from_secs(100);
        let mut gtm = GtmServer::new();
        let mut cns = vec![make_cn(60, t0), make_cn(30, t0)];
        for cn in &mut cns {
            cn.mode = TmMode::GClock;
        }
        // Some GClock commits happened (timestamps around 100 s in µs).
        let biggest = cns[0].gclock.assign_timestamp(t0);
        gtm.observe_commit(Timestamp(50)); // stale observation

        let mut orch = TransitionOrchestrator::new(2);
        let _ = orch.start(TransitionDirection::ToGtm, &mut gtm);
        let mut done_events = Vec::new();
        for (i, cn) in cns.iter_mut().enumerate() {
            let ack = handle_cn_msg(i, cn, &TmMsg::SwitchToDual, t0).unwrap();
            if let TmMsg::AckDual {
                cn: idx,
                err_bound,
                gclock_upper,
            } = ack
            {
                done_events = orch.on_ack_dual(idx, err_bound, gclock_upper, &mut gtm);
            }
        }
        // No hold timer: straight to the final broadcast.
        assert!(matches!(
            done_events.first(),
            Some(TransitionEvent::SendToCn {
                msg: TmMsg::SwitchToGtm,
                ..
            })
        ));
        assert_eq!(gtm.mode(), TmMode::Gtm);
        // Every new GTM timestamp exceeds every issued GClock timestamp.
        let (ts, wait) = gtm.commit_gtm().unwrap();
        assert!(ts > biggest);
        assert_eq!(wait, SimDuration::ZERO);

        for (i, cn) in cns.iter_mut().enumerate() {
            let ack = handle_cn_msg(i, cn, &TmMsg::SwitchToGtm, t0).unwrap();
            assert_eq!(cn.mode, TmMode::Gtm);
            if let TmMsg::AckFinal { cn: idx } = ack {
                orch.on_ack_final(idx);
            }
        }
        assert!(!orch.in_progress());
    }

    /// Paper Listing 1 regression: a GTM transaction committing while the
    /// server is in DUAL receives a timestamp that may exceed GClock
    /// timestamps already issued elsewhere. Without the 2×err wait, a
    /// GClock transaction starting *after* the GTM commit acknowledges
    /// could receive a smaller snapshot and miss the committed update.
    /// With the wait, ordering holds.
    #[test]
    fn listing1_anomaly_prevented_by_dual_wait() {
        let t0 = SimTime::from_secs(1);
        // Node3: sloppy clock (100 µs sync error) — issues big timestamps.
        let node3 = make_cn(100, t0);
        // Node2: tight clock (2 µs sync error) — issues small timestamps.
        let node2 = make_cn(2, t0);

        let mut gtm = GtmServer::new();
        gtm.set_mode(TmMode::Dual);
        gtm.record_err_bound(node3.gclock.t_err(t0)); // ~100 µs, from transition acks

        // Node3 (already in GClock mode) commits Trx3 and the GTMS
        // observes its large timestamp ts3.
        let t3 = t0 + SimDuration::from_micros(10);
        let ts3 = node3.gclock.assign_timestamp(t3);
        gtm.observe_commit(ts3);

        // Node1's old GTM-mode Trx1 commits via the GTMS.
        let t1 = t0 + SimDuration::from_micros(20);
        let (ts1, wait) = gtm.commit_gtm().unwrap();
        assert!(ts1 > ts3, "DUAL-mode GTMS issues above observed GClock ts");

        // WITHOUT the wait: Trx2 starts on node2 right after t1 and gets a
        // snapshot below ts1 — the anomaly (Trx1 invisible to Trx2 even
        // though Trx1 acknowledged before Trx2 began).
        let t2_early = t1 + SimDuration::from_micros(1);
        let snap_early = node2.gclock.assign_timestamp(t2_early);
        assert!(
            snap_early < ts1,
            "anomaly must be constructible without the wait: {snap_early:?} vs {ts1:?}"
        );

        // WITH the wait (2 × max err): Trx1 only acknowledges at t1+wait;
        // any Trx2 starting after that sees a larger snapshot.
        assert_eq!(wait, node3.gclock.t_err(t0) * 2);
        let t2 = t1 + wait + SimDuration::from_micros(1);
        let snap = node2.gclock.assign_timestamp(t2);
        assert!(
            snap > ts1,
            "with the DUAL wait, R.1 holds: {snap:?} vs {ts1:?}"
        );
    }

    #[test]
    fn acks_outside_phase_are_ignored() {
        let mut gtm = GtmServer::new();
        let mut orch = TransitionOrchestrator::new(2);
        assert!(orch
            .on_ack_dual(0, SimDuration::ZERO, Timestamp::ZERO, &mut gtm)
            .is_empty());
        assert!(orch.on_ack_final(0).is_empty());
        assert!(orch.on_hold_elapsed(&mut gtm).is_empty());
        // Duplicate dual acks don't double-complete.
        let _ = orch.start(TransitionDirection::ToGClock, &mut gtm);
        let e1 = orch.on_ack_dual(0, SimDuration::from_micros(10), Timestamp::ZERO, &mut gtm);
        assert!(e1.is_empty());
        let e2 = orch.on_ack_dual(0, SimDuration::from_micros(10), Timestamp::ZERO, &mut gtm);
        assert!(e2.is_empty(), "duplicate ack must not complete the phase");
    }

    #[test]
    #[should_panic(expected = "transition already in progress")]
    fn concurrent_transitions_rejected() {
        let mut gtm = GtmServer::new();
        let mut orch = TransitionOrchestrator::new(1);
        let _ = orch.start(TransitionDirection::ToGClock, &mut gtm);
        let _ = orch.start(TransitionDirection::ToGtm, &mut gtm);
    }
}
