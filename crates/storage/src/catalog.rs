//! The catalog: table and secondary-index metadata.
//!
//! Computing nodes are stateless (paper §II-A) and share the catalog; data
//! nodes keep a copy that DDL replay keeps current on replicas.

use gdb_model::{FxHashMap, GdbError, GdbResult, IndexId, Interner, TableId, TableSchema};

/// Metadata of one secondary index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    pub id: IndexId,
    pub name: String,
    pub table: TableId,
    /// Column positions forming the index key (the PK is appended
    /// internally to make entries unique).
    pub columns: Vec<usize>,
}

/// Table and index metadata.
///
/// Name lookups go through an [`Interner`]: each distinct name is
/// hashed as a string once to obtain a `Sym`, and the by-name maps key
/// on the `Sym` (a `u32`) with a fast hasher. Interned names are never
/// freed — catalogs see few distinct names and DDL is rare, so the
/// table stays tiny even across drop/recreate cycles.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: FxHashMap<TableId, TableSchema>,
    names: Interner,
    by_name: FxHashMap<gdb_model::Sym, TableId>,
    indexes: FxHashMap<IndexId, IndexDef>,
    index_by_name: FxHashMap<gdb_model::Sym, IndexId>,
    next_table: u32,
    next_index: u32,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate the next table id (CN-side, before broadcasting DDL).
    pub fn allocate_table_id(&mut self) -> TableId {
        let id = TableId(self.next_table);
        self.next_table += 1;
        id
    }

    /// Register a table (id already set in the schema).
    pub fn create_table(&mut self, schema: TableSchema) -> GdbResult<()> {
        let sym = self.names.intern(&schema.name);
        if self.by_name.contains_key(&sym) {
            return Err(GdbError::Schema(format!(
                "table {} already exists",
                schema.name
            )));
        }
        self.next_table = self.next_table.max(schema.id.0 + 1);
        self.by_name.insert(sym, schema.id);
        self.tables.insert(schema.id, schema);
        Ok(())
    }

    pub fn drop_table(&mut self, id: TableId) -> GdbResult<TableSchema> {
        let schema = self
            .tables
            .remove(&id)
            .ok_or_else(|| GdbError::Schema(format!("unknown table {id}")))?;
        if let Some(sym) = self.names.get(&schema.name) {
            self.by_name.remove(&sym);
        }
        let dropped: Vec<IndexId> = self
            .indexes
            .values()
            .filter(|ix| ix.table == id)
            .map(|ix| ix.id)
            .collect();
        for ix in dropped {
            if let Some(def) = self.indexes.remove(&ix) {
                if let Some(sym) = self.names.get(&def.name) {
                    self.index_by_name.remove(&sym);
                }
            }
        }
        Ok(schema)
    }

    pub fn table(&self, id: TableId) -> GdbResult<&TableSchema> {
        self.tables
            .get(&id)
            .ok_or_else(|| GdbError::Schema(format!("unknown table {id}")))
    }

    pub fn table_by_name(&self, name: &str) -> GdbResult<&TableSchema> {
        let id = self
            .names
            .get(name)
            .and_then(|sym| self.by_name.get(&sym))
            .ok_or_else(|| GdbError::Schema(format!("unknown table {name}")))?;
        self.table(*id)
    }

    pub fn table_names(&self) -> Vec<&str> {
        self.by_name
            .keys()
            .map(|&sym| self.names.resolve(sym))
            .collect()
    }

    pub fn tables(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values()
    }

    pub fn create_index(
        &mut self,
        table: TableId,
        name: impl Into<String>,
        columns: Vec<usize>,
    ) -> GdbResult<IndexId> {
        let name = name.into();
        let schema = self.table(table)?;
        if columns.iter().any(|&c| c >= schema.columns.len()) {
            return Err(GdbError::Schema(format!(
                "index {name}: column position out of range"
            )));
        }
        let sym = self.names.intern(&name);
        if self.index_by_name.contains_key(&sym) {
            return Err(GdbError::Schema(format!("index {name} already exists")));
        }
        let id = IndexId(self.next_index);
        self.next_index += 1;
        self.index_by_name.insert(sym, id);
        self.indexes.insert(
            id,
            IndexDef {
                id,
                name,
                table,
                columns,
            },
        );
        Ok(id)
    }

    pub fn drop_index(&mut self, name: &str) -> GdbResult<IndexDef> {
        let id = self
            .names
            .get(name)
            .and_then(|sym| self.index_by_name.remove(&sym))
            .ok_or_else(|| GdbError::Schema(format!("unknown index {name}")))?;
        Ok(self.indexes.remove(&id).expect("index map consistent"))
    }

    pub fn index(&self, id: IndexId) -> GdbResult<&IndexDef> {
        self.indexes
            .get(&id)
            .ok_or_else(|| GdbError::Schema(format!("unknown index {id}")))
    }

    pub fn index_by_name(&self, name: &str) -> GdbResult<&IndexDef> {
        let id = self
            .names
            .get(name)
            .and_then(|sym| self.index_by_name.get(&sym))
            .ok_or_else(|| GdbError::Schema(format!("unknown index {name}")))?;
        self.index(*id)
    }

    /// All indexes on a table.
    pub fn indexes_on(&self, table: TableId) -> Vec<&IndexDef> {
        let mut v: Vec<&IndexDef> = self
            .indexes
            .values()
            .filter(|ix| ix.table == table)
            .collect();
        v.sort_by_key(|ix| ix.id);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdb_model::{ColumnDef, DataType, SchemaBuilder};

    fn schema(name: &str, id: u32) -> TableSchema {
        SchemaBuilder::new(name)
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("val", DataType::Text))
            .primary_key(&["id"])
            .build(TableId(id))
            .unwrap()
    }

    #[test]
    fn create_lookup_drop() {
        let mut c = Catalog::new();
        c.create_table(schema("t1", 0)).unwrap();
        assert_eq!(c.table_by_name("t1").unwrap().id, TableId(0));
        assert_eq!(c.table(TableId(0)).unwrap().name, "t1");
        c.drop_table(TableId(0)).unwrap();
        assert!(c.table_by_name("t1").is_err());
        assert!(c.drop_table(TableId(0)).is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.create_table(schema("t", 0)).unwrap();
        assert!(c.create_table(schema("t", 1)).is_err());
    }

    #[test]
    fn id_allocation_skips_registered() {
        let mut c = Catalog::new();
        c.create_table(schema("t", 5)).unwrap();
        assert_eq!(c.allocate_table_id(), TableId(6));
    }

    #[test]
    fn index_lifecycle() {
        let mut c = Catalog::new();
        c.create_table(schema("t", 0)).unwrap();
        let ix = c.create_index(TableId(0), "t_val", vec![1]).unwrap();
        assert_eq!(c.index_by_name("t_val").unwrap().id, ix);
        assert_eq!(c.indexes_on(TableId(0)).len(), 1);
        // Out-of-range column rejected.
        assert!(c.create_index(TableId(0), "bad", vec![9]).is_err());
        // Duplicate name rejected.
        assert!(c.create_index(TableId(0), "t_val", vec![0]).is_err());
        c.drop_index("t_val").unwrap();
        assert!(c.index_by_name("t_val").is_err());
    }

    #[test]
    fn drop_table_drops_its_indexes() {
        let mut c = Catalog::new();
        c.create_table(schema("t", 0)).unwrap();
        c.create_index(TableId(0), "ix", vec![1]).unwrap();
        c.drop_table(TableId(0)).unwrap();
        assert!(c.index_by_name("ix").is_err());
    }
}
