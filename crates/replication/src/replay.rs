//! Parallel-replay cost model.
//!
//! The paper notes GlobalDB "applies Redo logs in parallel which
//! significantly improves log replay speed" and needs no fine-grained
//! locking while doing so. We model replay time as records divided across
//! workers, plus a fixed per-batch dispatch overhead — enough to reproduce
//! the freshness effect of parallelism in the RCP ablation.

use gdb_simnet::SimDuration;

/// Timing model for applying a batch of redo records at a replica.
#[derive(Debug, Clone, Copy)]
pub struct ReplayCostModel {
    /// CPU cost to apply one record.
    pub per_record: SimDuration,
    /// Parallel replay workers (paper's parallel replay; 1 = serial).
    pub workers: usize,
    /// Fixed batch dispatch overhead.
    pub per_batch: SimDuration,
}

impl Default for ReplayCostModel {
    fn default() -> Self {
        ReplayCostModel {
            per_record: SimDuration::from_micros(2),
            workers: 4,
            per_batch: SimDuration::from_micros(20),
        }
    }
}

impl ReplayCostModel {
    pub fn serial() -> Self {
        ReplayCostModel {
            workers: 1,
            ..Self::default()
        }
    }

    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Time to replay a batch of `records` records.
    pub fn batch_delay(&self, records: usize) -> SimDuration {
        let per_worker = records.div_ceil(self.workers.max(1));
        self.per_batch + self.per_record * per_worker as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_divides_replay_time() {
        let serial = ReplayCostModel::serial();
        let par4 = ReplayCostModel::default().with_workers(4);
        let s = serial.batch_delay(1000);
        let p = par4.batch_delay(1000);
        // 4 workers ≈ 4× faster on the per-record term.
        assert!(p.as_micros() < s.as_micros() / 3);
        assert!(p.as_micros() >= s.as_micros() / 5);
    }

    #[test]
    fn empty_batch_costs_only_dispatch() {
        let m = ReplayCostModel::default();
        assert_eq!(m.batch_delay(0), m.per_batch);
    }

    #[test]
    fn workers_never_zero() {
        let m = ReplayCostModel::default().with_workers(0);
        assert_eq!(m.workers, 1);
    }
}
