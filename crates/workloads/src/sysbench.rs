//! Sysbench OLTP workloads (paper §V: 250 tables × 25 000 rows × 600
//! threads; scaled down here with the same shape).
//!
//! The Fig. 6d workload is Point-Select: uniform random single-row reads.
//! On the Three-City cluster with hash sharding, ~2/3 of keys live on a
//! shard whose primary is remote from the submitting CN — exactly the
//! paper's "2/3 of the tuples are fetched from a remote node".

use crate::driver::{KeyDistribution, KeySampler, Workload};
use gdb_model::{Datum, GdbResult, Row};
use globaldb::{Cluster, Prepared, SimTime, TxnOutcome};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which Sysbench workload to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysbenchMode {
    /// `SELECT c FROM sbtestN WHERE id = ?` (Fig. 6d).
    PointSelect,
    /// `UPDATE sbtestN SET k = k + 1 WHERE id = ?` (write-path ablation).
    UpdateIndex,
}

/// Scale parameters (paper: 250 tables × 25 000 rows).
#[derive(Debug, Clone, Copy)]
pub struct SysbenchScale {
    pub tables: usize,
    pub rows_per_table: i64,
}

impl SysbenchScale {
    pub fn tiny() -> Self {
        SysbenchScale {
            tables: 2,
            rows_per_table: 100,
        }
    }

    pub fn small() -> Self {
        SysbenchScale {
            tables: 10,
            rows_per_table: 2_000,
        }
    }
}

/// The Sysbench workload.
pub struct SysbenchWorkload {
    pub scale: SysbenchScale,
    pub mode: SysbenchMode,
    /// Force all requests through one CN (paper: clients connect to their
    /// local CN; reads then fan out to wherever the tuples live).
    pub pin_cn: Option<usize>,
    selects: Vec<Prepared>,
    updates: Vec<Prepared>,
    sampler: KeySampler,
    rng: SmallRng,
    seed: u64,
}

impl SysbenchWorkload {
    pub fn new(scale: SysbenchScale, mode: SysbenchMode, seed: u64) -> Self {
        SysbenchWorkload {
            scale,
            mode,
            pin_cn: None,
            selects: Vec::new(),
            updates: Vec::new(),
            sampler: KeySampler::new(KeyDistribution::Uniform, scale.rows_per_table),
            rng: SmallRng::seed_from_u64(seed ^ 0x5b_5eed),
            seed,
        }
    }

    /// Replace the uniform row pick with a skewed key distribution
    /// (Zipfian or hot-spot). Skew concentrates load on whichever shards
    /// own the low keys — the ingredient that makes hot-shard detection
    /// and online rebalancing measurable.
    pub fn with_key_dist(mut self, dist: KeyDistribution) -> Self {
        self.sampler = KeySampler::new(dist, self.scale.rows_per_table);
        self
    }

    pub fn key_dist(&self) -> KeyDistribution {
        self.sampler.distribution()
    }
}

impl Workload for SysbenchWorkload {
    fn setup(&mut self, cluster: &mut Cluster) -> GdbResult<()> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        for t in 0..self.scale.tables {
            cluster.ddl(&format!(
                "CREATE TABLE sbtest{t} (id INT NOT NULL, k INT, c TEXT, pad TEXT, \
                 PRIMARY KEY (id)) DISTRIBUTE BY HASH(id)"
            ))?;
            let table = cluster
                .db
                .catalog()
                .table_by_name(&format!("sbtest{t}"))?
                .id;
            let rows: Vec<Row> = (1..=self.scale.rows_per_table)
                .map(|id| {
                    Row(vec![
                        Datum::Int(id),
                        Datum::Int(rng.gen_range(0..self.scale.rows_per_table)),
                        Datum::Text(format!("c-{id:08}-{:08}", rng.gen_range(0..1_000_000))),
                        Datum::Text("padpadpadpad".into()),
                    ])
                })
                .collect();
            cluster.bulk_load(table, rows)?;
        }
        cluster.finish_load();
        for t in 0..self.scale.tables {
            self.selects
                .push(cluster.prepare(&format!("SELECT c FROM sbtest{t} WHERE id = ?"))?);
            self.updates
                .push(cluster.prepare(&format!("UPDATE sbtest{t} SET k = k + 1 WHERE id = ?"))?);
        }
        Ok(())
    }

    fn run_one(
        &mut self,
        cluster: &mut Cluster,
        terminal: usize,
        at: SimTime,
    ) -> (&'static str, GdbResult<TxnOutcome>) {
        let t = self.rng.gen_range(0..self.scale.tables);
        let id = self.sampler.sample(&mut self.rng);
        let cn = self.pin_cn.unwrap_or(terminal % cluster.db.cns().len());
        match self.mode {
            SysbenchMode::PointSelect => {
                let stmt = self.selects[t].clone();
                let res = cluster
                    .run_transaction(cn, at, true, true, |txn| {
                        txn.execute(&stmt, &[Datum::Int(id)]).map(|_| ())
                    })
                    .map(|(_, o)| o);
                ("point_select", res)
            }
            SysbenchMode::UpdateIndex => {
                let stmt = self.updates[t].clone();
                let res = cluster
                    .run_transaction(cn, at, false, true, |txn| {
                        txn.execute(&stmt, &[Datum::Int(id)]).map(|_| ())
                    })
                    .map(|(_, o)| o);
                ("update_index", res)
            }
        }
    }
}
