//! Additional cluster behaviours: statement atomicity, GTM-mode ROR,
//! automatic clock-failure fallback, and freshness-bound accounting.

use globaldb::{
    Cluster, ClusterConfig, Datum, GdbError, SimDuration, SimTime, TmMode, TransitionDirection,
};

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

fn kv_cluster(config: ClusterConfig) -> Cluster {
    let mut c = Cluster::new(config);
    c.ddl("CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k)) DISTRIBUTE BY HASH(k)")
        .unwrap();
    let table = c.db.catalog().table_by_name("kv").unwrap().id;
    c.bulk_load(
        table,
        (0..50i64)
            .map(|i| gdb_model::Row(vec![Datum::Int(i), Datum::Int(0)]))
            .collect(),
    )
    .unwrap();
    c.finish_load();
    c
}

/// Multi-row INSERT is one transaction on the cluster: a duplicate in the
/// middle rolls the whole statement back.
#[test]
fn multi_row_insert_is_atomic() {
    let mut c = kv_cluster(ClusterConfig::globaldb_one_region());
    let err = c
        .execute_sql(
            0,
            t(10),
            "INSERT INTO kv VALUES (100, 1), (3, 1), (101, 1)",
            &[],
        )
        .unwrap_err();
    assert!(matches!(err, GdbError::DuplicateKey(_)));
    // Neither 100 nor 101 exists: the statement rolled back atomically.
    let (out, _) = c
        .execute_sql(
            0,
            t(50),
            "SELECT COUNT(*) FROM kv WHERE k BETWEEN 100 AND 101",
            &[],
        )
        .unwrap();
    assert_eq!(out.scalar_int(), Some(0));
}

/// ROR also works in centralized GTM mode, using the GTM-rate staleness
/// estimator (paper §IV-B: "When running under GTM mode, we estimate the
/// staleness based on the gap between the RCP and the last committed
/// timestamp, and the rate at which new timestamps were issued").
#[test]
fn ror_in_gtm_mode() {
    let mut config = ClusterConfig::globaldb_one_region();
    config.tm_mode = TmMode::Gtm;
    let mut c = kv_cluster(config);
    // Generate commits so the GTM issue rate is non-zero.
    for i in 0..30u64 {
        c.execute_sql(
            (i % 3) as usize,
            t(10) + SimDuration::from_millis(i * 5),
            "UPDATE kv SET v = v + 1 WHERE k = ?",
            &[Datum::Int((i % 50) as i64)],
        )
        .unwrap();
    }
    c.run_until(t(800));
    // Pick a key whose shard primary is NOT co-hosted with the reading CN
    // (otherwise reading the local primary is the optimal choice).
    let table = c.db.catalog().table_by_name("kv").unwrap().clone();
    let cn1_host = c.db.topo().node_host(c.db.cns()[1].node);
    let key = (0..50i64)
        .find(|&k| {
            let s = table
                .shard_of_pk(&gdb_model::RowKey::single(k), c.db.shards().len() as u16)
                .0 as usize;
            c.db.topo().node_host(c.db.shards()[s].primary) != cn1_host
        })
        .expect("remote-shard key");
    let sel = c.prepare("SELECT v FROM kv WHERE k = ?").unwrap();
    let ((), o) = c
        .run_transaction(1, t(810), true, true, |txn| {
            assert!(txn.is_ror());
            txn.execute(&sel, &[Datum::Int(key)]).map(|_| ())
        })
        .unwrap();
    assert!(o.used_replica, "GTM-mode ROR must serve from replicas");
    assert!(o.snapshot > globaldb::Timestamp::ZERO);
}

/// A clock synchronization failure triggers the automatic online fallback
/// to GTM mode (paper: "keeps the system fully operational in the event of
/// a clock synchronization failure").
#[test]
fn clock_failure_auto_falls_back_to_gtm() {
    let mut c = kv_cluster(ClusterConfig::globaldb_one_region());
    assert_eq!(c.db.cn_mode(0), TmMode::GClock);
    // Clock fault on CN 1.
    c.db.cns_mut()[1].tm.gclock.set_healthy(false);
    // The heartbeat watchdog picks it up and drives the transition.
    c.run_until(t(2000));
    assert_eq!(
        c.db.last_transition_completed(),
        Some(TransitionDirection::ToGtm)
    );
    for cn in 0..3 {
        assert_eq!(c.db.cn_mode(cn), TmMode::Gtm);
    }
    // Writes keep working afterwards.
    c.execute_sql(1, t(2010), "UPDATE kv SET v = 9 WHERE k = 1", &[])
        .unwrap();
}

/// An unsatisfiable freshness bound with a dead primary is counted and
/// still answered (by whatever is reachable).
#[test]
fn freshness_bound_with_dead_primary_counts_rejections() {
    let mut config = ClusterConfig::globaldb_one_region();
    config.routing = globaldb::RoutingPolicy::ReadOnReplica {
        // Nothing is ever this fresh except the primary itself.
        freshness_bound: Some(SimDuration::from_nanos(1)),
    };
    let mut c = kv_cluster(config);
    c.run_until(t(300));
    // With the primary up: bound satisfied by the primary, no rejections.
    let sel = c.prepare("SELECT v FROM kv WHERE k = ?").unwrap();
    let ((), o) = c
        .run_transaction(0, t(310), true, true, |txn| {
            txn.execute(&sel, &[Datum::Int(1)]).map(|_| ())
        })
        .unwrap();
    assert!(!o.used_replica, "1ns bound forces primary reads");
    assert_eq!(c.db.stats().ror_rejected_freshness, 0);
}

/// Replica freshness is a first-class metrics surface: the snapshot
/// carries one RCP-lag gauge and one log-ship backlog gauge per
/// (shard, replica), under the names the operator console reads.
#[test]
fn metrics_snapshot_carries_replica_lag_gauges() {
    let mut c = kv_cluster(ClusterConfig::globaldb_three_city());
    c.execute_sql(0, t(100), "UPDATE kv SET v = 1 WHERE k = 7", &[])
        .unwrap();
    c.run_until(t(500));
    let snap = c.metrics_snapshot();
    for s in 0..c.db.shards().len() {
        for r in 0..c.db.shards()[s].replicas.len() {
            let lag = gdb_replication::metrics::replica_rcp_lag_gauge(s, r);
            let backlog = gdb_replication::metrics::replica_backlog_gauge(s, r);
            let lag_v = snap
                .gauge(&lag)
                .unwrap_or_else(|| panic!("missing gauge {lag}"));
            assert!(lag_v >= 0.0);
            assert!(snap.gauge(&backlog).is_some(), "missing gauge {backlog}");
        }
    }
    // The exact names are an API other tooling greps for; pin them.
    assert!(snap.gauge("replication.replica_rcp_lag_us.s0.r0").is_some());
    assert!(snap
        .gauge("replication.replica_backlog_records.s0.r0")
        .is_some());
}
