//! Identifier newtypes used across the system.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Transaction identifier, unique cluster-wide.
///
/// In GaussDB a transaction id (XID) is assigned by the node that starts the
/// transaction; we encode the originating node in the high bits so that ids
/// generated concurrently on different computing nodes never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Build a cluster-unique id from an originating node and a local counter.
    pub fn compose(node: u16, local: u64) -> Self {
        debug_assert!(local < (1 << 48), "local txn counter overflow");
        TxnId(((node as u64) << 48) | (local & ((1 << 48) - 1)))
    }

    /// The node component of a composed id.
    pub fn node(self) -> u16 {
        (self.0 >> 48) as u16
    }

    /// The local-counter component of a composed id.
    pub fn local(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}:{}", self.node(), self.local())
    }
}

/// Table identifier assigned by the catalog at `CREATE TABLE` time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tbl{}", self.0)
    }
}

/// Secondary-index identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IndexId(pub u32);

impl fmt::Display for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "idx{}", self.0)
    }
}

/// A shard of a distributed table: one primary data node plus its replicas.
///
/// Rows are mapped to shards by hashing or range-partitioning the
/// distribution key (see [`crate::schema::DistributionKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShardId(pub u16);

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_compose_roundtrip() {
        let id = TxnId::compose(7, 123456);
        assert_eq!(id.node(), 7);
        assert_eq!(id.local(), 123456);
    }

    #[test]
    fn txn_id_node_isolation() {
        // Same local counter on different nodes must produce distinct ids.
        assert_ne!(TxnId::compose(1, 42), TxnId::compose(2, 42));
    }

    #[test]
    fn txn_id_display() {
        assert_eq!(TxnId::compose(3, 9).to_string(), "txn3:9");
    }

    #[test]
    fn txn_id_max_local() {
        let id = TxnId::compose(u16::MAX, (1 << 48) - 1);
        assert_eq!(id.node(), u16::MAX);
        assert_eq!(id.local(), (1 << 48) - 1);
    }
}
