//! Deterministic TPC-C initial population (clause 4.3), scaled by
//! [`super::TpccScale`]. Rows are bulk-loaded so benchmarks start from a
//! fully replicated, RCP-consistent state.
#![allow(clippy::inconsistent_digit_grouping)] // money literals read as dollars_cents

use super::{last_name, TpccScale};
use gdb_model::{Datum, Row};
use globaldb::{Cluster, GdbResult};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn d(v: i64) -> Datum {
    Datum::Int(v)
}

fn dec(v: i64) -> Datum {
    Datum::Decimal(v)
}

fn txt(s: impl Into<String>) -> Datum {
    Datum::Text(s.into())
}

/// Create the schema and load all initial rows. Returns total rows loaded.
pub fn load(cluster: &mut Cluster, scale: &TpccScale, seed: u64) -> GdbResult<usize> {
    for ddl in super::schema::ddl() {
        cluster.ddl(ddl)?;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut total = 0;

    // item (replicated).
    let item_id = cluster.db.catalog().table_by_name("item")?.id;
    let items: Vec<Row> = (1..=scale.items)
        .map(|i| {
            Row(vec![
                d(i),
                txt(format!("item-{i}")),
                dec(rng.gen_range(100..10_000)), // 1.00 .. 100.00
                txt(if rng.gen_ratio(1, 10) {
                    format!("ORIGINAL-{}", "filler-data-".repeat(3))
                } else {
                    "item-data-".repeat(4)
                }),
            ])
        })
        .collect();
    total += cluster.bulk_load(item_id, items)?;

    // warehouse / district / customer / stock / orders.
    let wh_id = cluster.db.catalog().table_by_name("warehouse")?.id;
    let dist_id = cluster.db.catalog().table_by_name("district")?.id;
    let cust_id = cluster.db.catalog().table_by_name("customer")?.id;
    let stock_id = cluster.db.catalog().table_by_name("stock")?.id;
    let orders_id = cluster.db.catalog().table_by_name("orders")?.id;
    let new_order_id = cluster.db.catalog().table_by_name("new_order")?.id;
    let order_line_id = cluster.db.catalog().table_by_name("order_line")?.id;

    for w in 1..=scale.warehouses {
        total += cluster.bulk_load(
            wh_id,
            vec![Row(vec![
                d(w),
                txt(format!("wh-{w}")),
                dec(rng.gen_range(0..20)), // tax 0.00-0.20
                dec(30_000_00),
            ])],
        )?;

        // stock: one row per item per warehouse.
        let stock_rows: Vec<Row> = (1..=scale.items)
            .map(|i| {
                Row(vec![
                    d(w),
                    d(i),
                    d(rng.gen_range(10..=100)),
                    d(0),
                    d(0),
                    d(0),
                    txt(format!("s-data-{}-{}", w, "dist-info-".repeat(4))),
                ])
            })
            .collect();
        total += cluster.bulk_load(stock_id, stock_rows)?;

        for dist in 1..=scale.districts_per_warehouse {
            total += cluster.bulk_load(
                dist_id,
                vec![Row(vec![
                    d(w),
                    d(dist),
                    txt(format!("dist-{w}-{dist}")),
                    dec(rng.gen_range(0..20)),
                    dec(30_000_00),
                    d(scale.initial_orders_per_district + 1), // d_next_o_id
                ])],
            )?;

            // customers (last names per spec's modulo-1000 rule).
            let custs: Vec<Row> = (1..=scale.customers_per_district)
                .map(|c| {
                    Row(vec![
                        d(w),
                        d(dist),
                        d(c),
                        txt(last_name((c - 1) % 1000)),
                        txt(format!("first{c}")),
                        txt(if rng.gen_ratio(1, 10) { "BC" } else { "GC" }),
                        dec(rng.gen_range(0..50)), // discount 0.00-0.50
                        dec(-10_00),               // balance -10.00
                        dec(10_00),
                        d(1),
                        d(0),
                        txt(format!("customer-history-{}", "comment-text-".repeat(20))),
                    ])
                })
                .collect();
            total += cluster.bulk_load(cust_id, custs)?;

            // Initial orders: customers in random permutation, the last
            // 30% undelivered (in new_order, no carrier).
            let n_orders = scale.initial_orders_per_district;
            let mut cust_perm: Vec<i64> = (1..=scale.customers_per_district).collect();
            // Fisher–Yates with the seeded rng.
            for i in (1..cust_perm.len()).rev() {
                let j = rng.gen_range(0..=i);
                cust_perm.swap(i, j);
            }
            let mut orders = Vec::new();
            let mut new_orders = Vec::new();
            let mut order_lines = Vec::new();
            for o in 1..=n_orders {
                let c = cust_perm[(o - 1) as usize % cust_perm.len()];
                let ol_cnt = rng.gen_range(5..=15i64);
                let delivered = o <= n_orders * 7 / 10;
                orders.push(Row(vec![
                    d(w),
                    d(dist),
                    d(o),
                    d(c),
                    if delivered {
                        d(rng.gen_range(1..=10))
                    } else {
                        Datum::Null
                    },
                    d(ol_cnt),
                    d(o), // entry date: ordinal
                ]));
                if !delivered {
                    new_orders.push(Row(vec![d(w), d(dist), d(o)]));
                }
                for ol in 1..=ol_cnt {
                    order_lines.push(Row(vec![
                        d(w),
                        d(dist),
                        d(o),
                        d(ol),
                        d(rng.gen_range(1..=scale.items)),
                        d(w),
                        if delivered { d(o) } else { Datum::Null },
                        d(5),
                        if delivered {
                            dec(0)
                        } else {
                            dec(rng.gen_range(1..=999_999))
                        },
                    ]));
                }
            }
            total += cluster.bulk_load(orders_id, orders)?;
            total += cluster.bulk_load(new_order_id, new_orders)?;
            total += cluster.bulk_load(order_line_id, order_lines)?;
        }
    }

    cluster.finish_load();
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use globaldb::ClusterConfig;

    #[test]
    fn tiny_load_populates_all_tables() {
        let mut c = Cluster::new(ClusterConfig::globaldb_one_region());
        let scale = TpccScale::tiny();
        let total = load(&mut c, &scale, 7).unwrap();
        assert!(total > 0);
        // Expected counts per scale.
        let expect = [
            ("warehouse", scale.warehouses),
            ("district", scale.warehouses * scale.districts_per_warehouse),
            (
                "customer",
                scale.warehouses * scale.districts_per_warehouse * scale.customers_per_district,
            ),
            ("stock", scale.warehouses * scale.items),
            (
                "orders",
                scale.warehouses
                    * scale.districts_per_warehouse
                    * scale.initial_orders_per_district,
            ),
        ];
        for (name, count) in expect {
            let (out, _) = c
                .execute_sql(
                    0,
                    globaldb::SimTime::from_millis(10),
                    &format!("SELECT COUNT(*) FROM {name}"),
                    &[],
                )
                .unwrap();
            assert_eq!(out.scalar_int(), Some(count), "{name}");
        }
        // Item is replicated: every shard holds all items.
        let item = c.db.catalog().table_by_name("item").unwrap().id;
        for shard in c.db.shards() {
            assert_eq!(
                shard.storage.table(item).unwrap().key_count() as i64,
                scale.items
            );
        }
        // 30% of initial orders are undelivered (in new_order).
        let (out, _) = c
            .execute_sql(
                0,
                globaldb::SimTime::from_millis(20),
                "SELECT COUNT(*) FROM new_order",
                &[],
            )
            .unwrap();
        let undelivered = scale.warehouses
            * scale.districts_per_warehouse
            * (scale.initial_orders_per_district - scale.initial_orders_per_district * 7 / 10);
        assert_eq!(out.scalar_int(), Some(undelivered));
    }
}
