//! The per-(primary → replica) shipping channel.
//!
//! Records accumulate in the primary's [`gdb_wal::RedoBuffer`]; the channel
//! tracks how far it has shipped and drains batches on a flush cadence or
//! when enough bytes are pending. Batches are optionally compressed
//! (paper §V-A: LZ4 halves-or-better the WAN bytes).

use gdb_compress::{Codec, MatchTable};
use gdb_wal::{EncodeScratch, LogBatch, Lsn, RedoBuffer};

/// Statistics for one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    pub batches: u64,
    pub records: u64,
    pub raw_bytes: u64,
    pub wire_bytes: u64,
}

/// A drained batch ready to put on the wire.
#[derive(Debug, Clone)]
pub struct WireBatch {
    pub batch: LogBatch,
    /// Bytes actually sent (after the codec).
    pub wire_bytes: usize,
    /// Bytes before compression.
    pub raw_bytes: usize,
}

/// Sender state for one replica.
///
/// Carries reusable encode/compress scratch so the per-batch drain is
/// allocation-free at steady state: records are framed once into
/// `raw_buf` and compressed once into `wire_buf` (the old path encoded
/// into a fresh vec and then compressed a *second* time just to learn
/// the wire size).
#[derive(Debug)]
pub struct ShippingChannel {
    /// Next LSN to ship.
    next_lsn: Lsn,
    codec: Codec,
    /// Max records per drained batch.
    max_batch_records: usize,
    scratch: EncodeScratch,
    raw_buf: Vec<u8>,
    wire_buf: Vec<u8>,
    match_table: MatchTable,
    pub stats: ChannelStats,
}

impl ShippingChannel {
    pub fn new(codec: Codec) -> Self {
        ShippingChannel {
            next_lsn: Lsn(0),
            codec,
            max_batch_records: 4096,
            scratch: EncodeScratch::default(),
            raw_buf: Vec::new(),
            wire_buf: Vec::new(),
            match_table: MatchTable::default(),
            stats: ChannelStats::default(),
        }
    }

    pub fn with_max_batch(mut self, records: usize) -> Self {
        self.max_batch_records = records.max(1);
        self
    }

    pub fn codec(&self) -> Codec {
        self.codec
    }

    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn
    }

    /// Records waiting in `buffer` that this channel has not shipped yet.
    pub fn backlog(&self, buffer: &RedoBuffer) -> u64 {
        buffer.head_lsn().0.saturating_sub(self.next_lsn.0)
    }

    /// Drain the next batch (empty option if caught up). Advances the
    /// shipped cursor — the simulated network never loses delivered
    /// messages to a live node, and crashed-replica recovery re-creates
    /// the channel at the replica's applied LSN via [`Self::rewind`].
    pub fn drain(&mut self, buffer: &RedoBuffer) -> Option<WireBatch> {
        let batch = buffer.batch_from(self.next_lsn, self.max_batch_records);
        if batch.is_empty() {
            return None;
        }
        self.next_lsn = Lsn(batch.last_lsn().0 + 1);
        self.raw_buf.clear();
        batch.encode_into(&mut self.scratch, &mut self.raw_buf);
        self.codec
            .encode_into(&self.raw_buf, &mut self.match_table, &mut self.wire_buf);
        let raw_bytes = self.raw_buf.len();
        let wire_bytes = self.wire_buf.len();
        self.stats.batches += 1;
        self.stats.records += batch.len() as u64;
        self.stats.raw_bytes += raw_bytes as u64;
        self.stats.wire_bytes += wire_bytes as u64;
        Some(WireBatch {
            batch,
            wire_bytes,
            raw_bytes,
        })
    }

    /// The wire bytes of the most recent [`Self::drain`] (valid until the
    /// next drain). Lets callers ship the encoded form without re-encoding.
    pub fn last_wire(&self) -> &[u8] {
        &self.wire_buf
    }

    /// Reset the cursor (replica recovery: resume from its applied LSN).
    pub fn rewind(&mut self, to: Lsn) {
        self.next_lsn = to;
    }

    /// Achieved compression ratio so far (raw / wire).
    pub fn compression_ratio(&self) -> f64 {
        if self.stats.wire_bytes == 0 {
            1.0
        } else {
            self.stats.raw_bytes as f64 / self.stats.wire_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdb_model::{Datum, Row, RowKey, TableId, Timestamp, TxnId};
    use gdb_wal::RedoPayload;

    fn filled_buffer(n: u64) -> RedoBuffer {
        let mut buf = RedoBuffer::new();
        for i in 0..n {
            buf.append(
                TxnId(i),
                RedoPayload::Insert {
                    table: TableId(1),
                    key: RowKey::single(i as i64),
                    row: Row(vec![
                        Datum::Int(i as i64),
                        Datum::Text("warehouse-payload-abcdefgh".into()),
                    ]),
                },
            );
            buf.append(
                TxnId(i),
                RedoPayload::Commit {
                    commit_ts: Timestamp(i + 1),
                },
            );
        }
        buf
    }

    #[test]
    fn drains_in_order_without_gaps() {
        let buf = filled_buffer(10);
        let mut ch = ShippingChannel::new(Codec::None).with_max_batch(7);
        let b1 = ch.drain(&buf).unwrap();
        assert_eq!(b1.batch.first_lsn, Lsn(0));
        assert_eq!(b1.batch.len(), 7);
        let b2 = ch.drain(&buf).unwrap();
        assert_eq!(b2.batch.first_lsn, Lsn(7));
        assert_eq!(b2.batch.len(), 7, "capped at max batch");
        let b3 = ch.drain(&buf).unwrap();
        assert_eq!(b3.batch.first_lsn, Lsn(14));
        assert_eq!(b3.batch.len(), 6, "remainder");
        assert!(ch.drain(&buf).is_none(), "caught up");
        assert_eq!(ch.backlog(&buf), 0);
    }

    #[test]
    fn backlog_counts_pending() {
        let buf = filled_buffer(5);
        let ch = ShippingChannel::new(Codec::None);
        assert_eq!(ch.backlog(&buf), 10);
    }

    #[test]
    fn compression_reduces_wire_bytes() {
        let buf = filled_buffer(200);
        let mut plain = ShippingChannel::new(Codec::None);
        let mut lz = ShippingChannel::new(Codec::Lz4);
        let raw = plain.drain(&buf).unwrap();
        let comp = lz.drain(&buf).unwrap();
        assert_eq!(raw.raw_bytes, comp.raw_bytes);
        assert!(
            comp.wire_bytes * 3 < raw.wire_bytes * 2,
            "lz4 {} vs raw {}",
            comp.wire_bytes,
            raw.wire_bytes
        );
        assert!(lz.compression_ratio() > 1.5);
    }

    #[test]
    fn rewind_for_recovery() {
        let buf = filled_buffer(5);
        let mut ch = ShippingChannel::new(Codec::None);
        let _ = ch.drain(&buf);
        ch.rewind(Lsn(3));
        let b = ch.drain(&buf).unwrap();
        assert_eq!(b.batch.first_lsn, Lsn(3));
    }

    #[test]
    fn wire_batch_decodes_after_codec_roundtrip() {
        let buf = filled_buffer(20);
        let mut ch = ShippingChannel::new(Codec::Lz4);
        let wb = ch.drain(&buf).unwrap();
        let raw = wb.batch.encode();
        let wire = Codec::Lz4.encode(&raw);
        assert_eq!(wire.len(), wb.wire_bytes);
        let back = Codec::Lz4.decode(&wire).unwrap();
        let records = gdb_wal::record::decode_all(&back).unwrap();
        assert_eq!(records, wb.batch.records);
    }
}
