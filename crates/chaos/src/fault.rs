//! The fault taxonomy and its application to a live cluster.
//!
//! Each [`Fault`] maps onto the fault-injection API of
//! [`globaldb::GlobalDb`], so a fault fires from *inside* a scheduled
//! simulation event exactly like the background activity it disturbs.

use gdb_simnet::NetNodeId;
use globaldb::{CoreSim, GlobalDb, SimDuration, SimTime};
use std::collections::HashMap;

/// One injectable fault. Injection faults usually come paired with their
/// recovery counterpart later in the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Crash a shard's primary DN. Writes to the shard fail (retryably)
    /// until recovery; replicas keep serving RCP reads.
    CrashPrimary { shard: usize },
    /// Restart a crashed primary in place: its WAL survived, replicas
    /// catch up by resuming the redo stream where they left off.
    RestartPrimary { shard: usize },
    /// Fail over: promote a replica of the shard to primary (remaining
    /// replicas full-resync; sync-mode promotions lose nothing).
    PromoteReplica { shard: usize, replica: usize },
    /// Re-admit the most recently crashed primary of `shard` as a replica
    /// (full resync from the current primary, then stream-follow).
    RejoinOldPrimary { shard: usize },
    /// Crash one replica DN; in-flight redo batches die with it.
    CrashReplica { shard: usize, replica: usize },
    /// Restart a crashed replica with WAL catch-up (the channel rewinds
    /// to its durable resume point).
    RestartReplica { shard: usize, replica: usize },
    /// Crash the GTM server. GClock commits are unaffected; GTM/DUAL
    /// commits fail retryably.
    CrashGtm,
    /// GTM failover: the standby resumes from the durable counter.
    RestartGtm,
    /// Crash a computing node — if it is its region's RCP collector, the
    /// next alive CN takes over at the next round.
    CrashCn { cn: usize },
    /// Restart a crashed CN with a fresh clock sync.
    RestartCn { cn: usize },
    /// Partition two regions (indexes into `GlobalDb::regions`).
    PartitionRegions { a: usize, b: usize },
    /// Heal a region partition.
    HealRegions { a: usize, b: usize },
    /// `tc`-style transient delay spike on every inter-host message.
    DelaySpike { extra: SimDuration },
    /// End the delay spike.
    ClearDelay,
    /// Cut a CN's clock-sync daemon off its time device: drift (and the
    /// commit-wait error bound) grows until sync resumes.
    ClockSyncOutage { cn: usize },
    /// Reconnect the clock-sync daemon (immediate sync).
    ClockSyncResume { cn: usize },
    /// Start an online migration of `shard` to a freshly provisioned DN
    /// on `(to_region, to_host)` — rebalancing as a chaos event, racing
    /// the surrounding faults to its cutover. Skips (trace-visibly) when
    /// a migration is already in flight or the source is down.
    StartMigration {
        shard: usize,
        to_region: usize,
        to_host: u16,
    },
    /// Crash the in-flight migration's target DN mid-copy. The executor
    /// must abort and leave routing/ownership exactly at the source; a
    /// no-op when no migration is in flight.
    CrashMigrationTarget,
    /// Restore the migration target downed by [`Fault::CrashMigrationTarget`]
    /// (by then an orphan DN — the abort already dropped it from the
    /// shard map).
    RestoreMigrationTarget,
    /// Crash the *source* of an in-flight migration — preferring a member
    /// parked at its cutover barrier, so the batched plan's cutover-time
    /// guard re-check is what catches it. The executor must abort that
    /// member without disturbing its plan-mates; a no-op when no
    /// migration is in flight.
    CrashMigrationSource,
    /// Restore the node downed by [`Fault::CrashMigrationSource`] through
    /// its typed recovery path (it is still the shard's live primary or
    /// replica — the abort left ownership at the source).
    RestoreMigrationSource,
    /// Elastic scale-out: provision a spare data node on `(region, host)`
    /// mid-traffic. It carries nothing until a drain or the rebalancer
    /// moves placements onto it.
    AddNode { region: usize, host: u16 },
    /// Elastic scale-in: mark `(region, host)` draining and start the
    /// batched plan that empties it (skipping shards already migrating —
    /// re-issue to finish). Its data nodes retire once the last placement
    /// leaves.
    RemoveNode { region: usize, host: u16 },
}

/// Runtime memory the engine keeps while a plan executes — currently the
/// identity of crashed-and-replaced primaries, so `RejoinOldPrimary` can
/// name a node that only exists at execution time.
#[derive(Debug, Default)]
pub struct ChaosState {
    /// Last crashed primary node per shard (consumed by rejoin).
    pub crashed_primaries: HashMap<usize, NetNodeId>,
    /// Migration target downed by `CrashMigrationTarget` (consumed by
    /// `RestoreMigrationTarget`).
    pub crashed_migration_target: Option<NetNodeId>,
    /// `(node, shard)` downed by `CrashMigrationSource` (consumed by
    /// `RestoreMigrationSource`).
    pub crashed_migration_source: Option<(NetNodeId, usize)>,
}

impl Fault {
    /// Apply the fault to the world at virtual time `now`. Returns the
    /// trace line describing what actually happened — including the cases
    /// where the fault degenerates to a no-op (e.g. restarting a replica
    /// that a promotion removed in the meantime). Takes the event engine
    /// because starting a migration schedules its own follow-up ticks.
    pub fn apply(
        &self,
        db: &mut GlobalDb,
        sim: &mut CoreSim,
        state: &mut ChaosState,
        now: SimTime,
    ) -> String {
        match *self {
            Fault::CrashPrimary { shard } => {
                let node = db.crash_primary(shard);
                state.crashed_primaries.insert(shard, node);
                format!("fault crash-primary shard={shard} node={}", node.0)
            }
            Fault::RestartPrimary { shard } => {
                db.restart_primary(shard);
                state.crashed_primaries.remove(&shard);
                format!("recover restart-primary shard={shard}")
            }
            Fault::PromoteReplica { shard, replica } => {
                if replica >= db.shards()[shard].replicas.len() {
                    return format!("skip promote shard={shard}: no replica {replica}");
                }
                match db.promote_replica_at(shard, replica, now) {
                    Ok(()) => format!("recover promote shard={shard} replica={replica}"),
                    Err(e) => format!("skip promote shard={shard}: {e}"),
                }
            }
            Fault::RejoinOldPrimary { shard } => {
                let Some(node) = state.crashed_primaries.remove(&shard) else {
                    return format!("skip rejoin shard={shard}: no crashed primary");
                };
                match db.rejoin_as_replica_at(shard, node, now) {
                    Ok(()) => format!("recover rejoin shard={shard} node={}", node.0),
                    Err(e) => format!("skip rejoin shard={shard}: {e}"),
                }
            }
            Fault::CrashReplica { shard, replica } => match db.crash_replica(shard, replica) {
                Some(node) => {
                    format!(
                        "fault crash-replica shard={shard} replica={replica} node={}",
                        node.0
                    )
                }
                None => format!("skip crash-replica shard={shard}: no replica {replica}"),
            },
            Fault::RestartReplica { shard, replica } => {
                db.restart_replica(shard, replica, now);
                format!("recover restart-replica shard={shard} replica={replica}")
            }
            Fault::CrashGtm => {
                db.crash_gtm();
                "fault crash-gtm".into()
            }
            Fault::RestartGtm => {
                db.restart_gtm();
                "recover restart-gtm".into()
            }
            Fault::CrashCn { cn } => {
                db.crash_cn(cn);
                format!("fault crash-cn cn={cn}")
            }
            Fault::RestartCn { cn } => {
                db.restart_cn(cn, now);
                format!("recover restart-cn cn={cn}")
            }
            Fault::PartitionRegions { a, b } => {
                db.partition_regions(a, b);
                format!("fault partition regions {a}<->{b}")
            }
            Fault::HealRegions { a, b } => {
                db.heal_regions(a, b);
                format!("recover heal regions {a}<->{b}")
            }
            Fault::DelaySpike { extra } => {
                db.set_injected_delay(extra);
                format!("fault delay-spike +{}us", extra.as_micros())
            }
            Fault::ClearDelay => {
                db.set_injected_delay(SimDuration::ZERO);
                "recover clear-delay".into()
            }
            Fault::ClockSyncOutage { cn } => {
                db.block_clock_sync(cn);
                format!("fault clock-sync-outage cn={cn}")
            }
            Fault::ClockSyncResume { cn } => {
                db.resume_clock_sync(cn, now);
                format!("recover clock-sync-resume cn={cn}")
            }
            Fault::StartMigration {
                shard,
                to_region,
                to_host,
            } => {
                if to_region >= db.regions().len() {
                    return format!("skip start-migration shard={shard}: no region {to_region}");
                }
                let region = db.regions()[to_region];
                match globaldb::migrate::start_migration(db, sim, shard, region, to_host) {
                    Ok(()) => {
                        format!("fault start-migration shard={shard} to=r{to_region}h{to_host}")
                    }
                    Err(e) => format!("skip start-migration shard={shard}: {e}"),
                }
            }
            Fault::CrashMigrationTarget => match db.migration().map(|m| m.target) {
                Some(node) => {
                    db.topo_mut().set_node_down(node, true);
                    state.crashed_migration_target = Some(node);
                    format!("fault crash-migration-target node={}", node.0)
                }
                None => "skip crash-migration-target: no migration in flight".into(),
            },
            Fault::RestoreMigrationTarget => match state.crashed_migration_target.take() {
                Some(node) => {
                    db.restore_node(node);
                    format!("recover restore-migration-target node={}", node.0)
                }
                None => "skip restore-migration-target: nothing crashed".into(),
            },
            Fault::CrashMigrationSource => {
                let pick = db
                    .migrations()
                    .iter()
                    .find(|m| {
                        matches!(
                            m.phase,
                            globaldb::MigrationPhase::Barrier | globaldb::MigrationPhase::Ready
                        )
                    })
                    .or_else(|| db.migrations().first())
                    .map(|m| (m.source, m.shard));
                match pick {
                    Some((node, shard)) => {
                        db.topo_mut().set_node_down(node, true);
                        state.crashed_migration_source = Some((node, shard));
                        format!("fault crash-migration-source shard={shard} node={}", node.0)
                    }
                    None => "skip crash-migration-source: no migration in flight".into(),
                }
            }
            Fault::RestoreMigrationSource => match state.crashed_migration_source.take() {
                Some((node, shard)) => {
                    let still_primary = db.shards().get(shard).map(|s| s.primary) == Some(node);
                    let replica_idx = db
                        .shards()
                        .get(shard)
                        .and_then(|s| s.replicas.iter().position(|r| r.node == node));
                    if still_primary {
                        db.restart_primary(shard);
                        format!("recover restore-migration-source shard={shard} (primary restart)")
                    } else if let Some(ri) = replica_idx {
                        db.restart_replica(shard, ri, now);
                        format!("recover restore-migration-source shard={shard} (replica restart)")
                    } else {
                        db.restore_node(node);
                        format!("recover restore-migration-source node={} (orphan)", node.0)
                    }
                }
                None => "skip restore-migration-source: nothing crashed".into(),
            },
            Fault::AddNode { region, host } => {
                if region >= db.regions().len() {
                    return format!("skip add-node: no region {region}");
                }
                let r = db.regions()[region];
                let node = db.join_data_node(r, host);
                format!("fault add-node r{region}h{host} node={}", node.0)
            }
            Fault::RemoveNode { region, host } => {
                if region >= db.regions().len() {
                    return format!("skip remove-node: no region {region}");
                }
                let r = db.regions()[region];
                match gdb_rebalance::drain_host(db, sim, r, host) {
                    Ok(0) => format!("fault remove-node r{region}h{host}: empty, retired"),
                    Ok(n) => format!("fault remove-node r{region}h{host}: draining {n} placements"),
                    Err(e) => format!("skip remove-node r{region}h{host}: {e}"),
                }
            }
        }
    }

    /// True for faults that break something (as opposed to recoveries).
    /// `StartMigration` is neither: an online admin action that keeps the
    /// shard available and self-recovers (cutover or abort).
    pub fn is_injection(&self) -> bool {
        matches!(
            self,
            Fault::CrashPrimary { .. }
                | Fault::CrashReplica { .. }
                | Fault::CrashGtm
                | Fault::CrashCn { .. }
                | Fault::PartitionRegions { .. }
                | Fault::DelaySpike { .. }
                | Fault::ClockSyncOutage { .. }
                | Fault::CrashMigrationTarget
                | Fault::CrashMigrationSource
        )
    }
}
