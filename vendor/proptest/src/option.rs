//! `proptest::option::of` — optional values.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// Strategy producing `Option<T>` (≈75% `Some`, like upstream's default).
pub struct OptionStrategy<S> {
    inner: S,
}

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
        if rng.gen_ratio(3, 4) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
