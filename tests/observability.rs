//! Observability integration: identical seeds produce bit-identical
//! traces and metrics snapshots; transaction spans nest their phase
//! children; the per-phase histograms make the paper's commit-wait story
//! (GTM round trip vs bounded GClock wait) visible in numbers.

use gdb_workloads::driver::{run_workload, RunConfig, Workload};
use gdb_workloads::tpcc::{TpccMix, TpccScale, TpccWorkload};
use globaldb::{
    Cluster, ClusterConfig, MetricsReport, SimDuration, SimTime, SpanKind, TmMode,
    TransitionDirection,
};

/// Run a short TPC-C burst and return the trace render + metrics
/// snapshot (the cluster too, for span-level assertions).
fn run_tpcc(config: ClusterConfig, workload_seed: u64) -> (Cluster, String, MetricsReport) {
    let mut cluster = Cluster::new(config);
    cluster.db.obs_mut().tracer.enable(500_000);
    let mut wl = TpccWorkload::new(TpccScale::tiny(), TpccMix::standard(), workload_seed);
    wl.setup(&mut cluster).expect("tpcc setup");
    run_workload(
        &mut cluster,
        &mut wl,
        RunConfig {
            terminals: 4,
            duration: SimDuration::from_secs(1),
            warmup: SimDuration::from_millis(200),
            think_time: SimDuration::from_millis(10),
        },
    );
    let render = cluster.db.obs().tracer.render();
    let snap = cluster.db.metrics_snapshot();
    (cluster, render, snap)
}

#[test]
fn identical_seeds_identical_trace_and_metrics() {
    let (_, render_a, snap_a) = run_tpcc(ClusterConfig::globaldb_three_city(), 42);
    let (_, render_b, snap_b) = run_tpcc(ClusterConfig::globaldb_three_city(), 42);
    assert!(!render_a.is_empty(), "tracer recorded nothing");
    assert_eq!(render_a, render_b, "same seed produced different traces");
    assert_eq!(snap_a, snap_b, "same seed produced different metrics");

    let (_, render_c, _) = run_tpcc(ClusterConfig::globaldb_three_city(), 43);
    assert_ne!(
        render_a, render_c,
        "different seeds replayed the same trace"
    );
}

#[test]
fn txn_spans_nest_their_phases() {
    let (cluster, _, _) = run_tpcc(ClusterConfig::globaldb_three_city(), 42);
    let tracer = &cluster.db.obs().tracer;
    assert_eq!(tracer.dropped(), 0, "span capacity too small for this run");

    // Find a write transaction: a Txn root with all five phase children.
    let write_txn = tracer
        .spans()
        .iter()
        .filter(|s| s.is_root() && s.kind == SpanKind::Txn)
        .find(|s| tracer.children(s.id).len() == 5)
        .expect("no write transaction recorded");
    let kids = tracer.children(write_txn.id);
    let kinds: Vec<SpanKind> = kids.iter().map(|s| s.kind).collect();
    assert_eq!(
        kinds,
        vec![
            SpanKind::SnapshotAcquire,
            SpanKind::Execute,
            SpanKind::Prepare,
            SpanKind::CommitWait,
            SpanKind::ReplicationAck,
        ]
    );
    // Phases tile the transaction: each child starts where the previous
    // ended, the first at txn begin, the last ending at the final ack.
    assert_eq!(kids[0].start, write_txn.start);
    for pair in kids.windows(2) {
        assert_eq!(pair[0].end, pair[1].start);
    }
    assert_eq!(kids.last().unwrap().end, write_txn.end);

    // Read-only transactions record just snapshot + execute.
    let read_txn = tracer
        .spans()
        .iter()
        .filter(|s| s.is_root() && s.kind == SpanKind::Txn)
        .find(|s| tracer.children(s.id).len() == 2);
    if let Some(r) = read_txn {
        let kinds: Vec<SpanKind> = tracer.children(r.id).iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![SpanKind::SnapshotAcquire, SpanKind::Execute]);
    }

    // Background activities are spanned too.
    assert!(
        tracer.spans().iter().any(|s| s.kind == SpanKind::LogShip),
        "no log-shipping spans"
    );
}

#[test]
fn two_pc_branch_spans_cover_their_phase() {
    let (cluster, _, _) = run_tpcc(ClusterConfig::globaldb_three_city(), 42);
    let tracer = &cluster.db.obs().tracer;

    // Every write transaction fans its commit record out per shard; the
    // branches are children of the replication-ack span, all starting at
    // the phase start (the fan-out is parallel) with the slowest branch
    // defining the phase end. Multi-shard writes additionally carry
    // prepare branches under the prepare span with the same covering
    // geometry.
    let mut repl_checked = 0;
    let mut prepare_checked = 0;
    for txn in tracer
        .spans()
        .iter()
        .filter(|s| s.is_root() && s.kind == SpanKind::Txn)
    {
        let kids = tracer.children(txn.id);
        if kids.len() != 5 {
            continue; // read-only
        }
        for phase in [&kids[2], &kids[4]] {
            // Prepare, ReplicationAck
            let branches = tracer.children(phase.id);
            if branches.is_empty() {
                assert_eq!(
                    phase.kind,
                    SpanKind::Prepare,
                    "replication-ack span must have branch children"
                );
                continue; // single-shard commit: no prepare round
            }
            for b in &branches {
                assert_eq!(b.kind, SpanKind::TwoPcBranch);
                assert_eq!(b.start, phase.start, "branch starts at phase start");
                assert!(b.end <= phase.end, "branch outlives its phase");
            }
            let slowest = branches.iter().map(|b| b.end).max().unwrap();
            assert_eq!(
                slowest, phase.end,
                "the slowest branch must define the phase end"
            );
            match phase.kind {
                SpanKind::Prepare => prepare_checked += 1,
                _ => repl_checked += 1,
            }
        }
    }
    assert!(repl_checked > 0, "no replication-ack branches recorded");
    assert!(
        prepare_checked > 0,
        "no multi-shard prepare branches recorded (TPC-C new-order should cross shards)"
    );
}

#[test]
fn transition_spans_tile_the_protocol_phases() {
    // GTM → GClock (with a DUAL hold window), then back. Each completed
    // transition records a root span whose phase children tile it.
    let mut cfg = ClusterConfig::globaldb_one_region();
    cfg.tm_mode = TmMode::Gtm;
    let mut c = Cluster::new(cfg);
    c.db.obs_mut().tracer.enable(10_000);
    c.run_until(SimTime::from_millis(100));
    c.start_transition(TransitionDirection::ToGClock);
    c.run_until(SimTime::from_secs(2));
    assert_eq!(
        c.db.last_transition_completed(),
        Some(TransitionDirection::ToGClock)
    );
    c.start_transition(TransitionDirection::ToGtm);
    c.run_until(SimTime::from_secs(4));
    assert_eq!(
        c.db.last_transition_completed(),
        Some(TransitionDirection::ToGtm)
    );

    let tracer = &c.db.obs().tracer;
    let transitions: Vec<_> = tracer
        .spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Transition)
        .collect();
    assert_eq!(transitions.len(), 2, "one span per completed transition");
    // Labels: 0 = ToGClock, 1 = ToGtm, in execution order.
    assert_eq!(transitions[0].label, 0);
    assert_eq!(transitions[1].label, 1);

    for root in &transitions {
        assert!(root.is_root());
        assert!(root.end > root.start, "transition span has real extent");
        let kids = tracer.children(root.id);
        assert!(
            kids.len() == 2 || kids.len() == 3,
            "dual-acks [+ hold] + final-acks, got {} children",
            kids.len()
        );
        assert_eq!(kids[0].kind, SpanKind::TransitionDualAcks);
        if kids.len() == 3 {
            assert_eq!(kids[1].kind, SpanKind::TransitionHold);
        }
        assert_eq!(kids.last().unwrap().kind, SpanKind::TransitionFinalAcks);
        // The phases tile the root exactly.
        assert_eq!(kids[0].start, root.start);
        for pair in kids.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "phase gap in {:?}", root.kind);
        }
        assert_eq!(kids.last().unwrap().end, root.end);
    }
    // GTM → GClock passes through the DUAL hold wait; the reverse
    // direction switches as soon as the DUAL acks are in.
    assert_eq!(tracer.children(transitions[0].id).len(), 3);
    assert_eq!(tracer.children(transitions[1].id).len(), 2);
}

#[test]
fn phase_histograms_expose_commit_wait_contrast() {
    // GTM + sync replication across three cities vs GClock + async: the
    // paper's Fig. 6a gap must be visible in the phase histograms.
    let (_, _, baseline) = run_tpcc(ClusterConfig::baseline_three_city(), 42);
    let (_, _, globaldb) = run_tpcc(ClusterConfig::globaldb_three_city(), 42);

    for snap in [&baseline, &globaldb] {
        for phase in ["execute", "commit_wait"] {
            let h = snap
                .histogram(&format!("txnmgr.phase.{phase}_us"))
                .unwrap_or_else(|| panic!("missing phase histogram {phase}"));
            assert!(h.count > 0, "empty phase histogram {phase}");
        }
        assert!(snap.histogram("txnmgr.latency_us").is_some());
    }
    let base_wait = baseline.histogram("txnmgr.phase.commit_wait_us").unwrap();
    let gdb_wait = globaldb.histogram("txnmgr.phase.commit_wait_us").unwrap();
    assert!(
        base_wait.mean_us > 10 * gdb_wait.mean_us,
        "GTM commit wait ({} us) should dwarf GClock's ({} us)",
        base_wait.mean_us,
        gdb_wait.mean_us
    );

    // Counters mirrored from cluster stats and the network are present.
    assert!(globaldb.counter("txnmgr.committed").unwrap() > 0);
    assert!(globaldb.counter("simnet.msgs").unwrap() > 0);
    assert!(globaldb.counter("router.skyline.selections").unwrap() > 0);
    assert!(globaldb.counter("replication.ship.batches").unwrap() > 0);
    // Cross-region traffic counts real shipped bytes, not just probes.
    let msgs = globaldb.counter("simnet.cross_region.msgs").unwrap();
    let bytes = globaldb.counter("simnet.cross_region.bytes").unwrap();
    assert!(msgs > 0 && bytes > msgs, "cross-region bytes undercounted");
}
