//! The metrics registry: named counters, gauges, and bounded-quantile
//! histograms.
//!
//! Names are usually `&'static str` constants owned by the subsystem
//! crates (`gdb_txnmgr::metrics`, `gdb_replication::metrics`, …) in a
//! `subsystem.noun[_unit]` scheme — e.g. `txnmgr.phase.commit_wait_us`,
//! `replication.ship.wire_bytes`, `rcp.rounds`. Labelled instruments
//! (per-`RpcKind`, per-region-pair) pass an owned `String`; keys are
//! `Cow<'static, str>` so the static-name hot path stays allocation-free.
//! Registration is implicit: the first record of a name creates the
//! instrument. Storage is `BTreeMap`-backed so snapshots iterate in
//! deterministic name order.
//!
//! Histograms use [`LatencyHistogram::bounded`] — O(1) memory streaming
//! summaries — so per-transaction hot paths never accumulate per-sample
//! storage.

use gdb_simnet::stats::LatencyHistogram;
use gdb_simnet::SimDuration;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Instrument name: a static constant or an owned labelled name.
pub type MetricName = Cow<'static, str>;

/// Live instrument storage.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricName, u64>,
    gauges: BTreeMap<MetricName, f64>,
    histograms: BTreeMap<MetricName, LatencyHistogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (created at zero on first use).
    pub fn count(&mut self, name: impl Into<MetricName>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    pub fn incr(&mut self, name: impl Into<MetricName>) {
        self.count(name, 1);
    }

    /// Set counter `name` to an absolute value (for mirroring externally
    /// maintained totals into the registry at snapshot time).
    pub fn set_counter(&mut self, name: impl Into<MetricName>, value: u64) {
        self.counters.insert(name.into(), value);
    }

    pub fn gauge(&mut self, name: impl Into<MetricName>, value: f64) {
        self.gauges.insert(name.into(), value);
    }

    /// Record one latency observation into bounded histogram `name`.
    pub fn observe(&mut self, name: impl Into<MetricName>, d: SimDuration) {
        self.histograms
            .entry(name.into())
            .or_insert_with(LatencyHistogram::bounded)
            .record(d);
    }

    /// Replace histogram `name` wholesale (for mirroring histograms
    /// maintained outside the registry into a snapshot).
    pub fn set_histogram(&mut self, name: impl Into<MetricName>, h: LatencyHistogram) {
        self.histograms.insert(name.into(), h);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(name)
    }

    /// Freeze the registry into a comparable, serializable report.
    pub fn snapshot(&self) -> MetricsReport {
        let mut metrics = BTreeMap::new();
        for (name, &v) in &self.counters {
            metrics.insert(name.to_string(), Metric::Counter(v));
        }
        for (name, &v) in &self.gauges {
            metrics.insert(name.to_string(), Metric::Gauge(v));
        }
        for (name, h) in &self.histograms {
            metrics.insert(name.to_string(), Metric::Histogram(HistSummary::of(h)));
        }
        MetricsReport { metrics }
    }
}

/// One snapshotted instrument.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(HistSummary),
}

/// Quantile summary of a histogram at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistSummary {
    pub count: u64,
    pub sum_us: u64,
    pub min_us: u64,
    pub max_us: u64,
    pub mean_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub p999_us: u64,
}

impl HistSummary {
    /// Encode as a JSON object (member order is the schema order).
    pub fn to_json(&self) -> crate::Json {
        use crate::Json;
        Json::obj(vec![
            ("count", Json::u64(self.count)),
            ("sum_us", Json::u64(self.sum_us)),
            ("min_us", Json::u64(self.min_us)),
            ("max_us", Json::u64(self.max_us)),
            ("mean_us", Json::u64(self.mean_us)),
            ("p50_us", Json::u64(self.p50_us)),
            ("p95_us", Json::u64(self.p95_us)),
            ("p99_us", Json::u64(self.p99_us)),
            ("p999_us", Json::u64(self.p999_us)),
        ])
    }

    /// Decode a summary encoded by [`HistSummary::to_json`]. `ctx` names
    /// the field in error messages.
    pub fn from_json(v: &crate::Json, ctx: &str) -> Result<Self, String> {
        use crate::Json;
        let f = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{ctx}: missing {k}"))
        };
        Ok(HistSummary {
            count: f("count")?,
            sum_us: f("sum_us")?,
            min_us: f("min_us")?,
            max_us: f("max_us")?,
            mean_us: f("mean_us")?,
            p50_us: f("p50_us")?,
            p95_us: f("p95_us")?,
            p99_us: f("p99_us")?,
            p999_us: f("p999_us")?,
        })
    }

    pub fn of(h: &LatencyHistogram) -> Self {
        let b = h.to_summary();
        HistSummary {
            count: b.count(),
            sum_us: b.sum_us(),
            min_us: b.min_us(),
            max_us: b.max_us(),
            mean_us: if b.count() == 0 {
                0
            } else {
                b.sum_us() / b.count()
            },
            p50_us: b.percentile_us(50.0),
            p95_us: b.percentile_us(95.0),
            p99_us: b.percentile_us(99.0),
            p999_us: b.percentile_us(99.9),
        }
    }
}

/// A frozen, ordered view of every instrument. `PartialEq` lets tests
/// assert determinism across identical seeds directly.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsReport {
    pub metrics: BTreeMap<String, Metric>,
}

impl MetricsReport {
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn histogram(&self, name: &str) -> Option<&HistSummary> {
        match self.metrics.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Encode as a JSON object, one member per metric, in name order.
    pub fn to_json(&self) -> crate::Json {
        use crate::Json;
        let mut pairs = Vec::with_capacity(self.metrics.len());
        for (name, m) in &self.metrics {
            let v = match m {
                Metric::Counter(c) => Json::u64(*c),
                Metric::Gauge(g) => Json::Num(*g),
                Metric::Histogram(h) => h.to_json(),
            };
            pairs.push((name.clone(), v));
        }
        Json::Obj(pairs)
    }

    /// Decode a report encoded by [`MetricsReport::to_json`]. A JSON
    /// number is a counter if integral, a gauge otherwise; an object is a
    /// histogram summary.
    pub fn from_json(v: &crate::Json) -> Result<Self, String> {
        use crate::Json;
        let pairs = v.as_obj().ok_or("metrics: expected object")?;
        let mut metrics = BTreeMap::new();
        for (name, val) in pairs {
            let m = match val {
                Json::Num(n) if *n == n.trunc() && *n >= 0.0 => Metric::Counter(*n as u64),
                Json::Num(n) => Metric::Gauge(*n),
                Json::Obj(_) => {
                    Metric::Histogram(HistSummary::from_json(val, &format!("metrics.{name}"))?)
                }
                other => return Err(format!("metrics.{name}: unexpected {other:?}")),
            };
            metrics.insert(name.clone(), m);
        }
        Ok(MetricsReport { metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = MetricsRegistry::new();
        r.incr("a.events");
        r.count("a.events", 4);
        r.gauge("a.load", 0.5);
        assert_eq!(r.counter("a.events"), 5);
        assert_eq!(r.counter("missing"), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.events"), Some(5));
        assert_eq!(snap.gauge("a.load"), Some(0.5));
        assert_eq!(snap.counter("a.load"), None);
    }

    #[test]
    fn histograms_are_bounded() {
        let mut r = MetricsRegistry::new();
        for i in 0..10_000u64 {
            r.observe("x.lat_us", SimDuration::from_micros(100 + i % 50));
        }
        assert!(r.histogram("x.lat_us").unwrap().is_bounded());
        let snap = r.snapshot();
        let h = snap.histogram("x.lat_us").unwrap();
        assert_eq!(h.count, 10_000);
        assert!(h.p50_us >= 100 && h.p99_us <= 150);
        assert!(h.min_us == 100 && h.max_us == 149);
    }

    #[test]
    fn snapshot_equality_and_order() {
        let build = |n: u64| {
            let mut r = MetricsRegistry::new();
            r.count("z.last", n);
            r.count("a.first", 1);
            r.observe("m.lat_us", SimDuration::from_micros(n));
            r.snapshot()
        };
        assert_eq!(build(9), build(9));
        assert_ne!(build(9), build(10));
        let names: Vec<_> = build(1).metrics.keys().cloned().collect();
        assert_eq!(names, vec!["a.first", "m.lat_us", "z.last"]);
    }

    #[test]
    fn json_round_trip() {
        let mut r = MetricsRegistry::new();
        r.count("c.n", 3);
        r.gauge("g.v", 1.25);
        r.observe("h.lat_us", SimDuration::from_micros(42));
        let snap = r.snapshot();
        let text = snap.to_json().to_pretty();
        let back = MetricsReport::from_json(&crate::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }
}
