//! Redo record types and their binary encoding.

use crate::codec::{
    get_data_type, get_key, get_key_into, get_row, get_row_into, put_data_type, put_key, put_row,
    put_str, put_varint, DecodeError, Reader,
};
use crate::crc::crc32;
use gdb_model::{ColumnDef, DistributionKind, Row, RowKey, TableId, TableSchema, Timestamp, TxnId};
use std::fmt;

/// Log sequence number: position of a record in one primary's redo stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn{}", self.0)
    }
}

/// Errors from encoding/decoding the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// Byte-level decode failure.
    Decode(String),
    /// CRC mismatch: the record was corrupted in flight.
    Corrupt { lsn: u64 },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Decode(m) => write!(f, "wal decode error: {m}"),
            WalError::Corrupt { lsn } => write!(f, "wal record at lsn {lsn} failed CRC"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<DecodeError> for WalError {
    fn from(e: DecodeError) -> Self {
        // Formatting only happens when an error actually surfaces; the
        // hot decode path carries the `Copy` enum until then.
        WalError::Decode(e.to_string())
    }
}

/// DDL operations that replicate through the log (paper §IV-A: ROR queries
/// must be consistent with replayed DDL).
#[derive(Debug, Clone, PartialEq)]
pub enum DdlKind {
    CreateTable(TableSchema),
    DropTable(TableId),
    /// Create a secondary index over the given column positions.
    CreateIndex {
        table: TableId,
        index_name: String,
        columns: Vec<usize>,
    },
    DropIndex {
        table: TableId,
        index_name: String,
    },
}

/// The body of a redo record.
#[derive(Debug, Clone, PartialEq)]
pub enum RedoPayload {
    /// A new row version inserted.
    Insert {
        table: TableId,
        key: RowKey,
        row: Row,
    },
    /// An existing row overwritten with a new version.
    Update {
        table: TableId,
        key: RowKey,
        new_row: Row,
    },
    /// A row deleted.
    Delete { table: TableId, key: RowKey },
    /// Written at the primary *before* the transaction obtains its
    /// invocation timestamp; locks the transaction's tuples on the replica
    /// until a Commit/Abort replays (paper §IV-A). This is the safeguard
    /// against commit records appearing in the log out of timestamp order.
    PendingCommit,
    /// Transaction committed at `commit_ts`.
    Commit { commit_ts: Timestamp },
    /// Transaction aborted; its versions are discarded.
    Abort,
    /// 2PC: participant prepared. Visibility of this transaction's tuples
    /// on replicas blocks until CommitPrepared/AbortPrepared replays.
    Prepare,
    /// 2PC: prepared transaction committed at `commit_ts`.
    CommitPrepared { commit_ts: Timestamp },
    /// 2PC: prepared transaction rolled back.
    AbortPrepared,
    /// A replicated DDL statement, stamped with its commit timestamp.
    Ddl { commit_ts: Timestamp, kind: DdlKind },
    /// Periodic no-op commit so a replica's max-commit-timestamp advances
    /// even when it receives no real transactions (paper §IV-A).
    Heartbeat { commit_ts: Timestamp },
    /// Replay barrier used at recovery boundaries.
    Checkpoint { as_of: Timestamp },
}

impl RedoPayload {
    /// True for the record kinds that advance a replica's max commit
    /// timestamp when replayed.
    pub fn commit_timestamp(&self) -> Option<Timestamp> {
        match self {
            RedoPayload::Commit { commit_ts }
            | RedoPayload::CommitPrepared { commit_ts }
            | RedoPayload::Ddl { commit_ts, .. }
            | RedoPayload::Heartbeat { commit_ts } => Some(*commit_ts),
            _ => None,
        }
    }
}

/// One redo record: stream position, owning transaction, and payload.
#[derive(Debug, Clone, PartialEq)]
pub struct RedoRecord {
    pub lsn: Lsn,
    pub txn: TxnId,
    pub payload: RedoPayload,
}

/// Borrowed view of a [`RedoPayload`], so hot-path writers can encode a
/// record straight from the live key/row they are installing — no owned
/// `RowKey`/`Row` clones just to build a payload that is immediately
/// serialized and dropped. Encodes byte-identically to the owned form.
#[derive(Debug, Clone, Copy)]
pub enum RedoPayloadRef<'a> {
    Insert {
        table: TableId,
        key: &'a RowKey,
        row: &'a Row,
    },
    Update {
        table: TableId,
        key: &'a RowKey,
        new_row: &'a Row,
    },
    Delete {
        table: TableId,
        key: &'a RowKey,
    },
    PendingCommit,
    Commit {
        commit_ts: Timestamp,
    },
    Abort,
    Prepare,
    CommitPrepared {
        commit_ts: Timestamp,
    },
    AbortPrepared,
    Ddl {
        commit_ts: Timestamp,
        kind: &'a DdlKind,
    },
    Heartbeat {
        commit_ts: Timestamp,
    },
    Checkpoint {
        as_of: Timestamp,
    },
}

impl RedoPayload {
    /// The borrowed encoding view of this payload.
    pub fn as_view(&self) -> RedoPayloadRef<'_> {
        match self {
            RedoPayload::Insert { table, key, row } => RedoPayloadRef::Insert {
                table: *table,
                key,
                row,
            },
            RedoPayload::Update {
                table,
                key,
                new_row,
            } => RedoPayloadRef::Update {
                table: *table,
                key,
                new_row,
            },
            RedoPayload::Delete { table, key } => RedoPayloadRef::Delete { table: *table, key },
            RedoPayload::PendingCommit => RedoPayloadRef::PendingCommit,
            RedoPayload::Commit { commit_ts } => RedoPayloadRef::Commit {
                commit_ts: *commit_ts,
            },
            RedoPayload::Abort => RedoPayloadRef::Abort,
            RedoPayload::Prepare => RedoPayloadRef::Prepare,
            RedoPayload::CommitPrepared { commit_ts } => RedoPayloadRef::CommitPrepared {
                commit_ts: *commit_ts,
            },
            RedoPayload::AbortPrepared => RedoPayloadRef::AbortPrepared,
            RedoPayload::Ddl { commit_ts, kind } => RedoPayloadRef::Ddl {
                commit_ts: *commit_ts,
                kind,
            },
            RedoPayload::Heartbeat { commit_ts } => RedoPayloadRef::Heartbeat {
                commit_ts: *commit_ts,
            },
            RedoPayload::Checkpoint { as_of } => RedoPayloadRef::Checkpoint { as_of: *as_of },
        }
    }
}

// Payload tags.
const P_INSERT: u8 = 1;
const P_UPDATE: u8 = 2;
const P_DELETE: u8 = 3;
const P_PENDING: u8 = 4;
const P_COMMIT: u8 = 5;
const P_ABORT: u8 = 6;
const P_PREPARE: u8 = 7;
const P_COMMIT_PREP: u8 = 8;
const P_ABORT_PREP: u8 = 9;
const P_DDL: u8 = 10;
const P_HEARTBEAT: u8 = 11;
const P_CHECKPOINT: u8 = 12;

const D_CREATE_TABLE: u8 = 1;
const D_DROP_TABLE: u8 = 2;
const D_CREATE_INDEX: u8 = 3;
const D_DROP_INDEX: u8 = 4;

fn put_schema(out: &mut Vec<u8>, s: &TableSchema) {
    put_varint(out, s.id.0 as u64);
    put_str(out, &s.name);
    put_varint(out, s.columns.len() as u64);
    for c in &s.columns {
        put_str(out, &c.name);
        put_data_type(out, c.data_type);
        out.push(c.nullable as u8);
        out.push(c.scale);
    }
    put_varint(out, s.primary_key.len() as u64);
    for &i in &s.primary_key {
        put_varint(out, i as u64);
    }
    put_varint(out, s.distribution_key.len() as u64);
    for &i in &s.distribution_key {
        put_varint(out, i as u64);
    }
    match &s.distribution {
        DistributionKind::Hash => out.push(0),
        DistributionKind::Range { split_points } => {
            out.push(1);
            put_varint(out, split_points.len() as u64);
            for &p in split_points {
                crate::codec::put_varint_i64(out, p);
            }
        }
        DistributionKind::Replicated => out.push(2),
    }
}

fn get_schema(r: &mut Reader) -> Result<TableSchema, WalError> {
    let id = TableId(r.varint()? as u32);
    let name = r.str()?;
    let ncols = r.varint()? as usize;
    let mut columns = Vec::with_capacity(ncols.min(256));
    for _ in 0..ncols {
        let cname = r.str()?;
        let dt = get_data_type(r)?;
        let nullable = r.u8()? != 0;
        let scale = r.u8()?;
        columns.push(ColumnDef {
            name: cname,
            data_type: dt,
            nullable,
            scale,
        });
    }
    let npk = r.varint()? as usize;
    let mut primary_key = Vec::with_capacity(npk.min(16));
    for _ in 0..npk {
        primary_key.push(r.varint()? as usize);
    }
    let ndk = r.varint()? as usize;
    let mut distribution_key = Vec::with_capacity(ndk.min(16));
    for _ in 0..ndk {
        distribution_key.push(r.varint()? as usize);
    }
    let distribution = match r.u8()? {
        0 => DistributionKind::Hash,
        1 => {
            let n = r.varint()? as usize;
            let mut split_points = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                split_points.push(r.varint_i64()?);
            }
            DistributionKind::Range { split_points }
        }
        2 => DistributionKind::Replicated,
        t => return Err(WalError::Decode(format!("bad distribution tag {t}"))),
    };
    Ok(TableSchema {
        id,
        name,
        columns,
        primary_key,
        distribution_key,
        distribution,
    })
}

fn put_payload_ref(out: &mut Vec<u8>, p: RedoPayloadRef<'_>) {
    match p {
        RedoPayloadRef::Insert { table, key, row } => {
            out.push(P_INSERT);
            put_varint(out, table.0 as u64);
            put_key(out, key);
            put_row(out, row);
        }
        RedoPayloadRef::Update {
            table,
            key,
            new_row,
        } => {
            out.push(P_UPDATE);
            put_varint(out, table.0 as u64);
            put_key(out, key);
            put_row(out, new_row);
        }
        RedoPayloadRef::Delete { table, key } => {
            out.push(P_DELETE);
            put_varint(out, table.0 as u64);
            put_key(out, key);
        }
        RedoPayloadRef::PendingCommit => out.push(P_PENDING),
        RedoPayloadRef::Commit { commit_ts } => {
            out.push(P_COMMIT);
            put_varint(out, commit_ts.0);
        }
        RedoPayloadRef::Abort => out.push(P_ABORT),
        RedoPayloadRef::Prepare => out.push(P_PREPARE),
        RedoPayloadRef::CommitPrepared { commit_ts } => {
            out.push(P_COMMIT_PREP);
            put_varint(out, commit_ts.0);
        }
        RedoPayloadRef::AbortPrepared => out.push(P_ABORT_PREP),
        RedoPayloadRef::Ddl { commit_ts, kind } => {
            out.push(P_DDL);
            put_varint(out, commit_ts.0);
            match kind {
                DdlKind::CreateTable(s) => {
                    out.push(D_CREATE_TABLE);
                    put_schema(out, s);
                }
                DdlKind::DropTable(t) => {
                    out.push(D_DROP_TABLE);
                    put_varint(out, t.0 as u64);
                }
                DdlKind::CreateIndex {
                    table,
                    index_name,
                    columns,
                } => {
                    out.push(D_CREATE_INDEX);
                    put_varint(out, table.0 as u64);
                    put_str(out, index_name);
                    put_varint(out, columns.len() as u64);
                    for &c in columns {
                        put_varint(out, c as u64);
                    }
                }
                DdlKind::DropIndex { table, index_name } => {
                    out.push(D_DROP_INDEX);
                    put_varint(out, table.0 as u64);
                    put_str(out, index_name);
                }
            }
        }
        RedoPayloadRef::Heartbeat { commit_ts } => {
            out.push(P_HEARTBEAT);
            put_varint(out, commit_ts.0);
        }
        RedoPayloadRef::Checkpoint { as_of } => {
            out.push(P_CHECKPOINT);
            put_varint(out, as_of.0);
        }
    }
}

fn get_payload(r: &mut Reader) -> Result<RedoPayload, WalError> {
    Ok(match r.u8()? {
        P_INSERT => RedoPayload::Insert {
            table: TableId(r.varint()? as u32),
            key: get_key(r)?,
            row: get_row(r)?,
        },
        P_UPDATE => RedoPayload::Update {
            table: TableId(r.varint()? as u32),
            key: get_key(r)?,
            new_row: get_row(r)?,
        },
        P_DELETE => RedoPayload::Delete {
            table: TableId(r.varint()? as u32),
            key: get_key(r)?,
        },
        P_PENDING => RedoPayload::PendingCommit,
        P_COMMIT => RedoPayload::Commit {
            commit_ts: Timestamp(r.varint()?),
        },
        P_ABORT => RedoPayload::Abort,
        P_PREPARE => RedoPayload::Prepare,
        P_COMMIT_PREP => RedoPayload::CommitPrepared {
            commit_ts: Timestamp(r.varint()?),
        },
        P_ABORT_PREP => RedoPayload::AbortPrepared,
        P_DDL => {
            let commit_ts = Timestamp(r.varint()?);
            let kind = match r.u8()? {
                D_CREATE_TABLE => DdlKind::CreateTable(get_schema(r)?),
                D_DROP_TABLE => DdlKind::DropTable(TableId(r.varint()? as u32)),
                D_CREATE_INDEX => {
                    let table = TableId(r.varint()? as u32);
                    let index_name = r.str()?;
                    let n = r.varint()? as usize;
                    let mut columns = Vec::with_capacity(n.min(16));
                    for _ in 0..n {
                        columns.push(r.varint()? as usize);
                    }
                    DdlKind::CreateIndex {
                        table,
                        index_name,
                        columns,
                    }
                }
                D_DROP_INDEX => DdlKind::DropIndex {
                    table: TableId(r.varint()? as u32),
                    index_name: r.str()?,
                },
                t => return Err(WalError::Decode(format!("bad ddl tag {t}"))),
            };
            RedoPayload::Ddl { commit_ts, kind }
        }
        P_HEARTBEAT => RedoPayload::Heartbeat {
            commit_ts: Timestamp(r.varint()?),
        },
        P_CHECKPOINT => RedoPayload::Checkpoint {
            as_of: Timestamp(r.varint()?),
        },
        t => return Err(WalError::Decode(format!("bad payload tag {t}"))),
    })
}

/// Reusable staging buffer for record framing. The body must be built
/// before the frame (its length prefixes it); staging it here instead
/// of a fresh `Vec` per record makes steady-state encoding
/// allocation-free.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    body: Vec<u8>,
}

/// Encode one record with a length-prefixed frame and trailing CRC:
/// `varint(body_len) body crc32(body):u32le` where
/// `body = varint(lsn) varint(txn) payload`.
pub fn encode_record(out: &mut Vec<u8>, rec: &RedoRecord) {
    let mut scratch = EncodeScratch {
        body: Vec::with_capacity(64),
    };
    encode_record_into(&mut scratch, out, rec);
}

/// [`encode_record`] reusing a caller-owned staging buffer.
pub fn encode_record_into(scratch: &mut EncodeScratch, out: &mut Vec<u8>, rec: &RedoRecord) {
    encode_record_parts(scratch, out, rec.lsn, rec.txn, rec.payload.as_view());
}

/// Frame a record directly from borrowed payload parts — the zero-copy
/// write path: no owned payload, no per-record body `Vec`. Byte-for-byte
/// identical to [`encode_record`] on the equivalent owned record.
pub fn encode_record_parts(
    scratch: &mut EncodeScratch,
    out: &mut Vec<u8>,
    lsn: Lsn,
    txn: TxnId,
    payload: RedoPayloadRef<'_>,
) {
    let body = &mut scratch.body;
    body.clear();
    put_varint(body, lsn.0);
    put_varint(body, txn.0);
    put_payload_ref(body, payload);
    put_varint(out, body.len() as u64);
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
}

/// Decode one record from the reader (frame + CRC check).
pub fn decode_record(r: &mut Reader) -> Result<RedoRecord, WalError> {
    let body = r.bytes()?;
    let mut crc_bytes = [0u8; 4];
    for b in crc_bytes.iter_mut() {
        *b = r.u8()?;
    }
    let expected = u32::from_le_bytes(crc_bytes);
    if crc32(body) != expected {
        // Pull the LSN out best-effort for the error message.
        let lsn = Reader::new(body).varint().unwrap_or(0);
        return Err(WalError::Corrupt { lsn });
    }
    let mut br = Reader::new(body);
    let lsn = Lsn(br.varint()?);
    let txn = TxnId(br.varint()?);
    let payload = get_payload(&mut br)?;
    if !br.is_empty() {
        return Err(WalError::Decode("trailing bytes in record body".into()));
    }
    Ok(RedoRecord { lsn, txn, payload })
}

/// Decode a whole batch of framed records.
pub fn decode_all(data: &[u8]) -> Result<Vec<RedoRecord>, WalError> {
    let mut r = Reader::new(data);
    let mut out = Vec::new();
    while !r.is_empty() {
        out.push(decode_record(&mut r)?);
    }
    Ok(out)
}

/// One record surfaced by [`ReplayDecoder::next_into`]. Keys and rows
/// were decoded into the caller's scratch buffers (valid until the next
/// call); the step itself carries only fixed-size fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayStep {
    /// Insert or update: the scratch key and row hold the data.
    Put {
        lsn: Lsn,
        txn: TxnId,
        table: TableId,
    },
    /// Delete: the scratch key holds the key (row scratch untouched).
    Delete {
        lsn: Lsn,
        txn: TxnId,
        table: TableId,
    },
    Commit {
        lsn: Lsn,
        txn: TxnId,
        commit_ts: Timestamp,
    },
    /// Any other payload kind (control records — pending-commit, 2PC,
    /// DDL, heartbeats — which replay through the owned-record path).
    Other { lsn: Lsn, txn: TxnId },
}

/// Streaming decoder over a framed segment: yields one record at a
/// time, CRC-checked, decoding DML keys and rows into reusable caller
/// buffers. This is the redo-replay hot path — with warmed scratch the
/// decode of an all-numeric record allocates nothing (text datums cost
/// one `String` each, validated in place via [`Reader::str_ref`]).
#[derive(Debug)]
pub struct ReplayDecoder<'a> {
    r: Reader<'a>,
}

impl<'a> ReplayDecoder<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        ReplayDecoder {
            r: Reader::new(data),
        }
    }

    /// Decode the next frame; `None` at end of segment.
    pub fn next_into(
        &mut self,
        key: &mut RowKey,
        row: &mut Row,
    ) -> Result<Option<ReplayStep>, WalError> {
        if self.r.is_empty() {
            return Ok(None);
        }
        let body = self.r.bytes()?;
        let mut crc_bytes = [0u8; 4];
        for b in crc_bytes.iter_mut() {
            *b = self.r.u8()?;
        }
        if crc32(body) != u32::from_le_bytes(crc_bytes) {
            let lsn = Reader::new(body).varint().unwrap_or(0);
            return Err(WalError::Corrupt { lsn });
        }
        let mut br = Reader::new(body);
        let lsn = Lsn(br.varint()?);
        let txn = TxnId(br.varint()?);
        let step = match br.u8()? {
            tag @ (P_INSERT | P_UPDATE) => {
                let _ = tag;
                let table = TableId(br.varint()? as u32);
                get_key_into(&mut br, key)?;
                get_row_into(&mut br, row)?;
                ReplayStep::Put { lsn, txn, table }
            }
            P_DELETE => {
                let table = TableId(br.varint()? as u32);
                get_key_into(&mut br, key)?;
                ReplayStep::Delete { lsn, txn, table }
            }
            P_COMMIT => ReplayStep::Commit {
                lsn,
                txn,
                commit_ts: Timestamp(br.varint()?),
            },
            // Control payloads: skip the remainder of the (already
            // CRC-verified) body without materializing it.
            _ => return Ok(Some(ReplayStep::Other { lsn, txn })),
        };
        if !br.is_empty() {
            return Err(WalError::Decode("trailing bytes in record body".into()));
        }
        Ok(Some(step))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdb_model::{ColumnDef, DataType, Datum, SchemaBuilder};

    fn sample_schema() -> TableSchema {
        SchemaBuilder::new("orders")
            .column(ColumnDef::new("o_id", DataType::Int).not_null())
            .column(ColumnDef::new("o_comment", DataType::Text))
            .column(ColumnDef::new("o_total", DataType::Decimal).with_scale(2))
            .primary_key(&["o_id"])
            .build(TableId(9))
            .unwrap()
    }

    fn all_payloads() -> Vec<RedoPayload> {
        vec![
            RedoPayload::Insert {
                table: TableId(3),
                key: RowKey::single(42i64),
                row: Row(vec![Datum::Int(42), Datum::Text("hi".into()), Datum::Null]),
            },
            RedoPayload::Update {
                table: TableId(3),
                key: RowKey::single(42i64),
                new_row: Row(vec![Datum::Int(42), Datum::Text("bye".into()), Datum::Null]),
            },
            RedoPayload::Delete {
                table: TableId(3),
                key: RowKey::single(42i64),
            },
            RedoPayload::PendingCommit,
            RedoPayload::Commit {
                commit_ts: Timestamp(12345),
            },
            RedoPayload::Abort,
            RedoPayload::Prepare,
            RedoPayload::CommitPrepared {
                commit_ts: Timestamp(6789),
            },
            RedoPayload::AbortPrepared,
            RedoPayload::Ddl {
                commit_ts: Timestamp(777),
                kind: DdlKind::CreateTable(sample_schema()),
            },
            RedoPayload::Ddl {
                commit_ts: Timestamp(778),
                kind: DdlKind::DropTable(TableId(9)),
            },
            RedoPayload::Ddl {
                commit_ts: Timestamp(779),
                kind: DdlKind::CreateIndex {
                    table: TableId(9),
                    index_name: "by_comment".into(),
                    columns: vec![1],
                },
            },
            RedoPayload::Ddl {
                commit_ts: Timestamp(780),
                kind: DdlKind::DropIndex {
                    table: TableId(9),
                    index_name: "by_comment".into(),
                },
            },
            RedoPayload::Heartbeat {
                commit_ts: Timestamp(999),
            },
            RedoPayload::Checkpoint {
                as_of: Timestamp(1000),
            },
        ]
    }

    #[test]
    fn replay_decoder_matches_decode_all() {
        let recs: Vec<RedoRecord> = all_payloads()
            .into_iter()
            .enumerate()
            .map(|(i, payload)| RedoRecord {
                lsn: Lsn(i as u64),
                txn: TxnId(i as u64),
                payload,
            })
            .collect();
        let mut seg = Vec::new();
        for rec in &recs {
            encode_record(&mut seg, rec);
        }
        let owned = decode_all(&seg).unwrap();

        let mut key = RowKey::new(Vec::new());
        let mut row = Row::default();
        let mut dec = ReplayDecoder::new(&seg);
        let mut steps = Vec::new();
        while let Some(step) = dec.next_into(&mut key, &mut row).unwrap() {
            // DML steps must surface the same data as the owned decode.
            match (&step, &owned[steps.len()].payload) {
                (
                    ReplayStep::Put { table, .. },
                    RedoPayload::Insert {
                        table: t,
                        key: k,
                        row: r,
                    },
                )
                | (
                    ReplayStep::Put { table, .. },
                    RedoPayload::Update {
                        table: t,
                        key: k,
                        new_row: r,
                    },
                ) => {
                    assert_eq!(table, t);
                    assert_eq!(&key, k);
                    assert_eq!(&row, r);
                }
                (ReplayStep::Delete { table, .. }, RedoPayload::Delete { table: t, key: k }) => {
                    assert_eq!(table, t);
                    assert_eq!(&key, k);
                }
                (ReplayStep::Commit { commit_ts, .. }, RedoPayload::Commit { commit_ts: ts }) => {
                    assert_eq!(commit_ts, ts);
                }
                (ReplayStep::Other { .. }, p) => assert!(!matches!(
                    p,
                    RedoPayload::Insert { .. }
                        | RedoPayload::Update { .. }
                        | RedoPayload::Delete { .. }
                        | RedoPayload::Commit { .. }
                )),
                (s, p) => panic!("step {s:?} mismatches payload {p:?}"),
            }
            let (lsn, txn) = match step {
                ReplayStep::Put { lsn, txn, .. }
                | ReplayStep::Delete { lsn, txn, .. }
                | ReplayStep::Commit { lsn, txn, .. }
                | ReplayStep::Other { lsn, txn } => (lsn, txn),
            };
            assert_eq!(lsn, owned[steps.len()].lsn);
            assert_eq!(txn, owned[steps.len()].txn);
            steps.push(step);
        }
        assert_eq!(steps.len(), owned.len());
    }

    #[test]
    fn replay_decoder_catches_corruption() {
        let rec = RedoRecord {
            lsn: Lsn(7),
            txn: TxnId(1),
            payload: RedoPayload::Commit {
                commit_ts: Timestamp(9),
            },
        };
        let mut seg = Vec::new();
        encode_record(&mut seg, &rec);
        let mid = seg.len() / 2;
        seg[mid] ^= 0xFF;
        let mut key = RowKey::new(Vec::new());
        let mut row = Row::default();
        let mut dec = ReplayDecoder::new(&seg);
        assert!(dec.next_into(&mut key, &mut row).is_err());
    }

    #[test]
    fn every_payload_roundtrips() {
        for (i, payload) in all_payloads().into_iter().enumerate() {
            let rec = RedoRecord {
                lsn: Lsn(i as u64),
                txn: TxnId::compose(2, i as u64),
                payload,
            };
            let mut out = Vec::new();
            encode_record(&mut out, &rec);
            let got = decode_record(&mut Reader::new(&out)).unwrap();
            assert_eq!(got, rec);
        }
    }

    #[test]
    fn batch_roundtrip() {
        let recs: Vec<RedoRecord> = all_payloads()
            .into_iter()
            .enumerate()
            .map(|(i, payload)| RedoRecord {
                lsn: Lsn(i as u64),
                txn: TxnId(77),
                payload,
            })
            .collect();
        let mut out = Vec::new();
        for r in &recs {
            encode_record(&mut out, r);
        }
        assert_eq!(decode_all(&out).unwrap(), recs);
    }

    #[test]
    fn view_encoding_is_byte_identical() {
        // The zero-copy parts path must frame exactly like the owned
        // path for every payload kind, and the scratch buffer must not
        // leak state across records.
        let mut scratch = EncodeScratch::default();
        for (i, payload) in all_payloads().into_iter().enumerate() {
            let rec = RedoRecord {
                lsn: Lsn(i as u64),
                txn: TxnId::compose(1, i as u64),
                payload,
            };
            let mut owned = Vec::new();
            encode_record(&mut owned, &rec);
            let mut via_view = Vec::new();
            encode_record_parts(
                &mut scratch,
                &mut via_view,
                rec.lsn,
                rec.txn,
                rec.payload.as_view(),
            );
            assert_eq!(owned, via_view);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let rec = RedoRecord {
            lsn: Lsn(5),
            txn: TxnId(1),
            payload: RedoPayload::Commit {
                commit_ts: Timestamp(42),
            },
        };
        let mut out = Vec::new();
        encode_record(&mut out, &rec);
        // Flip a bit in the middle of the body.
        let mid = out.len() / 2;
        out[mid] ^= 0x10;
        match decode_record(&mut Reader::new(&out)) {
            Err(WalError::Corrupt { .. }) | Err(WalError::Decode(_)) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn commit_timestamp_extraction() {
        assert_eq!(
            RedoPayload::Commit {
                commit_ts: Timestamp(5)
            }
            .commit_timestamp(),
            Some(Timestamp(5))
        );
        assert_eq!(
            RedoPayload::Heartbeat {
                commit_ts: Timestamp(9)
            }
            .commit_timestamp(),
            Some(Timestamp(9))
        );
        assert_eq!(RedoPayload::Abort.commit_timestamp(), None);
        assert_eq!(RedoPayload::PendingCommit.commit_timestamp(), None);
        assert_eq!(RedoPayload::Prepare.commit_timestamp(), None);
    }

    #[test]
    fn truncated_frame_is_error() {
        let rec = RedoRecord {
            lsn: Lsn(1),
            txn: TxnId(1),
            payload: RedoPayload::Abort,
        };
        let mut out = Vec::new();
        encode_record(&mut out, &rec);
        for cut in 1..out.len() {
            assert!(decode_record(&mut Reader::new(&out[..cut])).is_err());
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gdb_model::Datum;
    use proptest::prelude::*;

    fn arb_datum() -> impl Strategy<Value = Datum> {
        prop_oneof![
            Just(Datum::Null),
            any::<i64>().prop_map(Datum::Int),
            any::<i64>().prop_map(Datum::Decimal),
            "[a-zA-Z0-9 ]{0,32}".prop_map(Datum::Text),
            any::<bool>().prop_map(Datum::Bool),
        ]
    }

    fn arb_payload() -> impl Strategy<Value = RedoPayload> {
        prop_oneof![
            (
                any::<u32>(),
                proptest::collection::vec(arb_datum(), 1..4),
                proptest::collection::vec(arb_datum(), 0..8)
            )
                .prop_map(|(t, k, r)| RedoPayload::Insert {
                    table: TableId(t),
                    key: RowKey(k),
                    row: Row(r),
                }),
            any::<u64>().prop_map(|ts| RedoPayload::Commit {
                commit_ts: Timestamp(ts)
            }),
            Just(RedoPayload::PendingCommit),
            Just(RedoPayload::Abort),
            any::<u64>().prop_map(|ts| RedoPayload::Heartbeat {
                commit_ts: Timestamp(ts)
            }),
        ]
    }

    proptest! {
        #[test]
        fn record_roundtrip(lsn in any::<u64>(), txn in any::<u64>(), payload in arb_payload()) {
            let rec = RedoRecord { lsn: Lsn(lsn), txn: TxnId(txn), payload };
            let mut out = Vec::new();
            encode_record(&mut out, &rec);
            prop_assert_eq!(decode_record(&mut Reader::new(&out)).unwrap(), rec);
        }

        #[test]
        fn decoder_never_panics(junk in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_all(&junk);
        }
    }
}
