//! The `gdb-bench/v1` artifact schema and the baseline comparison the CI
//! perf gate runs.
//!
//! Every figure binary emits one [`BenchArtifact`] per run via `--json`:
//! the figure name, the configuration key/values, and one [`BenchSeries`]
//! per plotted line/bar (throughput, latency quantiles, per-phase
//! breakdown, network bytes, full metrics snapshot). Multiple artifacts
//! bundle into a single file (`{"schema": "gdb-bench/bundle/v1",
//! "artifacts": [...]}`) — `BENCH_smoke.json` is such a bundle covering
//! all five figures at tiny scale.
//!
//! [`compare_artifacts`] implements the regression gate: for every
//! `(figure, series)` pair present in the baseline, current throughput
//! must be at least `(1 - tolerance) ×` the baseline's.

use crate::json::Json;
use crate::metrics::{HistSummary, MetricsReport};
use crate::span::Tracer;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

pub const SCHEMA: &str = "gdb-bench/v1";
pub const BUNDLE_SCHEMA: &str = "gdb-bench/bundle/v1";

/// Network-traffic totals for one series' cluster.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Redo bytes shipped on the wire (post-compression).
    pub wire_bytes: u64,
    /// Redo bytes before compression.
    pub raw_bytes: u64,
    /// Log-shipping batches sealed.
    pub batches: u64,
    /// Messages that crossed a region boundary.
    pub cross_region_msgs: u64,
    /// Bytes that crossed a region boundary.
    pub cross_region_bytes: u64,
}

impl NetStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("wire_bytes", Json::u64(self.wire_bytes)),
            ("raw_bytes", Json::u64(self.raw_bytes)),
            ("batches", Json::u64(self.batches)),
            ("cross_region_msgs", Json::u64(self.cross_region_msgs)),
            ("cross_region_bytes", Json::u64(self.cross_region_bytes)),
        ])
    }

    fn from_json(v: &Json, ctx: &str) -> Result<Self, String> {
        let f = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{ctx}: missing {k}"))
        };
        Ok(NetStats {
            wire_bytes: f("wire_bytes")?,
            raw_bytes: f("raw_bytes")?,
            batches: f("batches")?,
            cross_region_msgs: f("cross_region_msgs")?,
            cross_region_bytes: f("cross_region_bytes")?,
        })
    }
}

/// One plotted line/bar of a figure: a single cluster + workload run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSeries {
    pub label: String,
    pub throughput_txn_s: f64,
    /// TPC-C transactions-per-minute-C (0 for non-TPC-C workloads).
    pub tpmc: f64,
    pub commits: u64,
    pub aborts: u64,
    /// End-to-end transaction latency.
    pub latency: HistSummary,
    /// Per-phase latency breakdown (`snapshot_acquire`, `execute`,
    /// `prepare`, `commit_wait`, `replication_ack`).
    pub phases: BTreeMap<String, HistSummary>,
    pub net: NetStats,
    /// Full metrics snapshot of the series' cluster.
    pub metrics: MetricsReport,
}

impl BenchSeries {
    fn to_json(&self) -> Json {
        let phases = self
            .phases
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        Json::obj(vec![
            ("label", Json::str(&self.label)),
            ("throughput_txn_s", Json::Num(self.throughput_txn_s)),
            ("tpmc", Json::Num(self.tpmc)),
            ("commits", Json::u64(self.commits)),
            ("aborts", Json::u64(self.aborts)),
            ("latency_us", self.latency.to_json()),
            ("phases_us", Json::Obj(phases)),
            ("net", self.net.to_json()),
            ("metrics", self.metrics.to_json()),
        ])
    }

    fn from_json(v: &Json, ctx: &str) -> Result<Self, String> {
        let label = v
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: missing label"))?
            .to_string();
        let num = |k: &str| -> Result<f64, String> {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{ctx}[{label}]: missing {k}"))
        };
        let latency = HistSummary::from_json(
            v.get("latency_us")
                .ok_or_else(|| format!("{ctx}[{label}]: missing latency_us"))?,
            &format!("{ctx}[{label}].latency_us"),
        )?;
        let mut phases = BTreeMap::new();
        if let Some(pairs) = v.get("phases_us").and_then(Json::as_obj) {
            for (k, ph) in pairs {
                phases.insert(
                    k.clone(),
                    HistSummary::from_json(ph, &format!("{ctx}[{label}].phases_us.{k}"))?,
                );
            }
        }
        let net = match v.get("net") {
            Some(n) => NetStats::from_json(n, &format!("{ctx}[{label}].net"))?,
            None => NetStats::default(),
        };
        let metrics = match v.get("metrics") {
            Some(m) => MetricsReport::from_json(m)?,
            None => MetricsReport::default(),
        };
        let throughput_txn_s = num("throughput_txn_s")?;
        let tpmc = num("tpmc")?;
        let commits = num("commits")? as u64;
        let aborts = num("aborts")? as u64;
        Ok(BenchSeries {
            label,
            throughput_txn_s,
            tpmc,
            commits,
            aborts,
            latency,
            phases,
            net,
            metrics,
        })
    }
}

/// One figure run: configuration + all its series.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BenchArtifact {
    /// Figure name (`fig1a`, `fig6a`, …, `nemesis`).
    pub figure: String,
    /// Run configuration as ordered key/value strings (scale, seconds,
    /// terminals, seed, …).
    pub config: Vec<(String, String)>,
    pub series: Vec<BenchSeries>,
}

impl BenchArtifact {
    pub fn new(figure: impl Into<String>) -> Self {
        BenchArtifact {
            figure: figure.into(),
            config: Vec::new(),
            series: Vec::new(),
        }
    }

    pub fn config_kv(&mut self, key: impl Into<String>, value: impl ToString) {
        self.config.push((key.into(), value.to_string()));
    }

    /// Whether this artifact holds machine-local wall-clock measurements
    /// (see [`WALL_CLOCK_KEY`]): the gate then compares speedup ratios
    /// only, never absolute numbers.
    pub fn is_wall_clock(&self) -> bool {
        self.config
            .iter()
            .any(|(k, v)| k == WALL_CLOCK_KEY && v == "true")
    }

    /// The value of a config key, if present.
    pub fn config_value(&self, key: &str) -> Option<&str> {
        self.config
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The label of this wall-clock artifact's in-run baseline series
    /// ([`WALL_BASELINE_KEY`] override, else [`WALL_BASELINE_LABEL`]).
    pub fn wall_baseline_label(&self) -> &str {
        self.config_value(WALL_BASELINE_KEY)
            .unwrap_or(WALL_BASELINE_LABEL)
    }

    /// This wall-clock artifact's absolute ratio floor
    /// ([`WALL_FLOOR_KEY`] override, else [`WALL_SPEEDUP_FLOOR`]).
    pub fn wall_floor(&self) -> f64 {
        self.config_value(WALL_FLOOR_KEY)
            .and_then(|v| v.parse().ok())
            .unwrap_or(WALL_SPEEDUP_FLOOR)
    }

    /// This wall-clock artifact's `alloc_improvement` floor
    /// ([`WALL_ALLOC_FLOOR_KEY`] override, else 1.0).
    pub fn wall_alloc_floor(&self) -> f64 {
        self.config_value(WALL_ALLOC_FLOOR_KEY)
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0)
    }

    /// The absolute ceiling of this artifact's counter-gate leg
    /// ([`COUNTER_GATE_MAX_KEY`]; unbounded when absent).
    pub fn counter_gate_max(&self) -> f64 {
        self.config_value(COUNTER_GATE_MAX_KEY)
            .and_then(|v| v.parse().ok())
            .unwrap_or(f64::INFINITY)
    }

    pub fn to_json(&self) -> Json {
        let config = self
            .config
            .iter()
            .map(|(k, v)| (k.clone(), Json::str(v.clone())))
            .collect();
        Json::obj(vec![
            ("schema", Json::str(SCHEMA)),
            ("figure", Json::str(&self.figure)),
            ("config", Json::Obj(config)),
            (
                "series",
                Json::Arr(self.series.iter().map(BenchSeries::to_json).collect()),
            ),
        ])
    }

    pub fn from_json(v: &Json) -> Result<Self, String> {
        match v.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            other => return Err(format!("artifact: bad schema {other:?}")),
        }
        let figure = v
            .get("figure")
            .and_then(Json::as_str)
            .ok_or("artifact: missing figure")?
            .to_string();
        let mut config = Vec::new();
        if let Some(pairs) = v.get("config").and_then(Json::as_obj) {
            for (k, val) in pairs {
                config.push((
                    k.clone(),
                    val.as_str().map(str::to_string).unwrap_or_default(),
                ));
            }
        }
        let ctx = format!("artifact[{figure}].series");
        let series = v
            .get("series")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("artifact[{figure}]: missing series"))?
            .iter()
            .map(|s| BenchSeries::from_json(s, &ctx))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchArtifact {
            figure,
            config,
            series,
        })
    }

    /// The pretty document written to a `--json` path.
    pub fn to_pretty(&self) -> String {
        self.to_json().to_pretty()
    }
}

/// Bundle several artifacts into one document (`BENCH_smoke.json`).
pub fn bundle(artifacts: &[BenchArtifact]) -> Json {
    Json::obj(vec![
        ("schema", Json::str(BUNDLE_SCHEMA)),
        (
            "artifacts",
            Json::Arr(artifacts.iter().map(BenchArtifact::to_json).collect()),
        ),
    ])
}

/// Load artifacts from a parsed document: accepts a single artifact, a
/// bundle, or a bare array of artifacts.
pub fn load_artifacts(v: &Json) -> Result<Vec<BenchArtifact>, String> {
    if let Some(items) = v.as_arr() {
        return items.iter().map(BenchArtifact::from_json).collect();
    }
    match v.get("schema").and_then(Json::as_str) {
        Some(BUNDLE_SCHEMA) => v
            .get("artifacts")
            .and_then(Json::as_arr)
            .ok_or("bundle: missing artifacts")?
            .iter()
            .map(BenchArtifact::from_json)
            .collect(),
        Some(SCHEMA) => Ok(vec![BenchArtifact::from_json(v)?]),
        other => Err(format!("unknown schema {other:?}")),
    }
}

/// Export a tracer's spans as a Chrome trace-event JSON document (the
/// `chrome://tracing` / Perfetto `traceEvents` format, loadable as-is).
///
/// Each span becomes one complete (`"X"`) event with microsecond `ts` /
/// `dur` derived from its virtual-time interval. Events are grouped into
/// tracks (`tid`) by their *root ancestor* span, so every transaction or
/// transition renders as its own row with its phase children nested
/// beneath it; `pid` is constant (one simulated cluster per trace).
pub fn to_chrome_trace(tracer: &Tracer) -> String {
    let spans = tracer.spans();
    // Spans are recorded parent-first (a child's id is always greater
    // than its parent's), so one forward pass resolves root ancestors.
    let mut track = vec![0u32; spans.len()];
    for (i, s) in spans.iter().enumerate() {
        track[i] = if s.is_root() {
            s.id
        } else {
            track[s.parent as usize]
        };
    }
    let events: Vec<Json> = spans
        .iter()
        .enumerate()
        .map(|(i, s)| {
            Json::obj(vec![
                ("name", Json::str(s.kind.name())),
                ("cat", Json::str(if s.is_root() { "root" } else { "phase" })),
                ("ph", Json::str("X")),
                ("ts", Json::Num(s.start.as_nanos() as f64 / 1000.0)),
                (
                    "dur",
                    Json::Num(s.end.since(s.start).as_nanos() as f64 / 1000.0),
                ),
                ("pid", Json::u64(1)),
                ("tid", Json::u64(track[i] as u64)),
                (
                    "args",
                    Json::obj(vec![
                        ("label", Json::u64(s.label)),
                        ("span_id", Json::u64(s.id as u64)),
                    ]),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
    .to_pretty()
}

/// The phase components the gate diffs in addition to throughput: the
/// geo-distribution costs the paper's figures are about (GClock commit
/// wait, synchronous replication acknowledgement).
pub const GATED_PHASES: &[&str] = &["commit_wait", "replication_ack"];

/// Config key (`"wall_clock" = "true"`) marking an artifact as measured
/// in *wall-clock* time. Wall-clock numbers are machine-local: the same
/// commit produces wildly different events/sec on a laptop vs a CI
/// runner, so the gate must never compare their absolute values across
/// machines. Instead, a wall-clock artifact carries its own in-run
/// baseline — a series labelled [`WALL_BASELINE_LABEL`] re-measured on
/// the same machine in the same process — and only the *speedup ratio*
/// of every other series over it is gated.
pub const WALL_CLOCK_KEY: &str = "wall_clock";

/// The in-run baseline series of a wall-clock artifact (the frozen
/// pre-optimization engine, re-run on the current machine), unless the
/// artifact names a different one via [`WALL_BASELINE_KEY`].
pub const WALL_BASELINE_LABEL: &str = "legacy";

/// Config key naming the in-run baseline series of a wall-clock
/// artifact. The engine benches baseline against a frozen `legacy`
/// implementation; the realnet smoke instead baselines its loopback-TCP
/// backend against the in-process thread backend (`wall_baseline` =
/// `"thread"`), measured in the same run on the same machine.
pub const WALL_BASELINE_KEY: &str = "wall_baseline";

/// Config key overriding [`WALL_SPEEDUP_FLOOR`] for one artifact. The
/// ratio being gated need not be a speed*up*: the realnet smoke gates
/// `tcp / thread` throughput, which is legitimately below 1 (real
/// sockets cost more than channels), so its floor is a small fraction
/// guarding against collapse rather than a 1.2× win.
pub const WALL_FLOOR_KEY: &str = "wall_floor";

/// Config key naming a *lower-is-better* gauge (e.g.
/// `"txn.allocs_per_txn"`) carried in each series' metrics snapshot of a
/// wall-clock artifact. When set, the gate adds an `alloc_improvement`
/// comparison per non-baseline series: the ratio `baseline gauge /
/// series gauge` (how many times fewer allocations the optimized path
/// makes) must hold up against the blessed ratio within [`WALL_SLACK`]
/// and never drop below the artifact's [`WALL_ALLOC_FLOOR_KEY`] floor.
/// Allocation counts are deterministic per build (unlike wall time), so
/// this leg is far less noisy than the speedup leg it mirrors.
pub const WALL_ALLOC_METRIC_KEY: &str = "wall_alloc_metric";

/// Config key for the absolute `alloc_improvement` floor (default 1.0:
/// the optimized path must at least not allocate *more* than its
/// baseline).
pub const WALL_ALLOC_FLOOR_KEY: &str = "wall_alloc_floor";

/// Config key naming a *lower-is-better* counter (e.g.
/// `"rebalance.migrations_started"`) carried in a series' metrics
/// snapshot. When set, the gate adds a `counter:<name>` comparison for
/// the gated series: the current count must stay under the artifact's
/// [`COUNTER_GATE_MAX_KEY`] ceiling and must not grow past the blessed
/// count by more than the tolerance plus [`COUNTER_SLACK`]. This is how
/// the rebalance ablation pins "converges in ≤ N migrations": a
/// ping-pong regression quadruples the count and fails the gate even if
/// throughput barely moves.
pub const COUNTER_GATE_METRIC_KEY: &str = "counter_gate_metric";

/// Config key for the absolute ceiling of the counter-gate leg (a
/// count, e.g. `"4"`). Missing = no absolute ceiling; only the
/// relative-to-baseline check applies.
pub const COUNTER_GATE_MAX_KEY: &str = "counter_gate_max";

/// Config key naming the one series label the counter-gate applies to
/// (e.g. the rebalancing twin, not the static control). Missing = every
/// series is gated.
pub const COUNTER_GATE_SERIES_KEY: &str = "counter_gate_series";

/// Absolute slack on counter comparisons: event counts are small
/// integers, so a ±1 wobble around a tiny baseline must not fail the
/// gate the way a relative check alone would.
pub const COUNTER_SLACK: f64 = 1.0;

/// Relative slack on speedup ratios: wall-clock runs are noisy (CPU
/// contention, thermal state), so the gate only fails on a large move.
const WALL_SLACK: f64 = 0.35;

/// Absolute floor: whatever the blessed speedup was, the optimized
/// engine must stay at least this much faster than the frozen baseline.
const WALL_SPEEDUP_FLOOR: f64 = 1.2;

/// Absolute slack for phase-mean comparisons: sub-50 µs phases are
/// dominated by quantization and scheduling noise, not regressions.
const PHASE_SLACK_US: f64 = 50.0;

/// One `(figure, series, metric)` comparison of the regression gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    pub figure: String,
    pub label: String,
    /// What is compared: `throughput` (txn/s, higher is better) or
    /// `phase:<name>` (mean µs, lower is better).
    pub metric: String,
    pub baseline: f64,
    pub current: f64,
    /// current / baseline (1.0 when the baseline is zero).
    pub ratio: f64,
    /// False when the series regressed beyond tolerance or is missing
    /// from the current run.
    pub ok: bool,
}

impl Comparison {
    pub fn render(&self) -> String {
        let unit = match self.metric.as_str() {
            "throughput" => "txn/s",
            "speedup" => "x over in-run baseline",
            "alloc_improvement" => "x fewer allocs than in-run baseline",
            m if m.starts_with("counter:") => "(lower is better)",
            _ => "us mean",
        };
        format!(
            "{:4} {}/{} {}: baseline {:.1} {unit}, current {:.1} ({:+.1}%)",
            if self.ok { "ok" } else { "FAIL" },
            self.figure,
            self.label,
            self.metric,
            self.baseline,
            self.current,
            (self.ratio - 1.0) * 100.0
        )
    }
}

/// Compare `current` against `baseline`: every baseline series must be
/// present, within `tolerance` relative throughput loss, and — for the
/// [`GATED_PHASES`] present in the baseline's phase breakdown — within
/// `tolerance` relative phase-mean growth (plus a small absolute slack).
/// Series only in `current` are ignored (adding figures never fails the
/// gate).
///
/// Artifacts whose config carries [`WALL_CLOCK_KEY`]` = "true"` are
/// machine-local and take a different path: only the speedup of each
/// series over the artifact's [`WALL_BASELINE_LABEL`] series is gated
/// (generous slack, absolute floor), never throughput, latency, or any
/// absolute wall-clock number. A wall-clock artifact with no baseline
/// series is informational and produces no comparisons.
pub fn compare_artifacts(
    baseline: &[BenchArtifact],
    current: &[BenchArtifact],
    tolerance: f64,
) -> Vec<Comparison> {
    let mut out = Vec::new();
    for base in baseline {
        let cur_art = current.iter().find(|a| a.figure == base.figure);
        if base.is_wall_clock() {
            compare_wall_clock(base, cur_art, &mut out);
            continue;
        }
        for bs in &base.series {
            let cur = cur_art.and_then(|a| a.series.iter().find(|s| s.label == bs.label));
            match cur {
                None => out.push(Comparison {
                    figure: base.figure.clone(),
                    label: bs.label.clone(),
                    metric: "throughput".into(),
                    baseline: bs.throughput_txn_s,
                    current: 0.0,
                    ratio: 0.0,
                    ok: false,
                }),
                Some(cs) => {
                    let ratio = if bs.throughput_txn_s > 0.0 {
                        cs.throughput_txn_s / bs.throughput_txn_s
                    } else {
                        1.0
                    };
                    out.push(Comparison {
                        figure: base.figure.clone(),
                        label: bs.label.clone(),
                        metric: "throughput".into(),
                        baseline: bs.throughput_txn_s,
                        current: cs.throughput_txn_s,
                        ratio,
                        ok: ratio >= 1.0 - tolerance,
                    });
                    for &phase in GATED_PHASES {
                        let Some(bh) = bs.phases.get(phase) else {
                            continue;
                        };
                        let (b, c) = (
                            bh.mean_us as f64,
                            // A phase the current run no longer records
                            // counts as infinitely regressed, not absent.
                            cs.phases.get(phase).map(|h| h.mean_us as f64),
                        );
                        let c = c.unwrap_or(f64::INFINITY);
                        out.push(Comparison {
                            figure: base.figure.clone(),
                            label: bs.label.clone(),
                            metric: format!("phase:{phase}"),
                            baseline: b,
                            current: c,
                            ratio: if b > 0.0 { c / b } else { 1.0 },
                            ok: c <= b * (1.0 + tolerance) + PHASE_SLACK_US,
                        });
                    }
                    // The lower-is-better counter leg (e.g. migration
                    // counts): bounded by the artifact's absolute
                    // ceiling AND by the blessed count plus slack.
                    if let Some(name) = base.config_value(COUNTER_GATE_METRIC_KEY) {
                        let gated = match base.config_value(COUNTER_GATE_SERIES_KEY) {
                            None => true,
                            Some(l) => l == bs.label,
                        };
                        if gated {
                            // An absent counter was never incremented.
                            let b = bs.metrics.counter(name).unwrap_or(0) as f64;
                            let c = cs.metrics.counter(name).unwrap_or(0) as f64;
                            out.push(Comparison {
                                figure: base.figure.clone(),
                                label: bs.label.clone(),
                                metric: format!("counter:{name}"),
                                baseline: b,
                                current: c,
                                ratio: if b > 0.0 { c / b } else { 1.0 },
                                ok: c <= base.counter_gate_max()
                                    && c <= b * (1.0 + tolerance) + COUNTER_SLACK,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// The wall-clock leg of the gate: for every non-baseline series of a
/// wall-clock artifact, the current run's speedup over its own in-run
/// baseline series (the blessed artifact's [`BenchArtifact::wall_baseline_label`])
/// must hold up against the blessed speedup — within [`WALL_SLACK`]
/// relative and never below the artifact's [`BenchArtifact::wall_floor`].
fn compare_wall_clock(
    base: &BenchArtifact,
    cur_art: Option<&BenchArtifact>,
    out: &mut Vec<Comparison>,
) {
    let baseline_label = base.wall_baseline_label();
    let speedup_in = |a: &BenchArtifact, label: &str| -> Option<f64> {
        let denom = a
            .series
            .iter()
            .find(|s| s.label == baseline_label)?
            .throughput_txn_s;
        let num = a.series.iter().find(|s| s.label == label)?.throughput_txn_s;
        (denom > 0.0).then(|| num / denom)
    };
    // Improvement of a lower-is-better gauge over the in-run baseline:
    // `baseline gauge / series gauge` (10.0 = ten times fewer).
    let alloc_metric = base.config_value(WALL_ALLOC_METRIC_KEY);
    let improvement_in = |a: &BenchArtifact, label: &str| -> Option<f64> {
        let metric = alloc_metric?;
        let denom = a
            .series
            .iter()
            .find(|s| s.label == label)?
            .metrics
            .gauge(metric)?;
        let num = a
            .series
            .iter()
            .find(|s| s.label == baseline_label)?
            .metrics
            .gauge(metric)?;
        (denom > 0.0).then(|| num / denom)
    };
    for bs in &base.series {
        if bs.label == baseline_label {
            continue;
        }
        // No in-run baseline series in the blessed artifact: the series
        // is informational (nothing machine-portable to gate).
        let Some(base_speedup) = speedup_in(base, &bs.label) else {
            continue;
        };
        let cur_speedup = cur_art.and_then(|a| speedup_in(a, &bs.label));
        let cur = cur_speedup.unwrap_or(0.0);
        let threshold = (base_speedup * (1.0 - WALL_SLACK)).max(base.wall_floor());
        out.push(Comparison {
            figure: base.figure.clone(),
            label: bs.label.clone(),
            metric: "speedup".into(),
            baseline: base_speedup,
            current: cur,
            ratio: if base_speedup > 0.0 {
                cur / base_speedup
            } else {
                1.0
            },
            ok: cur_speedup.is_some_and(|c| c >= threshold),
        });
        if let Some(base_improvement) = improvement_in(base, &bs.label) {
            let cur_improvement = cur_art.and_then(|a| improvement_in(a, &bs.label));
            let cur = cur_improvement.unwrap_or(0.0);
            let threshold = (base_improvement * (1.0 - WALL_SLACK)).max(base.wall_alloc_floor());
            out.push(Comparison {
                figure: base.figure.clone(),
                label: bs.label.clone(),
                metric: "alloc_improvement".into(),
                baseline: base_improvement,
                current: cur,
                ratio: if base_improvement > 0.0 {
                    cur / base_improvement
                } else {
                    1.0
                },
                ok: cur_improvement.is_some_and(|c| c >= threshold),
            });
        }
    }
}

/// Schema-sanity validation of committed artifacts: every oddity a
/// hand-edited or drifted `BENCH_*.json` could carry that the gate
/// would otherwise silently mis-compare. Returns one message per
/// problem (empty = valid). Run by `benchcmp validate` in the lint
/// stage over every committed baseline.
pub fn validate_artifacts(artifacts: &[BenchArtifact]) -> Vec<String> {
    let mut errs = Vec::new();
    let mut figures = std::collections::BTreeSet::new();
    for a in artifacts {
        let fig = &a.figure;
        if fig.is_empty() {
            errs.push("artifact with empty figure name".into());
            continue;
        }
        if !figures.insert(fig.clone()) {
            errs.push(format!("{fig}: duplicate figure in one document"));
        }
        if a.series.is_empty() {
            errs.push(format!("{fig}: no series"));
        }
        for (key, _) in &a.config {
            if key.is_empty() {
                errs.push(format!("{fig}: empty config key"));
            }
        }
        if a.is_wall_clock() {
            if let Some(v) = a.config_value(WALL_FLOOR_KEY) {
                if v.parse::<f64>()
                    .map_or(true, |f| !f.is_finite() || f <= 0.0)
                {
                    errs.push(format!("{fig}: bad {WALL_FLOOR_KEY} {v:?}"));
                }
            }
            if let Some(v) = a.config_value(WALL_ALLOC_FLOOR_KEY) {
                if v.parse::<f64>()
                    .map_or(true, |f| !f.is_finite() || f <= 0.0)
                {
                    errs.push(format!("{fig}: bad {WALL_ALLOC_FLOOR_KEY} {v:?}"));
                }
            }
            let baseline = a.wall_baseline_label().to_string();
            if a.config_value(WALL_BASELINE_KEY).is_some()
                && !a.series.iter().any(|s| s.label == baseline)
            {
                errs.push(format!(
                    "{fig}: {WALL_BASELINE_KEY} names absent series {baseline:?}"
                ));
            }
            if let Some(metric) = a.config_value(WALL_ALLOC_METRIC_KEY) {
                for s in &a.series {
                    if s.metrics.gauge(metric).is_none() {
                        errs.push(format!(
                            "{fig}/{}: {WALL_ALLOC_METRIC_KEY} {metric:?} missing from metrics",
                            s.label
                        ));
                    }
                }
            }
        }
        if a.config_value(COUNTER_GATE_METRIC_KEY).is_some() {
            if let Some(v) = a.config_value(COUNTER_GATE_MAX_KEY) {
                if v.parse::<f64>().map_or(true, |f| !f.is_finite() || f < 0.0) {
                    errs.push(format!("{fig}: bad {COUNTER_GATE_MAX_KEY} {v:?}"));
                }
            }
            if let Some(label) = a.config_value(COUNTER_GATE_SERIES_KEY) {
                if !a.series.iter().any(|s| s.label == label) {
                    errs.push(format!(
                        "{fig}: {COUNTER_GATE_SERIES_KEY} names absent series {label:?}"
                    ));
                }
            }
        } else {
            for key in [COUNTER_GATE_MAX_KEY, COUNTER_GATE_SERIES_KEY] {
                if a.config_value(key).is_some() {
                    errs.push(format!("{fig}: {key} without {COUNTER_GATE_METRIC_KEY}"));
                }
            }
        }
        let mut labels = std::collections::BTreeSet::new();
        for s in &a.series {
            let label = &s.label;
            if label.is_empty() {
                errs.push(format!("{fig}: series with empty label"));
            }
            if !labels.insert(label.clone()) {
                errs.push(format!("{fig}: duplicate series label {label:?}"));
            }
            for (name, v) in [("throughput_txn_s", s.throughput_txn_s), ("tpmc", s.tpmc)] {
                if !v.is_finite() || v < 0.0 {
                    errs.push(format!(
                        "{fig}/{label}: {name} = {v} not a finite non-negative"
                    ));
                }
            }
            let mut hists: Vec<(String, &HistSummary)> = vec![("latency_us".into(), &s.latency)];
            hists.extend(s.phases.iter().map(|(k, h)| (format!("phases_us.{k}"), h)));
            for (name, h) in hists {
                let quantiles = [h.p50_us, h.p95_us, h.p99_us, h.p999_us];
                if quantiles.windows(2).any(|w| w[0] > w[1]) {
                    errs.push(format!("{fig}/{label}: {name} quantiles not monotone"));
                }
                if h.count > 0 && (h.min_us > h.max_us || h.mean_us > h.max_us) {
                    errs.push(format!("{fig}/{label}: {name} min/mean/max inconsistent"));
                }
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdb_simnet::stats::LatencyHistogram;
    use gdb_simnet::SimDuration;

    fn summary(vals_us: &[u64]) -> HistSummary {
        let mut h = LatencyHistogram::bounded();
        for &v in vals_us {
            h.record(SimDuration::from_micros(v));
        }
        HistSummary::of(&h)
    }

    fn artifact(figure: &str, label: &str, txn_s: f64) -> BenchArtifact {
        let mut a = BenchArtifact::new(figure);
        a.config_kv("scale", "tiny");
        a.config_kv("seed", 42);
        a.series.push(BenchSeries {
            label: label.to_string(),
            throughput_txn_s: txn_s,
            tpmc: txn_s * 60.0 * 0.45,
            commits: 1000,
            aborts: 3,
            latency: summary(&[900, 1100, 5000]),
            phases: [
                ("execute".to_string(), summary(&[400, 500])),
                ("commit_wait".to_string(), summary(&[300, 4000])),
            ]
            .into_iter()
            .collect(),
            net: NetStats {
                wire_bytes: 1 << 20,
                raw_bytes: 1 << 21,
                batches: 64,
                cross_region_msgs: 100,
                cross_region_bytes: 1 << 18,
            },
            metrics: MetricsReport::default(),
        });
        a
    }

    #[test]
    fn artifact_round_trip() {
        let a = artifact("fig6a", "gclock", 123.5);
        let text = a.to_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(BenchArtifact::from_json(&parsed).unwrap(), a);
        // Required top-level fields of the stable schema.
        for key in ["schema", "figure", "config", "series"] {
            assert!(parsed.get(key).is_some(), "missing {key}");
        }
        let s0 = &parsed.get("series").unwrap().as_arr().unwrap()[0];
        for key in ["throughput_txn_s", "latency_us", "phases_us", "net"] {
            assert!(s0.get(key).is_some(), "missing series.{key}");
        }
        assert!(s0.get("latency_us").unwrap().get("p99_us").is_some());
    }

    #[test]
    fn bundle_round_trip_and_single_load() {
        let arts = vec![
            artifact("fig1a", "tpcc", 50.0),
            artifact("fig6a", "gtm", 40.0),
        ];
        let doc = bundle(&arts).to_pretty();
        let loaded = load_artifacts(&Json::parse(&doc).unwrap()).unwrap();
        assert_eq!(loaded, arts);
        // A single artifact document loads as a one-element list.
        let single = artifact("fig6b", "x", 1.0);
        let loaded = load_artifacts(&Json::parse(&single.to_pretty()).unwrap()).unwrap();
        assert_eq!(loaded, vec![single]);
        assert!(load_artifacts(&Json::obj(vec![("schema", Json::str("nope"))])).is_err());
    }

    #[test]
    fn chrome_trace_shape() {
        use crate::span::SpanKind;
        use gdb_simnet::SimTime;
        let mut tr = Tracer::default();
        tr.enable(16);
        let t = SimTime::from_micros;
        let txn = tr.record(SpanKind::Txn, 7, t(100), t(350));
        tr.record_child(txn, SpanKind::Execute, 7, t(100), t(200));
        tr.record_child(txn, SpanKind::CommitWait, 7, t(200), t(350));
        let other = tr.record(SpanKind::Transition, 0, t(400), t(900));
        tr.record_child(other, SpanKind::TransitionDualAcks, 0, t(400), t(900));

        let doc = Json::parse(&to_chrome_trace(&tr)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 5);
        for ev in events {
            assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
            assert_eq!(ev.get("pid").and_then(Json::as_u64), Some(1));
            for key in ["name", "ts", "dur", "tid", "args"] {
                assert!(ev.get(key).is_some(), "missing {key}");
            }
        }
        // Microsecond timestamps, straight from virtual time.
        assert_eq!(events[0].get("ts").and_then(Json::as_f64), Some(100.0));
        assert_eq!(events[0].get("dur").and_then(Json::as_f64), Some(250.0));
        assert_eq!(events[0].get("name").and_then(Json::as_str), Some("txn"));
        // Children land on their root ancestor's track.
        let tid = |i: usize| events[i].get("tid").and_then(Json::as_u64).unwrap();
        assert_eq!(tid(1), tid(0));
        assert_eq!(tid(2), tid(0));
        assert_eq!(tid(4), tid(3));
        assert_ne!(tid(0), tid(3), "separate roots get separate tracks");
    }

    #[test]
    fn comparison_gate() {
        let base = vec![artifact("fig6a", "gclock", 100.0)];
        // Within tolerance: 15% down. The helper's series carries a
        // `commit_wait` phase, so a matched series yields a throughput
        // row plus one gated-phase row.
        let ok = compare_artifacts(&base, &[artifact("fig6a", "gclock", 85.0)], 0.20);
        assert_eq!(ok.len(), 2, "{ok:?}");
        assert_eq!(ok[1].metric, "phase:commit_wait");
        assert!(ok.iter().all(|c| c.ok), "{ok:?}");
        // Beyond tolerance: 25% down.
        let bad = compare_artifacts(&base, &[artifact("fig6a", "gclock", 75.0)], 0.20);
        assert!(!bad[0].ok);
        assert!(bad[0].render().contains("FAIL"));
        assert!(bad[1].ok, "identical phase means must pass: {:?}", bad[1]);
        // Missing series fails (single row; no phase rows to compare).
        let missing = compare_artifacts(&base, &[artifact("fig6a", "gtm", 100.0)], 0.20);
        assert_eq!(missing.len(), 1);
        assert!(!missing[0].ok);
        // Faster never fails; extra current series ignored.
        let faster = compare_artifacts(
            &base,
            &[
                artifact("fig6a", "gclock", 140.0),
                artifact("fig9", "z", 1.0),
            ],
            0.20,
        );
        assert_eq!(faster.len(), 2);
        assert!(faster.iter().all(|c| c.ok));
    }

    /// A wall-clock artifact: in-run `legacy` baseline plus a `fast`
    /// series, absolute numbers machine-local by construction.
    fn wall_artifact(fast_eps: f64, legacy_eps: f64) -> BenchArtifact {
        let mut a = artifact("engine", "fast", fast_eps);
        a.config_kv(WALL_CLOCK_KEY, "true");
        a.series[0].phases.clear();
        let mut legacy = a.series[0].clone();
        legacy.label = WALL_BASELINE_LABEL.into();
        legacy.throughput_txn_s = legacy_eps;
        a.series.push(legacy);
        a
    }

    #[test]
    fn wall_clock_gate_compares_speedup_only() {
        // Blessed: 3x speedup at 6M events/s.
        let base = vec![wall_artifact(6_000_000.0, 2_000_000.0)];
        // A machine 10x slower in absolute terms but with the same
        // speedup passes — wall-clock absolutes are never gated.
        let out = compare_artifacts(&base, &[wall_artifact(600_000.0, 200_000.0)], 0.20);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].metric, "speedup");
        assert!(out[0].ok, "{out:?}");
        assert!(out[0].render().contains("x over in-run baseline"));
        // Speedup held within slack (3.0 -> 2.2 with 35% slack) passes.
        let out = compare_artifacts(&base, &[wall_artifact(4_400_000.0, 2_000_000.0)], 0.20);
        assert!(out[0].ok, "{out:?}");
        // Speedup collapsed to 1.1x: below both the relative slack and
        // the absolute floor — fails.
        let out = compare_artifacts(&base, &[wall_artifact(2_200_000.0, 2_000_000.0)], 0.20);
        assert!(!out[0].ok, "{out:?}");
        // Series missing from the current run fails.
        let mut gone = wall_artifact(1.0, 1.0);
        gone.series.retain(|s| s.label == WALL_BASELINE_LABEL);
        let out = compare_artifacts(&base, &[gone], 0.20);
        assert!(!out[0].ok, "{out:?}");
        // An informational wall-clock artifact (no legacy series) is
        // never gated.
        let mut info = wall_artifact(5.0, 5.0);
        info.figure = "engine_cluster".into();
        info.series.retain(|s| s.label == "fast");
        let out = compare_artifacts(&[info], &[], 0.20);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn wall_clock_floor_binds_even_when_baseline_was_modest() {
        // Blessed speedup 1.5x: the 35% slack alone would allow 0.98x,
        // but the absolute floor keeps the gate at 1.2x.
        let base = vec![wall_artifact(1_500_000.0, 1_000_000.0)];
        let out = compare_artifacts(&base, &[wall_artifact(1_190_000.0, 1_000_000.0)], 0.20);
        assert!(!out[0].ok, "below floor must fail: {out:?}");
        let out = compare_artifacts(&base, &[wall_artifact(1_250_000.0, 1_000_000.0)], 0.20);
        assert!(out[0].ok, "above floor within slack must pass: {out:?}");
    }

    /// A realnet-shaped wall-clock artifact: the in-run baseline is the
    /// `thread` backend and the gated ratio (`tcp / thread`) sits below
    /// 1, so the artifact overrides both the baseline label and the
    /// floor via config.
    fn realnet_artifact(tcp_eps: f64, thread_eps: f64) -> BenchArtifact {
        let mut a = artifact("realnet_smoke", "tcp", tcp_eps);
        a.config_kv(WALL_CLOCK_KEY, "true");
        a.config_kv(WALL_BASELINE_KEY, "thread");
        a.config_kv(WALL_FLOOR_KEY, "0.02");
        a.series[0].phases.clear();
        let mut thread = a.series[0].clone();
        thread.label = "thread".into();
        thread.throughput_txn_s = thread_eps;
        a.series.push(thread);
        a
    }

    #[test]
    fn wall_clock_gate_honors_config_baseline_and_floor() {
        assert_eq!(realnet_artifact(1.0, 1.0).wall_baseline_label(), "thread");
        assert_eq!(realnet_artifact(1.0, 1.0).wall_floor(), 0.02);
        // Blessed ratio 0.5 (tcp at half the thread throughput): a
        // sub-1.2 ratio must be gateable, so the default floor cannot
        // apply.
        let base = vec![realnet_artifact(500.0, 1_000.0)];
        let out = compare_artifacts(&base, &[realnet_artifact(40.0, 100.0)], 0.20);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].ok, "ratio 0.4 vs blessed 0.5 within slack: {out:?}");
        // Collapse below the relative slack fails even above the floor.
        let out = compare_artifacts(&base, &[realnet_artifact(10.0, 100.0)], 0.20);
        assert!(!out[0].ok, "ratio 0.1 vs blessed 0.5 must fail: {out:?}");
        // The custom floor still binds: a blessed ratio so small that
        // slack would allow near-zero is caught at 0.02.
        let tiny = vec![realnet_artifact(25.0, 1_000.0)];
        let out = compare_artifacts(&tiny, &[realnet_artifact(10.0, 1_000.0)], 0.20);
        assert!(!out[0].ok, "ratio 0.01 under floor 0.02 must fail: {out:?}");
    }

    /// A txn-bench-shaped wall-clock artifact: fast + legacy series with
    /// an allocations-per-transaction gauge, gated via
    /// [`WALL_ALLOC_METRIC_KEY`] with a 10x floor.
    fn alloc_artifact(fast_eps: f64, fast_allocs: f64, legacy_allocs: f64) -> BenchArtifact {
        let mut a = wall_artifact(fast_eps, 1_000_000.0);
        a.config_kv(WALL_ALLOC_METRIC_KEY, "txn.allocs_per_txn");
        a.config_kv(WALL_ALLOC_FLOOR_KEY, "10");
        for (i, allocs) in [fast_allocs, legacy_allocs].into_iter().enumerate() {
            let mut m = crate::metrics::MetricsRegistry::default();
            m.gauge("txn.allocs_per_txn", allocs);
            a.series[i].metrics = m.snapshot();
        }
        a
    }

    #[test]
    fn wall_clock_gate_checks_alloc_improvement() {
        // Blessed: 3x speedup, 30x fewer allocations (0.9 vs 27).
        let base = vec![alloc_artifact(3_000_000.0, 0.9, 27.0)];
        let rows = |cur: &BenchArtifact| compare_artifacts(&base, std::slice::from_ref(cur), 0.20);
        // Same shape passes and yields speedup + alloc rows.
        let out = rows(&alloc_artifact(3_000_000.0, 0.9, 27.0));
        assert_eq!(out.len(), 2, "{out:?}");
        assert_eq!(out[1].metric, "alloc_improvement");
        assert!(out.iter().all(|c| c.ok), "{out:?}");
        assert!(out[1].render().contains("x fewer allocs"));
        // Improvement held within slack (30x -> 21x with 35% slack).
        let out = rows(&alloc_artifact(3_000_000.0, 1.25, 27.0));
        assert!(out[1].ok, "{out:?}");
        // Fast path regressed to only 3x fewer allocations: below the
        // 10x floor — fails even though slack alone would be generous.
        let out = rows(&alloc_artifact(3_000_000.0, 9.0, 27.0));
        assert!(!out[1].ok, "{out:?}");
        // Gauge missing from the current run fails the alloc row.
        let mut gone = alloc_artifact(3_000_000.0, 0.9, 27.0);
        gone.series[0].metrics = MetricsReport::default();
        let out = rows(&gone);
        assert!(!out[1].ok, "{out:?}");
        // The speedup leg is unaffected by the alloc config.
        assert_eq!(out[0].metric, "speedup");
        assert!(out[0].ok, "{out:?}");
    }

    /// A rebalance-ablation-shaped artifact: a static control plus a
    /// rebalancing series whose migration count is gated (ceiling 4,
    /// lower is better) via [`COUNTER_GATE_METRIC_KEY`].
    fn counter_artifact(migrations: u64) -> BenchArtifact {
        let mut a = artifact("ablation_rebalance", "static-skew", 90.0);
        a.config_kv(COUNTER_GATE_METRIC_KEY, "rebalance.migrations_started");
        a.config_kv(COUNTER_GATE_MAX_KEY, 4);
        a.config_kv(COUNTER_GATE_SERIES_KEY, "rebalance-skew");
        let mut rebal = a.series[0].clone();
        rebal.label = "rebalance-skew".into();
        rebal.throughput_txn_s = 100.0;
        let mut m = crate::metrics::MetricsRegistry::default();
        let id = m.register_counter("rebalance.migrations_started");
        m.add(id, migrations);
        rebal.metrics = m.snapshot();
        a.series.push(rebal);
        a
    }

    #[test]
    fn counter_gate_is_lower_is_better_with_a_ceiling() {
        let base = vec![counter_artifact(3)];
        let rows = |cur: &BenchArtifact| compare_artifacts(&base, std::slice::from_ref(cur), 0.20);
        // Same count passes; the leg applies only to the gated series.
        let out = rows(&counter_artifact(3));
        let counters: Vec<_> = out
            .iter()
            .filter(|c| c.metric.starts_with("counter:"))
            .collect();
        assert_eq!(counters.len(), 1, "{out:?}");
        assert_eq!(counters[0].label, "rebalance-skew");
        assert!(counters[0].ok, "{out:?}");
        assert!(counters[0].render().contains("(lower is better)"));
        // One fewer migration (an improvement) passes.
        let out = rows(&counter_artifact(2));
        assert!(out.iter().all(|c| c.ok), "{out:?}");
        // Past the absolute ceiling fails even against a high baseline.
        let out = rows(&counter_artifact(5));
        let bad = out.iter().find(|c| c.metric.starts_with("counter:"));
        assert!(!bad.unwrap().ok, "count 5 over max 4 must fail: {out:?}");
        // Ping-pong regression: way past baseline*(1+tol)+slack.
        let mut no_max = counter_artifact(3);
        no_max.config.retain(|(k, _)| k != COUNTER_GATE_MAX_KEY);
        let out = compare_artifacts(&[no_max], &[counter_artifact(16)], 0.20);
        let bad = out.iter().find(|c| c.metric.starts_with("counter:"));
        assert!(!bad.unwrap().ok, "16 vs blessed 3 must fail: {out:?}");
        // A counter absent from the current snapshot counts as zero.
        let mut quiet = counter_artifact(3);
        quiet.series[1].metrics = MetricsReport::default();
        let out = rows(&quiet);
        assert!(out.iter().all(|c| c.ok), "{out:?}");
    }

    #[test]
    fn validate_catches_counter_gate_drift() {
        assert!(validate_artifacts(&[counter_artifact(3)]).is_empty());
        // Ceiling that does not parse.
        let mut a = counter_artifact(3);
        a.config.retain(|(k, _)| k != COUNTER_GATE_MAX_KEY);
        a.config_kv(COUNTER_GATE_MAX_KEY, "four");
        assert!(validate_artifacts(&[a])
            .iter()
            .any(|e| e.contains(COUNTER_GATE_MAX_KEY)));
        // Gated series that does not exist.
        let mut a = counter_artifact(3);
        a.config.retain(|(k, _)| k != COUNTER_GATE_SERIES_KEY);
        a.config_kv(COUNTER_GATE_SERIES_KEY, "ghost");
        assert!(validate_artifacts(&[a])
            .iter()
            .any(|e| e.contains("absent series")));
        // Ceiling/series keys without the metric key are dangling.
        let mut a = artifact("fig1a", "x", 1.0);
        a.config_kv(COUNTER_GATE_MAX_KEY, 4);
        assert!(validate_artifacts(&[a])
            .iter()
            .any(|e| e.contains("without")));
    }

    #[test]
    fn validate_catches_schema_drift() {
        // A healthy document validates clean.
        let good = vec![
            artifact("fig1a", "tpcc", 50.0),
            alloc_artifact(3_000_000.0, 0.9, 27.0),
        ];
        assert!(
            validate_artifacts(&good).is_empty(),
            "{:?}",
            validate_artifacts(&good)
        );

        let errs = |arts: &[BenchArtifact]| validate_artifacts(arts);
        // Duplicate figures in one document.
        let dup = vec![artifact("fig1a", "a", 1.0), artifact("fig1a", "b", 1.0)];
        assert!(errs(&dup).iter().any(|e| e.contains("duplicate figure")));
        // Duplicate series labels.
        let mut a = artifact("fig1a", "x", 1.0);
        a.series.push(a.series[0].clone());
        assert!(errs(&[a])
            .iter()
            .any(|e| e.contains("duplicate series label")));
        // Non-finite throughput.
        let mut a = artifact("fig1a", "x", 1.0);
        a.series[0].throughput_txn_s = f64::NAN;
        assert!(errs(&[a]).iter().any(|e| e.contains("throughput_txn_s")));
        // Unparseable wall floor.
        let mut a = wall_artifact(2.0, 1.0);
        a.config_kv(WALL_FLOOR_KEY, "fast");
        assert!(errs(&[a]).iter().any(|e| e.contains(WALL_FLOOR_KEY)));
        // Alloc metric configured but absent from a series' metrics.
        let mut a = alloc_artifact(3_000_000.0, 0.9, 27.0);
        a.series[1].metrics = MetricsReport::default();
        assert!(errs(&[a]).iter().any(|e| e.contains("txn.allocs_per_txn")));
        // wall_baseline naming a series that does not exist.
        let mut a = wall_artifact(2.0, 1.0);
        a.config_kv(WALL_BASELINE_KEY, "thread");
        assert!(errs(&[a]).iter().any(|e| e.contains("absent series")));
        // Quantile ordering violated.
        let mut a = artifact("fig1a", "x", 1.0);
        a.series[0].latency.p95_us = a.series[0].latency.p99_us + 1_000_000;
        assert!(errs(&[a]).iter().any(|e| e.contains("not monotone")));
        // Empty figure and empty series list.
        assert!(!errs(&[BenchArtifact::new("")]).is_empty());
        assert!(errs(&[BenchArtifact::new("f")])
            .iter()
            .any(|e| e.contains("no series")));
    }

    #[test]
    fn comparison_gate_catches_phase_regressions() {
        let phased = |commit_wait_us: &[u64]| {
            let mut a = artifact("fig6a", "gclock", 100.0);
            a.series[0].phases = [
                ("commit_wait".to_string(), summary(commit_wait_us)),
                ("replication_ack".to_string(), summary(&[800, 1200])),
            ]
            .into_iter()
            .collect();
            a
        };
        let base = vec![phased(&[2000, 2200])];
        // Throughput unchanged, commit-wait mean tripled: the phase row
        // fails even though the throughput row passes.
        let out = compare_artifacts(&base, &[phased(&[6000, 6600])], 0.20);
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out[0].ok, "throughput row: {:?}", out[0]);
        assert_eq!(out[1].metric, "phase:commit_wait");
        assert!(!out[1].ok, "tripled commit wait must fail: {:?}", out[1]);
        assert!(out[1].render().contains("us mean"));
        assert_eq!(out[2].metric, "phase:replication_ack");
        assert!(out[2].ok);
        // A current run that dropped a gated phase entirely fails it.
        let mut gone = phased(&[2000, 2200]);
        gone.series[0].phases.remove("commit_wait");
        let out = compare_artifacts(&base, &[gone], 0.20);
        assert!(!out[1].ok, "missing phase must fail: {:?}", out[1]);
        // Tiny phases live inside the absolute slack: a jump from 5 µs
        // to 40 µs is noise, not a regression.
        let out = compare_artifacts(&[phased(&[5, 5])], &[phased(&[40, 40])], 0.20);
        assert!(out[1].ok, "sub-slack phase flagged: {:?}", out[1]);
    }
}
