//! Cross-shard transfers with two-phase commit: a classic bank workload
//! demonstrating atomicity across shards and the money-conservation
//! invariant under concurrent transfers.
//!
//! ```text
//! cargo run --release --example bank_2pc
//! ```
#![allow(clippy::inconsistent_digit_grouping)] // money literals read as dollars_cents

use globaldb::{Cluster, ClusterConfig, Datum, GdbError, SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ACCOUNTS: i64 = 200;
const INITIAL: i64 = 1_000_00; // $1000.00 per account

fn main() {
    let mut cluster = Cluster::new(ClusterConfig::globaldb_three_city());
    cluster
        .ddl(
            "CREATE TABLE bank (id INT NOT NULL, balance DECIMAL, \
             PRIMARY KEY (id)) DISTRIBUTE BY HASH(id)",
        )
        .unwrap();
    let table = cluster.db.catalog().table_by_name("bank").unwrap().id;
    cluster
        .bulk_load(
            table,
            (0..ACCOUNTS)
                .map(|i| gdb_model::Row(vec![Datum::Int(i), Datum::Decimal(INITIAL)]))
                .collect(),
        )
        .unwrap();
    cluster.finish_load();

    let read_bal = cluster
        .prepare("SELECT balance FROM bank WHERE id = ? FOR UPDATE")
        .unwrap();
    let set_bal = cluster
        .prepare("UPDATE bank SET balance = ? WHERE id = ?")
        .unwrap();

    let mut rng = SmallRng::seed_from_u64(7);
    let mut committed = 0u64;
    let mut rejected = 0u64;
    let mut two_pc = 0u64;
    for i in 0..400u64 {
        let from = rng.gen_range(0..ACCOUNTS);
        let mut to = rng.gen_range(0..ACCOUNTS - 1);
        if to >= from {
            to += 1;
        }
        let amount = rng.gen_range(1..=500_00i64);
        let at = SimTime::from_millis(10) + SimDuration::from_millis(i * 2);
        let cn = (i % 3) as usize;
        let result = cluster.run_transaction(cn, at, false, false, |txn| {
            // Debit with an overdraft check, credit the receiver.
            let out = txn.execute(&read_bal, &[Datum::Int(from)])?;
            let bal = out.rows()[0].0[0].as_decimal().unwrap();
            if bal < amount {
                return Err(GdbError::TxnAborted("insufficient funds".into()));
            }
            txn.execute(&set_bal, &[Datum::Decimal(bal - amount), Datum::Int(from)])?;
            let out = txn.execute(&read_bal, &[Datum::Int(to)])?;
            let to_bal = out.rows()[0].0[0].as_decimal().unwrap();
            txn.execute(&set_bal, &[Datum::Decimal(to_bal + amount), Datum::Int(to)])?;
            Ok(())
        });
        match result {
            Ok((_, o)) => {
                committed += 1;
                if o.shards_written.len() > 1 {
                    two_pc += 1;
                }
            }
            Err(_) => rejected += 1,
        }
    }
    println!(
        "{committed} transfers committed ({two_pc} via cross-shard 2PC), \
         {rejected} rejected for insufficient funds"
    );

    // Money conservation: the sum of balances is unchanged.
    cluster.run_until(cluster.now() + SimDuration::from_secs(1));
    let (out, _) = cluster
        .execute_sql(0, cluster.now(), "SELECT SUM(balance) FROM bank", &[])
        .unwrap();
    let total = out.rows()[0].0[0].as_decimal().unwrap();
    println!(
        "sum of balances: {} (expected {})",
        total,
        ACCOUNTS * INITIAL
    );
    assert_eq!(total, ACCOUNTS * INITIAL, "money was created or destroyed!");
    println!(
        "money conserved across {} concurrent transfers ✓",
        committed
    );
}
