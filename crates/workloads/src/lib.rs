//! Benchmark workloads for the GaussDB-Global reproduction (paper §V).
//!
//! * [`tpcc`] — a complete TPC-C implementation: the nine-table schema
//!   (hash-distributed by warehouse, `ITEM` replicated), a deterministic
//!   loader, and all five transaction types with the spec's input
//!   distributions (NURand, 1% invalid-item rollbacks, 15% remote Payment
//!   customers, ~1% remote New-Order supply warehouses). A read-only
//!   variant (Order-Status + Stock-Level, 50% multi-shard) reproduces the
//!   Fig. 6c configuration.
//! * [`sysbench`] — Sysbench OLTP: N tables of M rows; the Point-Select
//!   workload of Fig. 6d (uniform keys ⇒ ~2/3 of fetches remote on the
//!   Three-City cluster), with optional Zipfian / hot-spot key skew
//!   ([`driver::KeyDistribution`]) for the rebalancing experiments.
//! * [`driver`] — a closed-loop multi-terminal driver over virtual time
//!   with a controllable remote-transaction fraction (§V-A) and think
//!   times, producing throughput / latency reports.

pub mod driver;
pub mod report;
pub mod sysbench;
pub mod tpcc;

pub use driver::{run_workload, KeyDistribution, KeySampler, RunConfig, Workload};
pub use report::WorkloadReport;

/// Metric names exported by the workload layer.
pub mod metrics {
    /// Gauge: allocator bytes attributable to one terminal's state
    /// (scale-tier footprint leg; lower is better).
    pub const TERMINAL_BYTES: &str = "workload.terminal_bytes";
}

#[cfg(test)]
mod tests {
    /// Dashboards and the scale-bench alloc gate key on this name.
    #[test]
    fn metric_names_are_frozen() {
        assert_eq!(super::metrics::TERMINAL_BYTES, "workload.terminal_bytes");
    }
}
