//! Range-distributed tables end-to-end, load-based read balancing
//! (the skyline swapping out a busy replica — paper §IV-B: "we may swap
//! out a replica node for a different one if its response time goes up"),
//! and routing-epoch semantics across an online shard migration.

use globaldb::{Cluster, ClusterConfig, Datum, GdbError, SimDuration, SimTime};

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

#[test]
fn range_distributed_table_routes_and_prunes() {
    let mut c = Cluster::new(ClusterConfig::globaldb_one_region());
    c.ddl(
        "CREATE TABLE events (seq INT NOT NULL, payload TEXT, PRIMARY KEY (seq)) \
         DISTRIBUTE BY RANGE(seq) SPLIT AT (100, 200, 300, 400, 500)",
    )
    .unwrap();
    // Rows land in their range shard.
    for seq in [50i64, 150, 250, 350, 450, 550] {
        c.execute_sql(
            0,
            t(10),
            "INSERT INTO events VALUES (?, ?)",
            &[Datum::Int(seq), Datum::Text(format!("e{seq}"))],
        )
        .unwrap();
    }
    let table = c.db.catalog().table_by_name("events").unwrap().clone();
    let shard_count = c.db.shards().len() as u16;
    // Each row is on the expected shard: seq 50 → shard 0, 150 → 1, ...
    for (i, seq) in [50i64, 150, 250, 350, 450, 550].iter().enumerate() {
        let shard = table
            .shard_of_pk(&gdb_model::RowKey::single(*seq), shard_count)
            .0 as usize;
        assert_eq!(shard, i, "seq {seq}");
        assert_eq!(
            c.db.shards()[shard]
                .storage
                .table(table.id)
                .unwrap()
                .key_count(),
            1
        );
    }
    // Point and range queries return correct results across the splits.
    let (out, _) = c
        .execute_sql(1, t(100), "SELECT payload FROM events WHERE seq = 250", &[])
        .unwrap();
    assert_eq!(out.rows()[0].0[0], Datum::Text("e250".into()));
    let (out, _) = c
        .execute_sql(
            1,
            t(110),
            "SELECT seq FROM events WHERE seq BETWEEN 100 AND 400 ORDER BY seq",
            &[],
        )
        .unwrap();
    let seqs: Vec<i64> = out
        .rows()
        .iter()
        .map(|r| r.0[0].as_int().unwrap())
        .collect();
    assert_eq!(seqs, vec![150, 250, 350]);
}

#[test]
fn busy_replica_is_swapped_out_by_the_skyline() {
    let mut c = Cluster::new(ClusterConfig::globaldb_one_region());
    c.ddl("CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k)) DISTRIBUTE BY HASH(k)")
        .unwrap();
    let table = c.db.catalog().table_by_name("kv").unwrap().id;
    c.bulk_load(
        table,
        (0..60i64)
            .map(|i| gdb_model::Row(vec![Datum::Int(i), Datum::Int(0)]))
            .collect(),
    )
    .unwrap();
    c.finish_load();
    c.run_until(t(300));

    // Find a key on a shard whose primary is not co-hosted with CN 1 so a
    // replica is the natural choice.
    let schema = c.db.catalog().table(table).unwrap().clone();
    let cn1_host = c.db.topo().node_host(c.db.cns()[1].node);
    let (key, shard) = (0..60i64)
        .find_map(|k| {
            let s = schema
                .shard_of_pk(&gdb_model::RowKey::single(k), c.db.shards().len() as u16)
                .0 as usize;
            (c.db.topo().node_host(c.db.shards()[s].primary) != cn1_host).then_some((k, s))
        })
        .expect("remote-shard key");

    let sel = c.prepare("SELECT v FROM kv WHERE k = ?").unwrap();
    let read = |c: &mut Cluster, at: SimTime| {
        let ((), o) = c
            .run_transaction(1, at, true, true, |txn| {
                txn.execute(&sel, &[Datum::Int(key)]).map(|_| ())
            })
            .unwrap();
        o
    };
    let o1 = read(&mut c, t(310));
    assert!(o1.used_replica);

    // Make the normally-chosen replica look overloaded: a huge replay
    // backlog inflates its load axis.
    let now = c.now();
    let overloaded: Vec<gdb_simnet::NetNodeId> = c.db.shards()[shard]
        .replicas
        .iter()
        .map(|r| r.node)
        .filter(|&n| c.db.topo().node_host(n) == cn1_host)
        .collect();
    for r in &mut c.db.shards_mut()[shard].replicas {
        if overloaded.contains(&r.node) {
            r.busy_until = now + SimDuration::from_secs(5);
        }
    }
    // The skyline now swaps reads to another node — still answered, and
    // not from the overloaded local replica unless nothing else qualifies.
    let o2 = read(&mut c, t(320));
    // The read is still served (availability), with the overloaded node's
    // load visible in the selection.
    let svc_now = c.now();
    let mut svc = c.ror_service();
    let sky = svc.skyline(1, shard, o2.snapshot, svc_now);
    assert!(!sky.is_empty());
    let picked = sky.select(None).unwrap();
    // The picked node is not the overloaded one.
    let overloaded: Vec<_> = c.db.shards()[shard]
        .replicas
        .iter()
        .filter(|r| r.busy_until > c.now() + SimDuration::from_secs(1))
        .map(|r| r.node)
        .collect();
    assert!(
        !overloaded.contains(&picked.node),
        "skyline must avoid the overloaded replica"
    );
}

/// Hash-table fixture for the migration tests: returns the cluster and
/// a key that lives on shard 0.
fn migration_fixture() -> (Cluster, i64) {
    let mut c = Cluster::new(ClusterConfig::globaldb_one_region());
    c.ddl("CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k)) DISTRIBUTE BY HASH(k)")
        .unwrap();
    let table = c.db.catalog().table_by_name("kv").unwrap().id;
    c.bulk_load(
        table,
        (0..60i64)
            .map(|i| gdb_model::Row(vec![Datum::Int(i), Datum::Int(0)]))
            .collect(),
    )
    .unwrap();
    c.finish_load();
    c.run_until(t(300));
    let schema = c.db.catalog().table(table).unwrap().clone();
    let key = (0..60i64)
        .find(|&k| {
            schema
                .shard_of_pk(&gdb_model::RowKey::single(k), c.db.shards().len() as u16)
                .0
                == 0
        })
        .expect("a key on shard 0");
    (c, key)
}

/// Migrate shard 0 to another host and run the cluster until it
/// completes.
fn migrate_shard0(c: &mut Cluster) {
    let source_host = c.db.topo().node_host(c.db.shards()[0].primary);
    c.start_migration(0, c.db.regions()[0], (source_host + 1) % 3)
        .unwrap();
    c.run_until(c.now() + SimDuration::from_secs(2));
    assert_eq!(c.db.last_migration_completed(), Some(0));
    assert_eq!(c.db.routing_epoch(), 1);
}

#[test]
fn stale_routing_epoch_is_rejected_and_rerouted() {
    let (mut c, key) = migration_fixture();
    migrate_shard0(&mut c);

    // Pretend CN 0 never heard the cutover announcement: its cached
    // route table is one epoch behind.
    c.db.cns_mut()[0].route_epoch = 0;
    let upd = c.prepare("UPDATE kv SET v = ? WHERE k = ?").unwrap();
    let at = c.now() + SimDuration::from_millis(5);
    let err = c
        .run_transaction(0, at, false, true, |txn| {
            txn.execute(&upd, &[Datum::Int(1), Datum::Int(key)])
                .map(|_| ())
        })
        .expect_err("stale route must be rejected");
    assert!(matches!(err, GdbError::StaleRoute(_)), "got {err}");
    assert!(err.is_retryable(), "stale-route rejects are retryable");
    assert_eq!(c.db.stats().stale_route_rejects, 1);
    // The reject refreshed the CN's cache, so the retry re-routes and
    // succeeds.
    assert_eq!(c.db.cns()[0].route_epoch, 1);
    let at = c.now() + SimDuration::from_millis(5);
    c.run_transaction(0, at, false, true, |txn| {
        txn.execute(&upd, &[Datum::Int(1), Datum::Int(key)])
            .map(|_| ())
    })
    .expect("retry at the fresh epoch must succeed");
    assert_eq!(c.db.stats().stale_route_rejects, 1, "no second reject");
}

/// A batched plan — two primary moves plus a replica move onto a
/// freshly joined node — cuts over under ONE routing-epoch bump, and a
/// CN that missed the announcement gets exactly one StaleRoute reject
/// before its retry lands.
#[test]
fn batched_plan_bumps_epoch_once_and_stale_cn_retries() {
    let (mut c, key) = migration_fixture();
    assert_eq!(c.db.routing_epoch(), 0);

    // Scale out: a spare data node on a brand-new host slot.
    let joined = c.db.join_data_node(c.db.regions()[0], 3);

    let h0 = c.db.topo().node_host(c.db.shards()[0].primary);
    let h1 = c.db.topo().node_host(c.db.shards()[1].primary);
    let old_replica = c.db.shards()[2].replicas[0].node;
    let region = c.db.regions()[0];
    let plan = c
        .start_plan(vec![
            globaldb::MigrationSpec {
                shard: 0,
                kind: globaldb::MigrationKind::Primary,
                to_region: region,
                to_host: (h0 + 1) % 3,
            },
            globaldb::MigrationSpec {
                shard: 1,
                kind: globaldb::MigrationKind::Primary,
                to_region: region,
                to_host: (h1 + 1) % 3,
            },
            globaldb::MigrationSpec {
                shard: 2,
                kind: globaldb::MigrationKind::Replica { node: old_replica },
                to_region: region,
                to_host: 3,
            },
        ])
        .unwrap();
    assert_eq!(c.db.stats().migrations_started, 3);
    c.run_until(c.now() + SimDuration::from_secs(3));

    // All three members completed under the same plan...
    assert_eq!(c.db.stats().migrations_completed, 3);
    assert!(c.db.migrations().iter().all(|m| m.plan != plan));
    // ...with exactly ONE epoch bump for the whole batch.
    assert_eq!(c.db.routing_epoch(), 1, "batch must flip the epoch once");
    // The replica landed on the joined node's host and the old copy is
    // permanently gone.
    assert!(c.db.shards()[2]
        .replicas
        .iter()
        .any(|r| c.db.topo().node_host(r.node) == 3));
    assert!(c.db.shards()[2]
        .replicas
        .iter()
        .all(|r| r.node != old_replica));
    let _ = joined;

    // A CN with a stale route cache is rejected once, refreshed, and
    // its retry succeeds.
    c.db.cns_mut()[0].route_epoch = 0;
    let upd = c.prepare("UPDATE kv SET v = ? WHERE k = ?").unwrap();
    let at = c.now() + SimDuration::from_millis(5);
    let err = c
        .run_transaction(0, at, false, true, |txn| {
            txn.execute(&upd, &[Datum::Int(7), Datum::Int(key)])
                .map(|_| ())
        })
        .expect_err("stale route must be rejected");
    assert!(matches!(err, GdbError::StaleRoute(_)), "got {err}");
    assert!(err.is_retryable());
    assert_eq!(c.db.cns()[0].route_epoch, 1, "reject refreshes the cache");
    let at = c.now() + SimDuration::from_millis(5);
    c.run_transaction(0, at, false, true, |txn| {
        txn.execute(&upd, &[Datum::Int(7), Datum::Int(key)])
            .map(|_| ())
    })
    .expect("retry at the fresh epoch must succeed");
}

#[test]
fn migrated_shard_serves_prior_writes_from_every_cn() {
    let (mut c, key) = migration_fixture();
    // Commit a distinctive value before the migration...
    let upd = c.prepare("UPDATE kv SET v = ? WHERE k = ?").unwrap();
    let at = c.now() + SimDuration::from_millis(5);
    c.run_transaction(0, at, false, true, |txn| {
        txn.execute(&upd, &[Datum::Int(42), Datum::Int(key)])
            .map(|_| ())
    })
    .unwrap();

    migrate_shard0(&mut c);

    // ...and read it back through the migrated primary from every CN.
    let sel = c.prepare("SELECT v FROM kv WHERE k = ?").unwrap();
    for cn in 0..c.db.cns().len() {
        let at = c.now() + SimDuration::from_millis(5);
        let ((), _) = c
            .run_transaction(cn, at, true, true, |txn| {
                let out = txn.execute(&sel, &[Datum::Int(key)])?;
                assert_eq!(
                    out.rows()[0].0[0],
                    Datum::Int(42),
                    "cn {cn} must read the pre-migration write"
                );
                Ok(())
            })
            .unwrap();
    }
    // Writes keep flowing after the cutover, and read back correctly.
    let at = c.now() + SimDuration::from_millis(5);
    c.run_transaction(1, at, false, true, |txn| {
        txn.execute(&upd, &[Datum::Int(43), Datum::Int(key)])
            .map(|_| ())
    })
    .unwrap();
    // Let replication and the RCP catch up so an ROR read sees the new
    // version (reads run at the RCP snapshot, not read-your-writes).
    c.run_until(c.now() + SimDuration::from_millis(500));
    let at = c.now() + SimDuration::from_millis(5);
    let ((), _) = c
        .run_transaction(2, at, true, true, |txn| {
            let out = txn.execute(&sel, &[Datum::Int(key)])?;
            assert_eq!(out.rows()[0].0[0], Datum::Int(43));
            Ok(())
        })
        .unwrap();
}
