//! TPC-C consistency conditions (clause 3.3.2), checked through SQL.
//!
//! Run after a workload to certify that the database survived the run with
//! its invariants intact — the strongest end-to-end correctness signal the
//! benchmark offers. Adapted to the scaled schema:
//!
//! * **C1** — for each district: `d_next_o_id − 1` = max(`o_id`) in both
//!   `orders` and `new_order` (when the district has undelivered orders).
//! * **C2** — for each district: the `new_order` ids form a contiguous
//!   range (`max − min + 1` = count).
//! * **C3** — for each order: `o_ol_cnt` = count of its `order_line` rows.
//! * **C4** — per warehouse: `w_ytd` = sum of its districts' `d_ytd`.

use super::TpccScale;
use gdb_model::{Datum, GdbError, GdbResult};
use globaldb::Cluster;

/// Verify all four conditions; returns the number of entities checked.
pub fn verify(cluster: &mut Cluster, scale: &TpccScale) -> GdbResult<usize> {
    let mut checked = 0;
    let now = cluster.now();

    for w in 1..=scale.warehouses {
        // C4: warehouse ytd equals the sum of district ytds.
        let (wy, _) = cluster.execute_sql(
            0,
            now,
            "SELECT w_ytd FROM warehouse WHERE w_id = ?",
            &[Datum::Int(w)],
        )?;
        let w_ytd = wy.rows()[0].0[0].as_decimal().unwrap_or(0);
        let (dy, _) = cluster.execute_sql(
            0,
            now,
            "SELECT SUM(d_ytd) FROM district WHERE d_w_id = ?",
            &[Datum::Int(w)],
        )?;
        let d_sum = dy.rows()[0].0[0].as_decimal().unwrap_or(0);
        // Both start at 30 000.00 per district/warehouse; payments add to
        // both equally — compare the deltas.
        let initial_w = 3_000_000;
        let initial_d = 3_000_000 * scale.districts_per_warehouse;
        if w_ytd - initial_w != d_sum - initial_d {
            return Err(GdbError::Internal(format!(
                "C4 violated for warehouse {w}: w_ytd delta {} != district sum delta {}",
                w_ytd - initial_w,
                d_sum - initial_d
            )));
        }
        checked += 1;

        for d in 1..=scale.districts_per_warehouse {
            // C1: order counter vs max order id.
            let (next, _) = cluster.execute_sql(
                0,
                now,
                "SELECT d_next_o_id FROM district WHERE d_w_id = ? AND d_id = ?",
                &[Datum::Int(w), Datum::Int(d)],
            )?;
            let next_oid = next.rows()[0].0[0].as_int().unwrap_or(0);
            let (max_o, _) = cluster.execute_sql(
                0,
                now,
                "SELECT MAX(o_id) FROM orders WHERE o_w_id = ? AND o_d_id = ?",
                &[Datum::Int(w), Datum::Int(d)],
            )?;
            let max_oid = max_o.rows()[0].0[0].as_int().unwrap_or(0);
            if next_oid - 1 != max_oid {
                return Err(GdbError::Internal(format!(
                    "C1 violated for district ({w},{d}): d_next_o_id {next_oid} vs max o_id {max_oid}"
                )));
            }

            // C2: new_order ids are contiguous.
            let (no, _) = cluster.execute_sql(
                0,
                now,
                "SELECT COUNT(*), MIN(no_o_id), MAX(no_o_id) FROM new_order \
                 WHERE no_w_id = ? AND no_d_id = ?",
                &[Datum::Int(w), Datum::Int(d)],
            )?;
            let rows = no.rows();
            let count = rows[0].0[0].as_int().unwrap_or(0);
            if count > 0 {
                let min = rows[0].0[1].as_int().unwrap_or(0);
                let max = rows[0].0[2].as_int().unwrap_or(0);
                if max - min + 1 != count {
                    return Err(GdbError::Internal(format!(
                        "C2 violated for district ({w},{d}): new_order ids not contiguous \
                         (min {min}, max {max}, count {count})"
                    )));
                }
                if max != next_oid - 1 {
                    return Err(GdbError::Internal(format!(
                        "C1/new_order violated for district ({w},{d}): max no_o_id {max} vs \
                         d_next_o_id {next_oid}"
                    )));
                }
            }
            checked += 1;

            // C3: o_ol_cnt matches the actual order_line count (sample the
            // newest 5 orders per district to keep the check fast).
            let (orders, _) = cluster.execute_sql(
                0,
                now,
                "SELECT o_id, o_ol_cnt FROM orders WHERE o_w_id = ? AND o_d_id = ? \
                 ORDER BY o_id DESC LIMIT 5",
                &[Datum::Int(w), Datum::Int(d)],
            )?;
            for row in orders.rows() {
                let o_id = row.0[0].as_int().unwrap_or(0);
                let ol_cnt = row.0[1].as_int().unwrap_or(0);
                let (lines, _) = cluster.execute_sql(
                    0,
                    now,
                    "SELECT COUNT(*) FROM order_line \
                     WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id = ?",
                    &[Datum::Int(w), Datum::Int(d), Datum::Int(o_id)],
                )?;
                let actual = lines.rows()[0].0[0].as_int().unwrap_or(0);
                if actual != ol_cnt {
                    return Err(GdbError::Internal(format!(
                        "C3 violated for order ({w},{d},{o_id}): o_ol_cnt {ol_cnt} vs \
                         {actual} order lines"
                    )));
                }
                checked += 1;
            }
        }
    }
    Ok(checked)
}
