//! SQL values and their types.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The SQL data types supported by the engine — the set needed by the TPC-C
/// and Sysbench schemas (integers, decimals-as-scaled-integers, text,
/// timestamps-as-integers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// Fixed-point decimal stored as a scaled i64 (TPC-C money columns).
    /// The scale (digits after the point) is part of the column definition.
    Decimal,
    /// Variable-length UTF-8 string.
    Text,
    /// Boolean.
    Bool,
}

/// A single SQL value.
///
/// `Decimal` carries its scaled integer representation; arithmetic on
/// decimals is the caller's responsibility (the executor keeps track of
/// scales via the schema).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Datum {
    Null,
    Int(i64),
    Decimal(i64),
    Text(String),
    Bool(bool),
}

impl Datum {
    /// The type of this value, or `None` for NULL (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Datum::Null => None,
            Datum::Int(_) => Some(DataType::Int),
            Datum::Decimal(_) => Some(DataType::Decimal),
            Datum::Text(_) => Some(DataType::Text),
            Datum::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True if this is the SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Extract an integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a decimal's scaled representation, if this is one.
    /// Integers coerce to decimals (scale handled by the caller).
    pub fn as_decimal(&self) -> Option<i64> {
        match self {
            Datum::Decimal(v) | Datum::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a string slice, if this is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Datum::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison: NULL compares as unknown (`None`); numeric types
    /// compare across Int/Decimal by raw value.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        match (self, other) {
            (Datum::Null, _) | (_, Datum::Null) => None,
            (Datum::Int(a), Datum::Int(b)) => Some(a.cmp(b)),
            (Datum::Decimal(a), Datum::Decimal(b)) => Some(a.cmp(b)),
            (Datum::Int(a), Datum::Decimal(b)) | (Datum::Decimal(a), Datum::Int(b)) => {
                Some(a.cmp(b))
            }
            (Datum::Text(a), Datum::Text(b)) => Some(a.cmp(b)),
            (Datum::Bool(a), Datum::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order used for index keys and ORDER BY: NULLs sort first, then
    /// by type tag, then by value. Unlike [`Datum::sql_cmp`] this is total.
    pub fn key_cmp(&self, other: &Datum) -> Ordering {
        fn rank(d: &Datum) -> u8 {
            match d {
                Datum::Null => 0,
                Datum::Bool(_) => 1,
                Datum::Int(_) => 2,
                Datum::Decimal(_) => 2, // numeric types share a rank
                Datum::Text(_) => 3,
            }
        }
        match (self, other) {
            (Datum::Null, Datum::Null) => Ordering::Equal,
            (Datum::Int(a), Datum::Int(b)) => a.cmp(b),
            (Datum::Decimal(a), Datum::Decimal(b)) => a.cmp(b),
            (Datum::Int(a), Datum::Decimal(b)) | (Datum::Decimal(a), Datum::Int(b)) => a.cmp(b),
            (Datum::Text(a), Datum::Text(b)) => a.cmp(b),
            (Datum::Bool(a), Datum::Bool(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// A stable 64-bit hash of the value, used for hash distribution of rows
    /// to shards. Independent of the process's default hasher so that shard
    /// placement is deterministic across runs.
    pub fn stable_hash(&self) -> u64 {
        // FNV-1a over a tag byte plus the value bytes.
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        fn fnv(bytes: &[u8], mut h: u64) -> u64 {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        match self {
            Datum::Null => fnv(&[0], OFFSET),
            Datum::Int(v) | Datum::Decimal(v) => fnv(&v.to_le_bytes(), fnv(&[1], OFFSET)),
            Datum::Text(s) => fnv(s.as_bytes(), fnv(&[2], OFFSET)),
            Datum::Bool(b) => fnv(&[*b as u8], fnv(&[3], OFFSET)),
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Decimal(v) => write!(f, "{v}¤"),
            Datum::Text(s) => write!(f, "'{s}'"),
            Datum::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int(v)
    }
}

impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Text(v.to_owned())
    }
}

impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::Text(v)
    }
}

impl From<bool> for Datum {
    fn from(v: bool) -> Self {
        Datum::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Null), None);
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(
            Datum::Int(5).sql_cmp(&Datum::Decimal(5)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Datum::Decimal(4).sql_cmp(&Datum::Int(5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn key_cmp_is_total_nulls_first() {
        assert_eq!(Datum::Null.key_cmp(&Datum::Int(-100)), Ordering::Less);
        assert_eq!(
            Datum::Int(1).key_cmp(&Datum::Text("a".into())),
            Ordering::Less
        );
        assert_eq!(Datum::Null.key_cmp(&Datum::Null), Ordering::Equal);
    }

    #[test]
    fn stable_hash_differs_by_type_tag() {
        assert_ne!(
            Datum::Int(0).stable_hash(),
            Datum::Bool(false).stable_hash()
        );
        assert_ne!(Datum::Int(1).stable_hash(), Datum::Int(2).stable_hash());
        // Deterministic across calls.
        assert_eq!(
            Datum::Text("hello".into()).stable_hash(),
            Datum::Text("hello".into()).stable_hash()
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Datum::from(42i64), Datum::Int(42));
        assert_eq!(Datum::from("x"), Datum::Text("x".into()));
        assert_eq!(Datum::from(true), Datum::Bool(true));
        assert!(Datum::Null.is_null());
        assert_eq!(Datum::Int(3).as_int(), Some(3));
        assert_eq!(Datum::Text("t".into()).as_text(), Some("t"));
    }
}
