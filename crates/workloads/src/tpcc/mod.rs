//! TPC-C (TPC Benchmark C, revision 5.11) for the GlobalDB cluster.

pub mod consistency;
pub mod loader;
pub mod schema;
pub mod txns;

use globaldb::Cluster;
use rand::rngs::SmallRng;
use rand::Rng;

/// Scale parameters. The paper runs 600 warehouses on physical hardware;
/// the simulation runs scaled-down databases with the same *shape*
/// (cardinality ratios follow the spec; absolute sizes are configurable).
#[derive(Debug, Clone, Copy)]
pub struct TpccScale {
    pub warehouses: i64,
    pub districts_per_warehouse: i64,
    pub customers_per_district: i64,
    pub items: i64,
    /// Initial orders per district (last 30% stay undelivered, feeding
    /// Delivery and Stock-Level).
    pub initial_orders_per_district: i64,
}

impl TpccScale {
    /// Minimal scale for unit/integration tests.
    pub fn tiny() -> Self {
        TpccScale {
            warehouses: 2,
            districts_per_warehouse: 2,
            customers_per_district: 30,
            items: 100,
            initial_orders_per_district: 20,
        }
    }

    /// Benchmark scale (fits comfortably in memory; ratios per spec).
    pub fn small() -> Self {
        TpccScale {
            warehouses: 4,
            districts_per_warehouse: 10,
            customers_per_district: 300,
            items: 1_000,
            initial_orders_per_district: 100,
        }
    }

    /// Larger benchmark scale.
    pub fn medium() -> Self {
        TpccScale {
            warehouses: 12,
            districts_per_warehouse: 10,
            customers_per_district: 600,
            items: 2_000,
            initial_orders_per_district: 200,
        }
    }
}

/// Transaction mix (weights; the standard mix is 45/43/4/4/4).
#[derive(Debug, Clone, Copy)]
pub struct TpccMix {
    pub new_order: u32,
    pub payment: u32,
    pub order_status: u32,
    pub delivery: u32,
    pub stock_level: u32,
}

impl TpccMix {
    /// The full TPC-C mix used in Fig. 6a/6b.
    pub fn standard() -> Self {
        TpccMix {
            new_order: 45,
            payment: 43,
            order_status: 4,
            delivery: 4,
            stock_level: 4,
        }
    }

    /// The read-only variant of Fig. 6c: Order-Status + Stock-Level only.
    pub fn read_only() -> Self {
        TpccMix {
            new_order: 0,
            payment: 0,
            order_status: 50,
            delivery: 0,
            stock_level: 50,
        }
    }

    pub fn total(&self) -> u32 {
        self.new_order + self.payment + self.order_status + self.delivery + self.stock_level
    }

    /// Pick a transaction kind by weight.
    pub fn pick(&self, rng: &mut SmallRng) -> TxnKind {
        let mut r = rng.gen_range(0..self.total());
        for (kind, w) in [
            (TxnKind::NewOrder, self.new_order),
            (TxnKind::Payment, self.payment),
            (TxnKind::OrderStatus, self.order_status),
            (TxnKind::Delivery, self.delivery),
            (TxnKind::StockLevel, self.stock_level),
        ] {
            if r < w {
                return kind;
            }
            r -= w;
        }
        TxnKind::NewOrder
    }
}

/// The five TPC-C transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnKind {
    NewOrder,
    Payment,
    OrderStatus,
    Delivery,
    StockLevel,
}

impl TxnKind {
    pub fn name(self) -> &'static str {
        match self {
            TxnKind::NewOrder => "new_order",
            TxnKind::Payment => "payment",
            TxnKind::OrderStatus => "order_status",
            TxnKind::Delivery => "delivery",
            TxnKind::StockLevel => "stock_level",
        }
    }

    /// Read-only types are ROR-eligible.
    pub fn is_read_only(self) -> bool {
        matches!(self, TxnKind::OrderStatus | TxnKind::StockLevel)
    }
}

/// TPC-C non-uniform random (clause 2.1.6): hot-spot-skewed selection.
/// The constant `A` follows the spec's table, adapted to scaled ranges.
pub fn nurand(rng: &mut SmallRng, x: i64, y: i64) -> i64 {
    let range = y - x + 1;
    let a: i64 = if range <= 1_000 {
        255
    } else if range <= 3_000 {
        1_023
    } else {
        8_191
    };
    let c = a / 2; // the spec's run-time constant C; fixed per run
    (((rng.gen_range(0..=a) | rng.gen_range(x..=y)) + c) % range) + x
}

/// The spec's last-name generator: three syllables from a 3-digit number.
pub fn last_name(num: i64) -> String {
    const SYLLABLES: [&str; 10] = [
        "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
    ];
    let n = num.clamp(0, 999);
    format!(
        "{}{}{}",
        SYLLABLES[(n / 100) as usize],
        SYLLABLES[((n / 10) % 10) as usize],
        SYLLABLES[(n % 10) as usize]
    )
}

/// Random last-name number for transactions (NURand over 0..=999).
pub fn random_last_name(rng: &mut SmallRng) -> String {
    last_name(nurand(rng, 0, 999))
}

/// The TPC-C workload, pluggable into [`crate::driver::run_workload`].
pub struct TpccWorkload {
    pub scale: TpccScale,
    pub mix: TpccMix,
    /// Probability a transaction is submitted to a CN that is *not* the
    /// home CN of its warehouse (the paper's remote-transaction knob,
    /// §V-A: "we modify our workloads to control the proportion of remote
    /// transactions").
    pub remote_cn_fraction: f64,
    /// For the read-only variant: fraction of Stock-Level queries probing
    /// a remote warehouse's stock (Fig. 6c runs 50% multi-shard).
    pub multi_shard_read_fraction: f64,
    /// Force all transactions onto one CN (Fig. 6b measures a node not
    /// co-located with the GTM).
    pub pin_cn: Option<usize>,
    /// With `pin_cn`, restrict terminals to warehouses homed at that CN
    /// (the paper's per-machine workload affinity).
    pub local_warehouses_only: bool,
    /// Fraction of Payment transactions whose customer lives at a remote
    /// warehouse (spec: 0.15). The paper's "100% local transactions"
    /// configuration (§V-A) sets this to 0.
    pub remote_payment_fraction: f64,
    /// Per-line probability of a remote supply warehouse in New-Order
    /// (spec: 0.01). Set to 0 for the 100%-local configuration.
    pub remote_supply_fraction: f64,
    statements: Option<txns::Statements>,
    /// Home CN per warehouse (index w-1).
    home_cn: Vec<usize>,
    /// Cached local-warehouse list for the pinned-CN configuration: a
    /// pure function of `(pin_cn, home_cn)`, both fixed after setup, so
    /// rebuilding it per transaction (as the hot path used to) is pure
    /// allocation churn at scale.
    local_cache: Option<(usize, Vec<i64>)>,
    rng: rand::rngs::SmallRng,
    h_seq: i64,
    seed: u64,
}

impl TpccWorkload {
    /// The paper's "100% local transactions" configuration (§V-A): no
    /// cross-warehouse touches at all.
    pub fn set_all_local(&mut self) {
        self.remote_cn_fraction = 0.0;
        self.remote_payment_fraction = 0.0;
        self.remote_supply_fraction = 0.0;
        self.multi_shard_read_fraction = 0.0;
    }

    pub fn new(scale: TpccScale, mix: TpccMix, seed: u64) -> Self {
        use rand::SeedableRng;
        TpccWorkload {
            scale,
            mix,
            remote_cn_fraction: 0.0,
            multi_shard_read_fraction: 0.5,
            pin_cn: None,
            local_warehouses_only: false,
            remote_payment_fraction: 0.15,
            remote_supply_fraction: 0.01,
            statements: None,
            home_cn: Vec::new(),
            local_cache: None,
            rng: rand::rngs::SmallRng::seed_from_u64(seed ^ 0x7bcc_5eed),
            h_seq: 0,
            seed,
        }
    }

    /// Home CN of a warehouse: the CN co-located (same host, else same
    /// region) with the warehouse's shard primary.
    fn compute_home_cns(&mut self, cluster: &Cluster) {
        let schema = cluster
            .db
            .catalog()
            .table_by_name("warehouse")
            .expect("warehouse table")
            .clone();
        let shard_count = cluster.db.shards().len() as u16;
        self.local_cache = None;
        self.home_cn = (1..=self.scale.warehouses)
            .map(|w| {
                let shard = schema
                    .shard_of_pk(&gdb_model::RowKey::single(w), shard_count)
                    .0 as usize;
                let primary = cluster.db.shards()[shard].primary;
                let p_host = cluster.db.topo().node_host(primary);
                let p_region = cluster.db.topo().node_region(primary);
                cluster
                    .db
                    .cns()
                    .iter()
                    .position(|cn| cluster.db.topo().node_host(cn.node) == p_host)
                    .or_else(|| cluster.db.cns().iter().position(|cn| cn.region == p_region))
                    .unwrap_or(0)
            })
            .collect();
    }

    fn pick_cn(&mut self, w: i64, cn_count: usize) -> usize {
        use rand::Rng;
        if let Some(pin) = self.pin_cn {
            return pin;
        }
        let home = self.home_cn[(w - 1) as usize];
        if cn_count > 1 && self.rng.gen_bool(self.remote_cn_fraction) {
            let mut other = self.rng.gen_range(0..cn_count - 1);
            if other >= home {
                other += 1;
            }
            other
        } else {
            home
        }
    }
}

impl crate::driver::Workload for TpccWorkload {
    fn setup(&mut self, cluster: &mut globaldb::Cluster) -> gdb_model::GdbResult<()> {
        loader::load(cluster, &self.scale, self.seed)?;
        self.statements = Some(txns::Statements::prepare(cluster)?);
        self.compute_home_cns(cluster);
        Ok(())
    }

    fn run_one(
        &mut self,
        cluster: &mut globaldb::Cluster,
        terminal: usize,
        at: gdb_simnet::SimTime,
    ) -> (&'static str, gdb_model::GdbResult<globaldb::TxnOutcome>) {
        use rand::Rng;
        let st = self.statements.take().expect("setup() must run first");
        let (w, dist) = match (self.pin_cn, self.local_warehouses_only) {
            (Some(cn), true) => {
                if !matches!(&self.local_cache, Some((c, _)) if *c == cn) {
                    let fresh: Vec<i64> = (1..=self.scale.warehouses)
                        .filter(|&w| self.home_cn[(w - 1) as usize] == cn)
                        .collect();
                    self.local_cache = Some((cn, fresh));
                }
                let local = &self.local_cache.as_ref().expect("just cached").1;
                if local.is_empty() {
                    (
                        (terminal as i64 % self.scale.warehouses) + 1,
                        ((terminal as i64 / self.scale.warehouses)
                            % self.scale.districts_per_warehouse)
                            + 1,
                    )
                } else {
                    let w = local[terminal % local.len()];
                    let dist =
                        ((terminal / local.len()) as i64 % self.scale.districts_per_warehouse) + 1;
                    (w, dist)
                }
            }
            _ => (
                (terminal as i64 % self.scale.warehouses) + 1,
                ((terminal as i64 / self.scale.warehouses) % self.scale.districts_per_warehouse)
                    + 1,
            ),
        };
        let kind = self.mix.pick(&mut self.rng);
        let cn = self.pick_cn(w, cluster.db.cns().len());
        let result = match kind {
            TxnKind::NewOrder => txns::new_order(
                cluster,
                &st,
                &mut self.rng,
                &self.scale,
                cn,
                at,
                w,
                dist,
                self.remote_supply_fraction,
            ),
            TxnKind::Payment => {
                self.h_seq += 1;
                txns::payment(
                    cluster,
                    &st,
                    &mut self.rng,
                    &self.scale,
                    cn,
                    at,
                    w,
                    dist,
                    self.h_seq * 10_000 + terminal as i64,
                    self.remote_payment_fraction,
                )
            }
            TxnKind::OrderStatus => {
                txns::order_status(cluster, &st, &mut self.rng, &self.scale, cn, at, w, dist)
            }
            TxnKind::Delivery => {
                txns::delivery(cluster, &st, &mut self.rng, &self.scale, cn, at, w)
            }
            TxnKind::StockLevel => {
                let stock_w = if self.scale.warehouses > 1
                    && self.rng.gen_bool(self.multi_shard_read_fraction)
                {
                    let mut o = self.rng.gen_range(1..=self.scale.warehouses - 1);
                    if o >= w {
                        o += 1;
                    }
                    o
                } else {
                    w
                };
                txns::stock_level(
                    cluster,
                    &st,
                    &mut self.rng,
                    &self.scale,
                    cn,
                    at,
                    w,
                    dist,
                    stock_w,
                )
            }
        };
        self.statements = Some(st);
        (kind.name(), result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_weights_pick_all_kinds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mix = TpccMix::standard();
        let mut counts = [0u32; 5];
        for _ in 0..10_000 {
            match mix.pick(&mut rng) {
                TxnKind::NewOrder => counts[0] += 1,
                TxnKind::Payment => counts[1] += 1,
                TxnKind::OrderStatus => counts[2] += 1,
                TxnKind::Delivery => counts[3] += 1,
                TxnKind::StockLevel => counts[4] += 1,
            }
        }
        // Roughly 45/43/4/4/4.
        assert!((4_000..5_000).contains(&counts[0]), "{counts:?}");
        assert!((3_800..4_800).contains(&counts[1]), "{counts:?}");
        for &c in &counts[2..] {
            assert!((200..700).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn read_only_mix_has_no_writes() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mix = TpccMix::read_only();
        for _ in 0..1000 {
            assert!(mix.pick(&mut rng).is_read_only());
        }
    }

    #[test]
    fn nurand_stays_in_range_and_is_skewed() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen_low = 0;
        for _ in 0..10_000 {
            let v = nurand(&mut rng, 1, 3000);
            assert!((1..=3000).contains(&v));
            if v <= 1500 {
                seen_low += 1;
            }
        }
        // NURand is non-uniform but covers both halves.
        assert!(seen_low > 2_000 && seen_low < 8_500, "{seen_low}");
    }

    #[test]
    fn last_names_match_spec_examples() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
    }
}
