//! Geo-replication tour: asynchronous log shipping, the Replica
//! Consistency Point, bounded-staleness reads, and replica failover
//! (paper §IV).
//!
//! ```text
//! cargo run --release --example geo_replication
//! ```

use globaldb::{Cluster, ClusterConfig, Datum, RoutingPolicy, SimDuration, SimTime, Timestamp};

fn main() {
    let mut cluster = Cluster::new(ClusterConfig::globaldb_three_city());
    cluster
        .ddl(
            "CREATE TABLE sensors (id INT NOT NULL, site TEXT, reading INT, \
             PRIMARY KEY (id)) DISTRIBUTE BY HASH(id)",
        )
        .unwrap();
    let table = cluster.db.catalog().table_by_name("sensors").unwrap().id;
    let rows: Vec<gdb_model::Row> = (0..1000i64)
        .map(|i| {
            gdb_model::Row(vec![
                Datum::Int(i),
                Datum::Text(format!("site-{}", i % 7)),
                Datum::Int(0),
            ])
        })
        .collect();
    cluster.bulk_load(table, rows).unwrap();
    cluster.finish_load();

    // Write a burst of updates at t=100ms.
    for i in 0..50i64 {
        cluster
            .execute_sql(
                0,
                SimTime::from_millis(100) + SimDuration::from_micros(i as u64 * 200),
                "UPDATE sensors SET reading = ? WHERE id = ?",
                &[Datum::Int(42), Datum::Int(i)],
            )
            .unwrap();
    }

    // Watch the RCP converge: right after the burst the replicas lag; the
    // RCP (min over replicas of max applied commit ts) trails reality by
    // the shipping+replay delay, then catches up.
    println!("RCP convergence after a write burst:");
    for ms in [105u64, 120, 150, 200, 400] {
        cluster.run_until(SimTime::from_millis(ms));
        let rcp = cluster.db.cn_rcp(1);
        let lag_ms = (ms as f64 * 1000.0 - rcp.as_micros() as f64) / 1000.0;
        println!("  t={ms:>4} ms   RCP={rcp:?}   lag≈{lag_ms:.1} ms");
    }

    // Strongly consistent replica read at the RCP snapshot.
    let sel = cluster
        .prepare("SELECT reading FROM sensors WHERE id = ?")
        .unwrap();
    let ((), o) = cluster
        .run_transaction(1, SimTime::from_millis(450), true, true, |txn| {
            let out = txn.execute(&sel, &[Datum::Int(7)])?;
            println!(
                "replica read at snapshot {:?}: reading = {}",
                txn.snapshot(),
                out.rows()[0].0[0]
            );
            Ok(())
        })
        .unwrap();
    println!(
        "  served by replica: {}, latency {}",
        o.used_replica, o.latency
    );

    // Bounded staleness: demand ≤ 5 ms fresh data — local replicas may be
    // too stale; the skyline then routes to the primary instead.
    cluster.db.set_routing(RoutingPolicy::ReadOnReplica {
        freshness_bound: Some(SimDuration::from_millis(5)),
    });
    let ((), o) = cluster
        .run_transaction(1, SimTime::from_millis(460), true, true, |txn| {
            txn.execute(&sel, &[Datum::Int(7)]).map(|_| ())
        })
        .unwrap();
    println!(
        "with a 5 ms freshness bound: served by replica = {} (falls back to \
         primary when replicas are too stale)",
        o.used_replica
    );
    cluster.db.set_routing(RoutingPolicy::ReadOnReplica {
        freshness_bound: None,
    });

    // Failover: kill every replica in the reader's region — reads keep
    // working from primaries/remote replicas; the skyline drops dead nodes.
    let reader_region = cluster.db.cns()[1].region;
    let dead: Vec<_> = cluster
        .db
        .shards()
        .iter()
        .flat_map(|s| s.replicas.iter())
        .filter(|r| r.region == reader_region)
        .map(|r| r.node)
        .collect();
    println!("killing {} replicas in the reader's region...", dead.len());
    for n in dead {
        cluster.db.topo_mut().set_node_down(n, true);
    }
    let ((), o) = cluster
        .run_transaction(1, SimTime::from_millis(480), true, true, |txn| {
            txn.execute(&sel, &[Datum::Int(7)]).map(|_| ())
        })
        .unwrap();
    println!(
        "after failover: query still answered (latency {}, replica={})",
        o.latency, o.used_replica
    );

    let _ = Timestamp::ZERO;
}
