//! Small statistics helpers shared by the workload drivers and benches:
//! latency histograms with percentile queries, and throughput counters.
//!
//! [`LatencyHistogram`] has two representations:
//!
//! * **exact** (the default) stores every sample and answers nearest-rank
//!   percentiles precisely — right for offline figure runs where the
//!   sample count is bounded by the run length;
//! * **bounded** ([`LatencyHistogram::bounded`]) keeps log-linear bucket
//!   counts (64 sub-buckets per power of two, ≤ ~1.6% relative error)
//!   in O(1) memory regardless of sample count — right for per-transaction
//!   hot paths that live for the whole process (cluster-wide counters,
//!   the metrics registry).

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Number of linear buckets below the first log octave (also the
/// sub-bucket count per octave). Must be a power of two.
const LINEAR: u64 = 64;
const LINEAR_BITS: u32 = 6; // log2(LINEAR)

/// Index of the log-linear bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= LINEAR_BITS
    let group = (msb - LINEAR_BITS) as usize;
    let sub = ((v >> (msb - LINEAR_BITS)) - LINEAR) as usize;
    LINEAR as usize + group * LINEAR as usize + sub
}

/// Lower bound of the value range covered by bucket `index` (the bucket's
/// deterministic representative value).
fn bucket_value(index: usize) -> u64 {
    let linear = LINEAR as usize;
    if index < linear {
        return index as u64;
    }
    let group = (index - linear) / linear;
    let sub = ((index - linear) % linear) as u64;
    (LINEAR + sub) << group
}

/// Streaming bounded quantile summary: log-linear bucket counts plus exact
/// count/sum/min/max. Memory is O(buckets touched), independent of the
/// number of samples.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundedSummary {
    counts: Vec<u64>,
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
}

impl BoundedSummary {
    pub fn record(&mut self, us: u64) {
        let idx = bucket_index(us);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min_us = us;
            self.max_us = us;
        } else {
            self.min_us = self.min_us.min(us);
            self.max_us = self.max_us.max(us);
        }
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    pub fn min_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_us
        }
    }

    pub fn max_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max_us
        }
    }

    /// Nearest-rank percentile over the bucket counts; exact for values
    /// below 64 µs, ≤ ~1.6% low-biased above (bucket lower bound), and
    /// clamped to the exact [min, max] envelope.
    pub fn percentile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(idx).clamp(self.min_us, self.max_us);
            }
        }
        self.max_us
    }

    pub fn merge(&mut self, other: &BoundedSummary) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        if self.count == 0 {
            self.min_us = other.min_us;
            self.max_us = other.max_us;
        } else {
            self.min_us = self.min_us.min(other.min_us);
            self.max_us = self.max_us.max(other.max_us);
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Repr {
    Exact { samples_us: Vec<u64>, sorted: bool },
    Bounded(BoundedSummary),
}

/// A latency recorder with percentile queries. Exact by default (stores
/// all samples); [`LatencyHistogram::bounded`] switches to the streaming
/// summary for hot paths.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    repr: Repr,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            repr: Repr::Exact {
                samples_us: Vec::new(),
                sorted: false,
            },
        }
    }
}

impl LatencyHistogram {
    /// Exact mode: every sample stored, percentiles precise.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounded mode: O(1) memory, streaming p50/p95/p99/p999 with ≤ ~1.6%
    /// relative error.
    pub fn bounded() -> Self {
        LatencyHistogram {
            repr: Repr::Bounded(BoundedSummary::default()),
        }
    }

    pub fn is_bounded(&self) -> bool {
        matches!(self.repr, Repr::Bounded(_))
    }

    pub fn record(&mut self, d: SimDuration) {
        match &mut self.repr {
            Repr::Exact { samples_us, sorted } => {
                samples_us.push(d.as_micros());
                *sorted = false;
            }
            Repr::Bounded(b) => b.record(d.as_micros()),
        }
    }

    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Exact { samples_us, .. } => samples_us.len(),
            Repr::Bounded(b) => b.count() as usize,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of all recorded samples in microseconds.
    pub fn sum_us(&self) -> u64 {
        match &self.repr {
            Repr::Exact { samples_us, .. } => {
                samples_us.iter().fold(0u64, |a, &v| a.saturating_add(v))
            }
            Repr::Bounded(b) => b.sum_us(),
        }
    }

    fn ensure_sorted(&mut self) {
        if let Repr::Exact { samples_us, sorted } = &mut self.repr {
            if !*sorted {
                samples_us.sort_unstable();
                *sorted = true;
            }
        }
    }

    /// The q-th percentile (q in 0..=100), using nearest-rank.
    pub fn percentile(&mut self, q: f64) -> SimDuration {
        if self.is_empty() {
            return SimDuration::ZERO;
        }
        self.ensure_sorted();
        match &self.repr {
            Repr::Exact { samples_us, .. } => {
                let n = samples_us.len();
                let rank = ((q / 100.0) * n as f64).ceil().max(1.0) as usize;
                SimDuration::from_micros(samples_us[rank.min(n) - 1])
            }
            Repr::Bounded(b) => SimDuration::from_micros(b.percentile_us(q)),
        }
    }

    pub fn mean(&self) -> SimDuration {
        if self.is_empty() {
            return SimDuration::ZERO;
        }
        SimDuration::from_micros(self.sum_us() / self.len() as u64)
    }

    pub fn max(&mut self) -> SimDuration {
        self.ensure_sorted();
        match &self.repr {
            Repr::Exact { samples_us, .. } => {
                SimDuration::from_micros(samples_us.last().copied().unwrap_or(0))
            }
            Repr::Bounded(b) => SimDuration::from_micros(b.max_us()),
        }
    }

    pub fn min(&mut self) -> SimDuration {
        self.ensure_sorted();
        match &self.repr {
            Repr::Exact { samples_us, .. } => {
                SimDuration::from_micros(samples_us.first().copied().unwrap_or(0))
            }
            Repr::Bounded(b) => SimDuration::from_micros(b.min_us()),
        }
    }

    /// Merge another histogram into this one. Merging a bounded histogram
    /// into an exact one promotes the receiver to bounded (the samples
    /// behind a summary are gone).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        match (&mut self.repr, &other.repr) {
            (
                Repr::Exact { samples_us, sorted },
                Repr::Exact {
                    samples_us: theirs, ..
                },
            ) => {
                samples_us.extend_from_slice(theirs);
                *sorted = false;
            }
            (
                Repr::Bounded(b),
                Repr::Exact {
                    samples_us: theirs, ..
                },
            ) => {
                for &v in theirs {
                    b.record(v);
                }
            }
            (Repr::Bounded(b), Repr::Bounded(theirs)) => b.merge(theirs),
            (Repr::Exact { samples_us, .. }, Repr::Bounded(theirs)) => {
                let mut b = BoundedSummary::default();
                for &v in samples_us.iter() {
                    b.record(v);
                }
                b.merge(theirs);
                self.repr = Repr::Bounded(b);
            }
        }
    }

    /// The bounded summary view: the live summary in bounded mode, or one
    /// computed from the stored samples in exact mode.
    pub fn to_summary(&self) -> BoundedSummary {
        match &self.repr {
            Repr::Bounded(b) => b.clone(),
            Repr::Exact { samples_us, .. } => {
                let mut b = BoundedSummary::default();
                for &v in samples_us.iter() {
                    b.record(v);
                }
                b
            }
        }
    }
}

/// A windowed throughput counter: events per virtual second.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Throughput {
    pub count: u64,
    pub elapsed: SimDuration,
}

impl Throughput {
    pub fn per_second(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.count as f64 / s
        }
    }

    /// TPC-C style transactions-per-minute.
    pub fn per_minute(&self) -> f64 {
        self.per_second() * 60.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.percentile(50.0), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert!(h.is_empty());
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut h = LatencyHistogram::new();
        for ms in 1..=100u64 {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.percentile(50.0).as_millis(), 50);
        assert_eq!(h.percentile(99.0).as_millis(), 99);
        assert_eq!(h.percentile(100.0).as_millis(), 100);
        assert_eq!(h.min().as_millis(), 1);
        assert_eq!(h.max().as_millis(), 100);
        assert_eq!(h.mean().as_micros(), 50_500);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.max().as_millis(), 3);
    }

    #[test]
    fn bounded_tracks_exact_within_bucket_error() {
        let mut exact = LatencyHistogram::new();
        let mut bounded = LatencyHistogram::bounded();
        // A spread of magnitudes: 10 µs .. ~1 s.
        let mut v = 10u64;
        for i in 0..50_000u64 {
            let us = v + (i * 7919) % (v / 2 + 1);
            exact.record(SimDuration::from_micros(us));
            bounded.record(SimDuration::from_micros(us));
            if i % 1000 == 0 {
                v = (v * 3 / 2).min(1_000_000);
            }
        }
        assert!(bounded.is_bounded());
        assert_eq!(exact.len(), bounded.len());
        for q in [50.0, 95.0, 99.0, 99.9] {
            let e = exact.percentile(q).as_micros() as f64;
            let b = bounded.percentile(q).as_micros() as f64;
            let err = (e - b).abs() / e.max(1.0);
            assert!(err < 0.02, "p{q}: exact {e} vs bounded {b} (err {err})");
        }
        assert_eq!(exact.min(), bounded.min());
        assert_eq!(exact.max(), bounded.max());
        assert_eq!(exact.mean(), bounded.mean());
    }

    #[test]
    fn bounded_memory_does_not_grow_with_samples() {
        let mut b = BoundedSummary::default();
        for i in 0..1_000_000u64 {
            b.record(i % 4096);
        }
        assert!(b.counts.len() <= bucket_index(4096) + 1);
        assert_eq!(b.count(), 1_000_000);
    }

    #[test]
    fn bucket_index_value_are_consistent() {
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 65_535, 1 << 40] {
            let idx = bucket_index(v);
            let lo = bucket_value(idx);
            assert!(lo <= v, "lower bound {lo} > {v}");
            // Relative error of the representative is bounded by 1/64.
            assert!((v - lo) as f64 <= (v as f64) / 64.0 + 1.0, "{v} -> {lo}");
        }
    }

    #[test]
    fn mixed_merges_promote_to_bounded() {
        let mut exact = LatencyHistogram::new();
        exact.record(SimDuration::from_micros(10));
        let mut b = LatencyHistogram::bounded();
        b.record(SimDuration::from_micros(20));
        exact.merge(&b);
        assert!(exact.is_bounded());
        assert_eq!(exact.len(), 2);
        assert_eq!(exact.max().as_micros(), 20);

        let mut b2 = LatencyHistogram::bounded();
        let mut e2 = LatencyHistogram::new();
        e2.record(SimDuration::from_micros(5));
        b2.merge(&e2);
        assert_eq!(b2.len(), 1);
        assert_eq!(b2.min().as_micros(), 5);
    }

    #[test]
    fn throughput_math() {
        let t = Throughput {
            count: 600,
            elapsed: SimDuration::from_secs(60),
        };
        assert!((t.per_second() - 10.0).abs() < 1e-9);
        assert!((t.per_minute() - 600.0).abs() < 1e-9);
        let z = Throughput::default();
        assert_eq!(z.per_second(), 0.0);
    }
}
