//! Hybrid Logical Clock (Kulkarni et al., OPODIS 2014).
//!
//! CockroachDB and YugabyteDB (paper §II-C) avoid specialized time hardware
//! by combining NTP-synchronized physical clocks with a Lamport-style
//! logical component. We implement HLC as a comparison baseline: it gives
//! strictly monotone, causality-respecting timestamps without commit waits,
//! but requires piggybacking timestamps on every message (which is the
//! "increased Redo log overhead" the paper contrasts against).

use gdb_model::Timestamp;
use gdb_simnet::SimTime;

/// Number of low bits reserved for the logical counter inside the packed
/// 64-bit HLC timestamp.
const LOGICAL_BITS: u32 = 16;
const LOGICAL_MASK: u64 = (1 << LOGICAL_BITS) - 1;

/// A hybrid logical clock: physical microseconds in the high 48 bits,
/// logical counter in the low 16.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hlc {
    physical_us: u64,
    logical: u16,
}

impl Hlc {
    pub fn new() -> Self {
        Hlc {
            physical_us: 0,
            logical: 0,
        }
    }

    /// Pack into the global [`Timestamp`] domain.
    pub fn timestamp(&self) -> Timestamp {
        Timestamp((self.physical_us << LOGICAL_BITS) | self.logical as u64)
    }

    fn unpack(ts: Timestamp) -> (u64, u16) {
        (ts.0 >> LOGICAL_BITS, (ts.0 & LOGICAL_MASK) as u16)
    }

    /// Local event / send: advance to `max(physical_now, current) + logical`.
    pub fn tick(&mut self, physical_now: SimTime) -> Timestamp {
        let now_us = physical_now.as_micros();
        if now_us > self.physical_us {
            self.physical_us = now_us;
            self.logical = 0;
        } else {
            self.logical = self
                .logical
                .checked_add(1)
                .expect("HLC logical counter overflow");
        }
        self.timestamp()
    }

    /// Receive: merge a remote timestamp, preserving causality.
    pub fn update(&mut self, physical_now: SimTime, remote: Timestamp) -> Timestamp {
        let now_us = physical_now.as_micros();
        let (rp, rl) = Self::unpack(remote);
        if now_us > self.physical_us && now_us > rp {
            self.physical_us = now_us;
            self.logical = 0;
        } else if rp > self.physical_us {
            self.physical_us = rp;
            self.logical = rl.checked_add(1).expect("HLC logical overflow");
        } else if rp == self.physical_us {
            self.logical = self
                .logical
                .max(rl)
                .checked_add(1)
                .expect("HLC logical overflow");
        } else {
            self.logical = self.logical.checked_add(1).expect("HLC logical overflow");
        }
        self.timestamp()
    }
}

impl Default for Hlc {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_ticks_are_strictly_monotone() {
        let mut h = Hlc::new();
        let mut prev = Timestamp::ZERO;
        // Even with a frozen physical clock, ticks advance via logical.
        let frozen = SimTime::from_micros(1000);
        for _ in 0..100 {
            let ts = h.tick(frozen);
            assert!(ts > prev);
            prev = ts;
        }
    }

    #[test]
    fn physical_advance_resets_logical() {
        let mut h = Hlc::new();
        h.tick(SimTime::from_micros(10));
        h.tick(SimTime::from_micros(10));
        let ts = h.tick(SimTime::from_micros(20));
        let (p, l) = (ts.0 >> LOGICAL_BITS, ts.0 & LOGICAL_MASK);
        assert_eq!(p, 20);
        assert_eq!(l, 0);
    }

    #[test]
    fn receive_preserves_causality() {
        let mut a = Hlc::new();
        let mut b = Hlc::new();
        // a is far ahead physically; b's physical clock lags.
        let sent = a.tick(SimTime::from_micros(5_000));
        let received = b.update(SimTime::from_micros(10), sent);
        assert!(received > sent, "receive must order after send");
        // b's subsequent local event also orders after.
        let next = b.tick(SimTime::from_micros(11));
        assert!(next > received);
    }

    #[test]
    fn concurrent_clocks_converge() {
        let mut a = Hlc::new();
        let mut b = Hlc::new();
        let t = SimTime::from_micros(100);
        let ta = a.tick(t);
        let tb = b.update(t, ta);
        let ta2 = a.update(t, tb);
        assert!(tb > ta);
        assert!(ta2 > tb);
    }
}
