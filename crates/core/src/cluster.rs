//! The GlobalDB cluster: state, background activities, and the public API.

use crate::config::{ClusterConfig, Placement, RoutingPolicy};
use crate::ror::RorService;
use crate::shardlog::ShardLog;
use crate::stats::{ClusterStats, TxnOutcome};
use crate::txn::TxnHandle;
use gdb_consistency::{CollectorElection, DdlTracker, RcpCalculator};
use gdb_model::{GdbError, GdbResult, TableId, TableSchema, Timestamp, TxnId};
use gdb_obs::{MetricsReport, Obs, SpanKind};
use gdb_replication::{ReplicaApplier, ShippingChannel};
use gdb_simclock::GClock;
use gdb_simnet::{NetNodeId, RegionId, Sim, SimDuration, SimTime, Topology};
use gdb_sqlengine::plan::BoundDdl;
use gdb_sqlengine::{prepare, ExecOutput, Prepared};
use gdb_storage::{Catalog, DataNodeStorage};
use gdb_txnmgr::{CnTm, GtmServer, TmMode, TransitionOrchestrator};
use gdb_wal::{RedoPayload, RedoRecord};

/// One computing node.
pub struct Cn {
    pub node: NetNodeId,
    pub region: RegionId,
    pub tm: CnTm,
    /// The RCP value distributed to this CN by its region's collector.
    pub rcp: Timestamp,
}

/// One replica data node of a shard.
pub struct Replica {
    pub node: NetNodeId,
    pub region: RegionId,
    pub applier: ReplicaApplier,
    pub channel: ShippingChannel,
    /// Virtual time at which the replica finishes its current replay
    /// backlog (load / freshness modelling).
    pub busy_until: SimTime,
    /// When the shipping stream finishes transmitting its current backlog
    /// — TCP serializes batches, so a saturated link queues them (FIFO)
    /// and replica freshness degrades accordingly.
    pub stream_free: SimTime,
    /// Arrival time of the previous batch (jitter on the propagation leg
    /// must not reorder a FIFO stream).
    pub last_arrival: SimTime,
    /// Incarnation counter: bumped when the replica is rebuilt (failover
    /// resync), so in-flight delivery events from the old stream are
    /// dropped instead of corrupting the new one.
    pub epoch: u64,
}

/// One shard: primary data node plus replicas.
pub struct Shard {
    pub primary: NetNodeId,
    pub region: RegionId,
    pub storage: DataNodeStorage,
    pub log: ShardLog,
    pub replicas: Vec<Replica>,
}

/// Tracks the GTM timestamp issue rate (used for GTM-mode staleness
/// estimation, paper §IV-B).
#[derive(Debug, Default, Clone, Copy)]
pub struct GtmRate {
    last_counter: u64,
    last_at: SimTime,
    pub per_sec: f64,
}

impl GtmRate {
    fn observe(&mut self, counter: u64, now: SimTime) {
        let dt = now.since(self.last_at).as_secs_f64();
        if dt > 0.0 {
            self.per_sec = (counter.saturating_sub(self.last_counter)) as f64 / dt;
        }
        self.last_counter = counter;
        self.last_at = now;
    }
}

/// The full cluster state (the "world" of the event simulation).
pub struct GlobalDb {
    pub config: ClusterConfig,
    pub topo: Topology,
    pub regions: Vec<RegionId>,
    pub gtm: GtmServer,
    pub gtm_node: NetNodeId,
    pub orchestrator: TransitionOrchestrator,
    pub cns: Vec<Cn>,
    pub shards: Vec<Shard>,
    /// Authoritative catalog (CNs are stateless and share it).
    pub catalog: Catalog,
    pub ddl: DdlTracker,
    /// Per-region RCP calculators (collector-CN state).
    pub rcp: Vec<RcpCalculator>,
    /// Per-region collector elections.
    pub collectors: Vec<CollectorElection>,
    pub gtm_rate: GtmRate,
    /// Per-table replication-mode overrides (the paper's future-work item:
    /// synchronous replicated tables co-existing with asynchronous ones,
    /// trading update latency for maximal freshness on selected tables).
    pub table_replication: std::collections::HashMap<TableId, gdb_replication::ReplicationMode>,
    pub stats: ClusterStats,
    /// Observability: trace spans (off by default) + metrics registry.
    pub obs: Obs,
    /// Last skyline pick per (CN, shard) — a change is a re-selection
    /// (counted, and spanned when tracing is on).
    pub(crate) last_skyline_pick: std::collections::HashMap<(usize, usize), crate::ror::ReadTarget>,
    /// Per-CN flag: `true` while the CN's clock-sync daemon is cut off
    /// from its regional time device (fault injection). While blocked the
    /// clock keeps drifting and its error bound grows until sync resumes.
    pub clock_sync_blocked: Vec<bool>,
    pub(crate) txn_seq: u64,
    /// Set when an online transition completes (observed by tests/benches).
    pub last_transition_completed: Option<gdb_txnmgr::TransitionDirection>,
}

impl GlobalDb {
    /// Next cluster-unique transaction id originating at `cn`.
    pub(crate) fn next_txn_id(&mut self, cn: usize) -> TxnId {
        self.txn_seq += 1;
        TxnId::compose(cn as u16, self.txn_seq)
    }

    /// Lazily synchronize a CN's clock with its regional time device
    /// (the paper syncs every 1 ms; we fast-forward to the latest
    /// boundary instead of simulating every round).
    pub(crate) fn sync_cn_clock(&mut self, cn: usize, now: SimTime) {
        let interval = self.config.gclock.sync_interval;
        if interval.is_zero() || self.clock_sync_blocked.get(cn).copied().unwrap_or(false) {
            return;
        }
        let aligned =
            SimTime::from_nanos((now.as_nanos() / interval.as_nanos()) * interval.as_nanos());
        let g: &mut GClock = &mut self.cns[cn].tm.gclock;
        if g.clock().last_sync() < aligned {
            g.sync(aligned);
        }
    }

    /// The shard index owning `key` of `table`.
    pub(crate) fn shard_of(&self, schema: &TableSchema, key: &gdb_model::RowKey) -> usize {
        schema.shard_of_pk(key, self.shards.len() as u16).0 as usize
    }

    /// Nearest shard to a CN (for reads of replicated tables).
    pub(crate) fn nearest_shard(&self, cn: usize) -> usize {
        let cn_node = self.cns[cn].node;
        (0..self.shards.len())
            .min_by_key(|&s| self.topo.nominal_rtt(cn_node, self.shards[s].primary))
            .unwrap_or(0)
    }

    /// Current RCP visible at a CN.
    pub fn cn_rcp(&self, cn: usize) -> Timestamp {
        self.cns[cn].rcp
    }

    pub fn cn_mode(&self, cn: usize) -> TmMode {
        self.cns[cn].tm.mode
    }

    // ---- Background activities (scheduled as events by Cluster) --------

    /// Seal and ship one shard's redo to its replicas. Returns the
    /// deliveries to schedule: `(replica node, epoch, deliver_at, records)`
    /// — replicas are addressed by node id + incarnation so failover never
    /// misroutes in-flight batches.
    fn flush_shard(
        &mut self,
        shard_idx: usize,
        now: SimTime,
    ) -> Vec<(NetNodeId, u64, SimTime, Vec<RedoRecord>)> {
        let codec = self.config.codec;
        let shard_region = self.shards[shard_idx].region;
        let shard = &mut self.shards[shard_idx];
        shard.log.seal_upto(now);
        let mut deliveries = Vec::new();
        let mut shipped: Vec<(NetNodeId, u64, u64, u64, SimTime)> = Vec::new();
        for replica in shard.replicas.iter_mut() {
            loop {
                // Refresh the channel's codec if the config changed.
                let _ = codec;
                let Some(wire) = replica.channel.drain(shard.log.sealed()) else {
                    break;
                };
                // Propagation (latency + jitter + injected delay) with a
                // minimal payload; transmission is modelled separately so
                // a saturated stream queues batches behind each other.
                let Some(propagation) = self.topo.one_way(shard.primary, replica.node, 1) else {
                    // Replica unreachable: rewind so we retry later.
                    replica.channel.rewind(wire.batch.first_lsn);
                    break;
                };
                let link = self
                    .topo
                    .link(shard_region, self.topo.node_region(replica.node));
                let tx = SimDuration::from_secs_f64(
                    wire.wire_bytes as f64 / link.effective_bandwidth().max(1) as f64,
                );
                let start = now.max(replica.stream_free);
                replica.stream_free = start + tx;
                let arrive = (replica.stream_free + propagation).max(replica.last_arrival);
                replica.last_arrival = arrive;
                shipped.push((
                    replica.node,
                    wire.batch.records.len() as u64,
                    wire.raw_bytes as u64,
                    wire.wire_bytes as u64,
                    arrive,
                ));
                deliveries.push((replica.node, replica.epoch, arrive, wire.batch.records));
            }
        }
        // Shipping totals are recorded here, not derived from channel
        // stats: channels are replaced on promote/rejoin and would lose
        // their counters.
        let primary = self.shards[shard_idx].primary;
        for (node, records, raw, wire, arrive) in shipped {
            let m = &mut self.obs.metrics;
            m.incr(gdb_replication::metrics::SHIP_BATCHES);
            m.count(gdb_replication::metrics::SHIP_RECORDS, records);
            m.count(gdb_replication::metrics::SHIP_RAW_BYTES, raw);
            m.count(gdb_replication::metrics::SHIP_WIRE_BYTES, wire);
            m.observe(gdb_replication::metrics::SHIP_BATCH_US, arrive.since(now));
            // The propagation probe above carried 1 byte; account the rest
            // of the batch on the link so traffic totals reflect shipping.
            self.topo
                .charge_bytes(primary, node, wire.saturating_sub(1));
            self.obs
                .tracer
                .record(SpanKind::LogShip, shard_idx as u64, now, arrive);
        }
        deliveries
    }

    fn replica_mut(
        &mut self,
        shard_idx: usize,
        node: NetNodeId,
        epoch: u64,
    ) -> Option<&mut Replica> {
        self.shards[shard_idx]
            .replicas
            .iter_mut()
            .find(|r| r.node == node && r.epoch == epoch)
    }

    /// Deliver a shipped batch at a replica: model replay time, then
    /// apply. Returns `None` if the replica incarnation is gone (failover).
    fn deliver_batch(
        &mut self,
        shard_idx: usize,
        node: NetNodeId,
        epoch: u64,
        record_count: usize,
        arrived: SimTime,
    ) -> Option<SimTime> {
        let replay = self.config.replay;
        let replica = self.replica_mut(shard_idx, node, epoch)?;
        let start = replica.busy_until.max(arrived);
        let done = start + replay.batch_delay(record_count);
        replica.busy_until = done;
        Some(done)
    }

    fn apply_batch(
        &mut self,
        shard_idx: usize,
        node: NetNodeId,
        epoch: u64,
        records: &[RedoRecord],
        at: SimTime,
    ) {
        let Some(replica) = self.replica_mut(shard_idx, node, epoch) else {
            return; // stale incarnation: the replica was rebuilt/promoted
        };
        if let Err(e) = replica.applier.apply_batch(records, at) {
            panic!("replica replay failed (shard {shard_idx}, node {node:?}): {e}");
        }
    }

    /// One synchronous RCP round for a region: collect then finish with no
    /// gathering window in between (used at load finish; the background
    /// event splits the two phases so a collector crash can land mid-round).
    pub(crate) fn rcp_round(&mut self, region_idx: usize, now: SimTime) {
        if let Some(collector_cn) = self.rcp_collect(region_idx, now) {
            let span = self
                .obs
                .tracer
                .begin(SpanKind::RcpRound, region_idx as u64, now);
            self.rcp_finish(region_idx, collector_cn, now);
            self.obs.tracer.end(span, now);
            self.obs
                .metrics
                .observe(gdb_consistency::metrics::RCP_ROUND_US, SimDuration::ZERO);
        }
    }

    /// Phase 1 of an RCP collection round for a region (paper §IV-A): the
    /// collector CN gathers max commit timestamps from the replicas at its
    /// site. Returns the global index of the collecting CN, or `None` when
    /// every CN in the region is down (round skipped).
    ///
    /// The collector election refreshes from node health first: if the
    /// current collector CN died, the next alive CN in the region takes
    /// over (a collector failover).
    pub fn rcp_collect(&mut self, region_idx: usize, _now: SimTime) -> Option<usize> {
        let region = self.regions[region_idx];
        let region_cns: Vec<usize> = (0..self.cns.len())
            .filter(|&i| self.cns[i].region == region)
            .collect();
        let alive: Vec<bool> = region_cns
            .iter()
            .map(|&cn| !self.topo.is_node_down(self.cns[cn].node))
            .collect();
        if self.collectors[region_idx].refresh(&alive).is_some() {
            self.stats.collector_failovers += 1;
        }
        let collector_slot = self.collectors[region_idx].collector()?;
        // Report every replica located in this region.
        let mut slot = 0u32;
        for shard in &self.shards {
            for replica in &shard.replicas {
                if replica.region == region {
                    self.rcp[region_idx].report(slot, replica.applier.max_commit_ts());
                }
                slot += 1;
            }
        }
        Some(region_cns[collector_slot])
    }

    /// Phase 2: the collector computes `min` over the gathered reports and
    /// distributes it to the region's CNs. If the collector crashed since
    /// phase 1, the round is abandoned — CNs keep their previous RCP, so
    /// the value every client observes stays monotone.
    pub fn rcp_finish(&mut self, region_idx: usize, collector_cn: usize, now: SimTime) {
        let region = self.regions[region_idx];
        if self.topo.is_node_down(self.cns[collector_cn].node) {
            self.stats.rcp_rounds_abandoned += 1;
            return;
        }
        let rcp = self.rcp[region_idx].compute();
        // Distribute to the region's alive CNs (monotone adoption).
        for i in 0..self.cns.len() {
            if self.cns[i].region == region && !self.topo.is_node_down(self.cns[i].node) {
                self.cns[i].rcp = self.cns[i].rcp.max(rcp);
            }
        }
        self.stats.rcp_rounds += 1;
        // Track the GTM issue rate for GTM-mode staleness estimation.
        let counter = self.gtm.current().0;
        if region_idx == 0 {
            self.gtm_rate.observe(counter, now);
        }
    }

    /// How long the collector spends gathering replica reports: the
    /// slowest nominal round trip to a replica at its site. The background
    /// RCP event schedules the finish phase this far after the collect
    /// phase, which is exactly the window a collector crash can hit.
    pub fn rcp_gather_delay(&self, region_idx: usize, collector_cn: usize) -> SimDuration {
        let region = self.regions[region_idx];
        let cn_node = self.cns[collector_cn].node;
        let mut delay = SimDuration::from_micros(50);
        for shard in &self.shards {
            for replica in &shard.replicas {
                if replica.region == region {
                    delay = delay.max(self.topo.nominal_rtt(cn_node, replica.node));
                }
            }
        }
        delay
    }

    /// Clock-health watchdog (paper §III-A / Fig. 3): if any CN reports an
    /// unhealthy clock while the cluster runs in GClock mode, fall back to
    /// centralized GTM mode online. Returns true if a transition started.
    fn clock_health_check(&mut self) -> bool {
        if self.orchestrator.in_progress() {
            return false;
        }
        let in_gclock = self.cns.iter().any(|c| c.tm.mode == TmMode::GClock);
        let unhealthy = self.cns.iter().any(|c| !c.tm.gclock.is_healthy());
        in_gclock && unhealthy
    }

    /// Send a heartbeat transaction to every shard so replica max-commit
    /// timestamps advance even when idle (paper §IV-A).
    fn heartbeat(&mut self, now: SimTime) {
        // CN 0 (or the first alive CN) drives heartbeats.
        let Some(cn_idx) = (0..self.cns.len()).find(|&i| !self.topo.is_node_down(self.cns[i].node))
        else {
            return;
        };
        self.sync_cn_clock(cn_idx, now);
        // Modes that stamp through the GTM can't heartbeat while it is
        // down (fault injection); GClock heartbeats are unaffected.
        let gtm_down = self.topo.is_node_down(self.gtm_node);
        let ts = match self.cns[cn_idx].tm.mode {
            TmMode::GClock => {
                let ts = self.cns[cn_idx].tm.gclock.assign_timestamp(now);
                self.gtm.observe_commit(ts);
                ts
            }
            TmMode::Gtm => {
                if gtm_down {
                    return;
                }
                match self.gtm.commit_gtm() {
                    Ok((ts, _)) => ts,
                    Err(_) => return,
                }
            }
            TmMode::Dual => {
                if gtm_down {
                    return;
                }
                let g = self.cns[cn_idx].tm.gclock.assign_timestamp(now);
                self.gtm.commit_dual(g)
            }
        };
        let txn = self.next_txn_id(cn_idx);
        for shard in &mut self.shards {
            shard
                .log
                .append(now, txn, RedoPayload::Heartbeat { commit_ts: ts });
        }
        self.stats.heartbeats_sent += 1;
    }

    /// Rebuild the per-region RCP calculators after replica membership
    /// changes (promotion / permanent removal). CN-visible RCP values stay
    /// monotone because CNs only ever adopt larger values.
    pub(crate) fn rebuild_rcp_groups(&mut self) {
        for (region_idx, &region) in self.regions.iter().enumerate() {
            let mut expected = Vec::new();
            let mut slot = 0u32;
            for shard in &self.shards {
                for replica in &shard.replicas {
                    if replica.region == region {
                        expected.push(slot);
                    }
                    slot += 1;
                }
            }
            self.rcp[region_idx] = gdb_consistency::RcpCalculator::new(expected);
        }
    }

    /// Vacuum primaries up to the cluster-wide minimum RCP (safe horizon:
    /// every replica and every client snapshot is at or above it).
    fn vacuum(&mut self) -> usize {
        let horizon = self
            .rcp
            .iter()
            .map(|r| r.current())
            .min()
            .unwrap_or(Timestamp::ZERO);
        if horizon == Timestamp::ZERO {
            return 0;
        }
        let h = horizon.prev();
        self.shards
            .iter_mut()
            .map(|s| {
                let mut removed = s.storage.vacuum(h);
                // Replicas vacuum at the same horizon: every client
                // snapshot (RCP-gated) is at or above it.
                for replica in &mut s.replicas {
                    removed += replica.applier.storage.vacuum(h);
                }
                removed
            })
            .sum()
    }

    // ---- Fault-injection API (the chaos subsystem's entry points) ------
    //
    // Every method below takes `&mut GlobalDb` (not `Cluster`) so fault
    // plans can fire from *inside* scheduled simulation events, exactly
    // like the background activities they disturb.

    /// Crash an arbitrary node: messages to/from it are dropped.
    pub fn crash_node(&mut self, node: NetNodeId) {
        self.topo.set_node_down(node, true);
    }

    /// Bring a crashed node back (topology level only — see the typed
    /// restart methods for state resynchronization).
    pub fn restore_node(&mut self, node: NetNodeId) {
        self.topo.set_node_down(node, false);
    }

    /// Crash a shard's primary data node. Replicas keep serving reads at
    /// the RCP; writes to the shard fail (retryably) until the primary
    /// restarts or a replica is promoted. Returns the crashed node.
    pub fn crash_primary(&mut self, shard_idx: usize) -> NetNodeId {
        let node = self.shards[shard_idx].primary;
        self.crash_node(node);
        node
    }

    /// Restart a crashed primary in place: its WAL survived, so replicas
    /// simply resume draining the redo stream where they left off (the
    /// shipping loop retries automatically once the node is reachable).
    pub fn restart_primary(&mut self, shard_idx: usize) {
        let node = self.shards[shard_idx].primary;
        self.restore_node(node);
    }

    /// Crash one replica of a shard. In-flight redo batches die with the
    /// connection (the incarnation bump drops them); the applier's durable
    /// state — applied rows, pending-transaction buffers rebuilt from its
    /// WAL — survives for [`GlobalDb::restart_replica`].
    pub fn crash_replica(&mut self, shard_idx: usize, replica_idx: usize) -> Option<NetNodeId> {
        let replica = self.shards[shard_idx].replicas.get_mut(replica_idx)?;
        replica.epoch += 1; // orphan in-flight deliver events
        let node = replica.node;
        self.crash_node(node);
        Some(node)
    }

    /// Restart a crashed replica with WAL catch-up: the shipping channel
    /// rewinds to the applier's durable resume point and the lost tail is
    /// re-shipped (duplicates replay idempotently).
    pub fn restart_replica(&mut self, shard_idx: usize, replica_idx: usize, now: SimTime) {
        let Some(replica) = self.shards[shard_idx].replicas.get_mut(replica_idx) else {
            return;
        };
        let resume = replica.applier.resume_from();
        replica.channel.rewind(resume);
        replica.busy_until = now;
        replica.stream_free = now;
        replica.last_arrival = now;
        let node = replica.node;
        self.restore_node(node);
    }

    /// Crash the GTM server node. GClock-mode commits are unaffected; GTM
    /// and DUAL mode commits (and GTM-routed begins) fail retryably until
    /// [`GlobalDb::restart_gtm`].
    pub fn crash_gtm(&mut self) {
        self.crash_node(self.gtm_node);
    }

    /// GTM failover: a standby takes over at the same address. The
    /// timestamp counter never regresses — it was replicated via
    /// `observe_commit` and commit persistence, so the new incumbent
    /// resumes from the durable maximum.
    pub fn restart_gtm(&mut self) {
        self.restore_node(self.gtm_node);
    }

    /// Crash a computing node. Transactions routed to it fail retryably;
    /// if it was its region's RCP collector, the next alive CN in the
    /// region takes over at the next collection round.
    pub fn crash_cn(&mut self, cn: usize) {
        let node = self.cns[cn].node;
        self.crash_node(node);
    }

    /// Restart a crashed CN: it rejoins with a freshly synced clock and
    /// its old (monotone) RCP value, adopting newer values at the next
    /// distribution round.
    pub fn restart_cn(&mut self, cn: usize, now: SimTime) {
        let node = self.cns[cn].node;
        self.restore_node(node);
        self.sync_cn_clock(cn, now);
    }

    /// Cut a CN's clock-sync daemon off from its regional time device.
    /// The clock keeps running on its crystal: drift accumulates and the
    /// error bound grows without bound, stretching GClock commit waits,
    /// until [`GlobalDb::resume_clock_sync`].
    pub fn block_clock_sync(&mut self, cn: usize) {
        if cn < self.clock_sync_blocked.len() {
            self.clock_sync_blocked[cn] = true;
        }
    }

    /// Reconnect a CN's clock-sync daemon and sync immediately.
    pub fn resume_clock_sync(&mut self, cn: usize, now: SimTime) {
        if cn < self.clock_sync_blocked.len() {
            self.clock_sync_blocked[cn] = false;
        }
        self.sync_cn_clock(cn, now);
    }

    /// Partition two regions (by index into [`GlobalDb::regions`]):
    /// messages between them are dropped until healed.
    pub fn partition_regions(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.regions[a], self.regions[b]);
        self.topo.partition(ra, rb);
    }

    /// Heal a region partition.
    pub fn heal_regions(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.regions[a], self.regions[b]);
        self.topo.heal(ra, rb);
    }

    /// Inject a `tc`-style extra one-way delay on every inter-host
    /// message (transient jitter spike); `ZERO` clears it.
    pub fn set_injected_delay(&mut self, delay: SimDuration) {
        self.topo.set_injected_delay(delay);
    }

    /// Promote one of a shard's replicas to primary at virtual time `now`
    /// (see [`Cluster::promote_replica`] for the durability semantics).
    pub fn promote_replica_at(
        &mut self,
        shard_idx: usize,
        replica_idx: usize,
        now: SimTime,
    ) -> GdbResult<()> {
        if replica_idx >= self.shards[shard_idx].replicas.len() {
            return Err(GdbError::Internal(format!(
                "shard {shard_idx} has no replica {replica_idx}"
            )));
        }

        if self.config.replication.is_sync() {
            // Acknowledged commits are durable on the quorum: deliver the
            // whole outstanding stream to the chosen replica first. Seal
            // everything, including records staged with a later apply
            // instant — appending happens when the commit's WAL write is
            // issued, so staged records are already on the durable log the
            // quorum acknowledged.
            self.shards[shard_idx].log.seal_all(now);
            loop {
                let (node, epoch, batch) = {
                    let shard = &mut self.shards[shard_idx];
                    let replica = &mut shard.replicas[replica_idx];
                    match replica.channel.drain(shard.log.sealed()) {
                        Some(wire) => (replica.node, replica.epoch, wire.batch.records),
                        None => break,
                    }
                };
                self.apply_batch(shard_idx, node, epoch, &batch, now);
            }
        }

        let codec = self.config.codec;
        let shard = &mut self.shards[shard_idx];
        let promoted = shard.replicas.remove(replica_idx);
        let old_primary = shard.primary;
        shard.primary = promoted.node;
        shard.region = promoted.region;
        // Pending (uncommitted) transactions die with their coordinators.
        shard.storage = promoted.applier.into_storage();
        shard.log = ShardLog::new();
        // Remaining replicas full-resync from the new primary: fresh
        // applier over a snapshot of the promoted state, fresh channel on
        // the new (empty) redo stream, new incarnation.
        for replica in &mut shard.replicas {
            replica.applier = ReplicaApplier::new(shard.storage.clone());
            replica.channel = ShippingChannel::new(codec);
            replica.busy_until = now;
            replica.stream_free = now;
            replica.last_arrival = now;
            replica.epoch += 1;
        }
        let _ = old_primary;

        // Replica membership changed: rebuild the per-region RCP groups.
        self.rebuild_rcp_groups();
        Ok(())
    }

    /// Re-admit a recovered node as a replica of `shard` at `now` (see
    /// [`Cluster::rejoin_as_replica`]).
    pub fn rejoin_as_replica_at(
        &mut self,
        shard_idx: usize,
        node: NetNodeId,
        now: SimTime,
    ) -> GdbResult<()> {
        self.topo.set_node_down(node, false);
        let region = self.topo.node_region(node);
        let codec = self.config.codec;
        // Seal the *entire* staged log so the stream cut aligns with the
        // snapshot: `storage` already holds versions whose records are
        // staged with future apply instants (commit processing installs
        // both synchronously), and re-shipping those after the rejoin
        // would replay writes the snapshot contains — out of timestamp
        // order. The channel resumes at the post-cut head.
        self.shards[shard_idx].log.seal_all(now);
        let head = self.shards[shard_idx].log.sealed_head();
        let shard = &mut self.shards[shard_idx];
        // The snapshot's high-water mark: nothing above the primary's
        // installed state is claimed.
        let max_ts = shard
            .replicas
            .iter()
            .map(|r| r.applier.max_commit_ts())
            .max()
            .unwrap_or(Timestamp::ZERO);
        let mut channel = ShippingChannel::new(codec);
        channel.rewind(head);
        shard.replicas.push(Replica {
            node,
            region,
            applier: ReplicaApplier::resumed(shard.storage.clone(), head, max_ts),
            channel,
            busy_until: now,
            stream_free: now,
            last_arrival: now,
            epoch: 0,
        });
        self.rebuild_rcp_groups();
        Ok(())
    }

    /// Run a closed transaction at virtual time `at` directly against the
    /// world state — the entry point for logic running *inside* a
    /// scheduled event (fault-plan probes), where the [`Cluster`] wrapper
    /// (which would re-enter the scheduler) is not available.
    pub fn run_transaction_at<R>(
        &mut self,
        cn: usize,
        at: SimTime,
        read_only: bool,
        single_shard: bool,
        f: impl FnOnce(&mut TxnHandle) -> GdbResult<R>,
    ) -> GdbResult<(R, TxnOutcome)> {
        let mut handle = TxnHandle::begin(self, cn, at, read_only, single_shard)?;
        match f(&mut handle) {
            Ok(value) => match handle.commit() {
                Ok(outcome) => {
                    self.stats.record_txn(&outcome);
                    self.obs
                        .metrics
                        .observe(gdb_txnmgr::metrics::LATENCY_US, outcome.latency);
                    Ok((value, outcome))
                }
                Err(e) => {
                    // Commit-time failure: the handle already rolled back.
                    self.stats.aborted += 1;
                    Err(e)
                }
            },
            Err(e) => {
                let outcome = handle.abort();
                self.stats.record_txn(&outcome);
                Err(e)
            }
        }
    }

    /// Mirror externally maintained totals (cluster stats, topology
    /// traffic) into the registry, then freeze it. The report is a pure
    /// function of the run: identical seeds produce identical reports.
    pub fn metrics_snapshot(&mut self) -> MetricsReport {
        self.sync_derived_metrics();
        self.obs.metrics.snapshot()
    }

    fn sync_derived_metrics(&mut self) {
        let m = &mut self.obs.metrics;
        m.set_counter(gdb_txnmgr::metrics::COMMITTED, self.stats.committed);
        m.set_counter(gdb_txnmgr::metrics::ABORTED, self.stats.aborted);
        m.set_counter(gdb_txnmgr::metrics::LOCK_WAITS, self.stats.lock_waits);
        m.set_counter(
            gdb_txnmgr::metrics::COMMIT_WAIT_TOTAL_US,
            self.stats.commit_wait_total.as_micros(),
        );
        m.set_counter(
            gdb_router::metrics::READS_ON_REPLICA,
            self.stats.reads_on_replica,
        );
        m.set_counter(
            gdb_router::metrics::READS_ON_PRIMARY,
            self.stats.reads_on_primary,
        );
        m.set_counter(
            gdb_router::metrics::REPLICA_BLOCKED_FALLBACKS,
            self.stats.replica_blocked_fallbacks,
        );
        m.set_counter(gdb_consistency::metrics::RCP_ROUNDS, self.stats.rcp_rounds);
        m.set_counter(
            gdb_consistency::metrics::RCP_ROUNDS_ABANDONED,
            self.stats.rcp_rounds_abandoned,
        );
        m.set_counter(
            gdb_consistency::metrics::COLLECTOR_FAILOVERS,
            self.stats.collector_failovers,
        );
        m.set_counter(
            gdb_consistency::metrics::HEARTBEATS_SENT,
            self.stats.heartbeats_sent,
        );
        m.set_counter(
            gdb_consistency::metrics::VERSIONS_VACUUMED,
            self.stats.versions_vacuumed,
        );
        let total = self.topo.total_stats();
        m.set_counter(gdb_simnet::metrics::MSGS, total.messages);
        m.set_counter(gdb_simnet::metrics::BYTES, total.bytes);
        let cross = self.topo.cross_region_totals();
        m.set_counter(gdb_simnet::metrics::CROSS_REGION_MSGS, cross.messages);
        m.set_counter(gdb_simnet::metrics::CROSS_REGION_BYTES, cross.bytes);
    }
}

/// The cluster plus its event engine — the object users interact with.
pub struct Cluster {
    pub db: GlobalDb,
    pub sim: Sim<GlobalDb>,
}

impl Cluster {
    /// Build a cluster and start its background activities.
    pub fn new(config: ClusterConfig) -> Self {
        let (topo, placement) = config.build_topology();
        let Placement {
            regions,
            cn_nodes,
            gtm_node,
            shards: shard_placement,
        } = placement;

        let mut cns = Vec::new();
        for (i, (node, region)) in cn_nodes.iter().enumerate() {
            let mut gclock = GClock::new(
                config.seed.wrapping_add(i as u64 * 7919),
                // Deterministic per-CN drift within ±(bound/2).
                ((i as f64 * 37.0) % config.gclock.max_drift_ppm)
                    - config.gclock.max_drift_ppm / 2.0,
                config.gclock,
            );
            gclock.sync(SimTime::ZERO);
            cns.push(Cn {
                node: *node,
                region: *region,
                tm: CnTm::new(config.tm_mode, gclock),
                rcp: Timestamp::ZERO,
            });
        }

        let shards: Vec<Shard> = shard_placement
            .into_iter()
            .map(|sp| Shard {
                primary: sp.primary,
                region: sp.primary_region,
                storage: DataNodeStorage::new(),
                log: ShardLog::new(),
                replicas: sp
                    .replicas
                    .into_iter()
                    .map(|(node, region)| Replica {
                        node,
                        region,
                        applier: ReplicaApplier::new(DataNodeStorage::new()),
                        channel: ShippingChannel::new(config.codec),
                        busy_until: SimTime::ZERO,
                        stream_free: SimTime::ZERO,
                        last_arrival: SimTime::ZERO,
                        epoch: 0,
                    })
                    .collect(),
            })
            .collect();

        // Per-region RCP: expected slots are the replicas in that region.
        let mut rcp = Vec::new();
        let mut collectors = Vec::new();
        for &region in &regions {
            let mut expected = Vec::new();
            let mut slot = 0u32;
            for shard in &shards {
                for replica in &shard.replicas {
                    if replica.region == region {
                        expected.push(slot);
                    }
                    slot += 1;
                }
            }
            rcp.push(RcpCalculator::new(expected));
            let cn_count_in_region = cns.iter().filter(|c| c.region == region).count();
            collectors.push(CollectorElection::new(cn_count_in_region.max(1)));
        }

        let cn_count = cns.len();
        let mut db = GlobalDb {
            config,
            topo,
            regions,
            gtm: GtmServer::new(),
            gtm_node,
            orchestrator: TransitionOrchestrator::new(cn_count),
            cns,
            shards,
            catalog: Catalog::new(),
            ddl: DdlTracker::new(),
            rcp,
            collectors,
            gtm_rate: GtmRate::default(),
            table_replication: std::collections::HashMap::new(),
            stats: ClusterStats::default(),
            obs: Obs::new(),
            last_skyline_pick: std::collections::HashMap::new(),
            clock_sync_blocked: vec![false; cn_count],
            txn_seq: 0,
            last_transition_completed: None,
        };
        db.gtm.set_mode(db.config.tm_mode);

        let mut sim = Sim::new();
        // Schedule the recurring background activities.
        for s in 0..db.shards.len() {
            let interval = db.config.flush_interval;
            sim.schedule_at(SimTime::ZERO + interval, move |w: &mut GlobalDb, sim| {
                flush_event(w, sim, s);
            });
        }
        for r in 0..db.regions.len() {
            let interval = db.config.rcp_interval;
            sim.schedule_at(SimTime::ZERO + interval, move |w: &mut GlobalDb, sim| {
                rcp_event(w, sim, r);
            });
        }
        let hb = db.config.heartbeat_interval;
        sim.schedule_at(SimTime::ZERO + hb, |w: &mut GlobalDb, sim| {
            heartbeat_event(w, sim);
        });
        if let Some(interval) = db.config.vacuum_interval {
            sim.schedule_at(SimTime::ZERO + interval, |w: &mut GlobalDb, sim| {
                vacuum_event(w, sim);
            });
        }

        Cluster { db, sim }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Advance virtual time, processing background activity.
    pub fn run_until(&mut self, t: SimTime) {
        self.sim.run_until(&mut self.db, t);
    }

    /// Prepare a SQL statement against the cluster catalog.
    pub fn prepare(&self, sql: &str) -> GdbResult<Prepared> {
        prepare(sql, &self.db.catalog)
    }

    /// Execute a DDL statement cluster-wide at the current virtual time.
    /// DDL replicates to every shard's redo stream and is tracked for the
    /// ROR visibility conditions (§IV-A).
    pub fn ddl(&mut self, sql: &str) -> GdbResult<()> {
        let now = self.sim.now();
        let prepared = prepare(sql, &self.db.catalog)?;
        let bound = match prepared.bound {
            gdb_sqlengine::BoundStatement::Ddl(d) => d,
            _ => return Err(GdbError::Plan("not a DDL statement".into())),
        };
        // DDL commits through the transaction manager like any write.
        let cn_idx = 0;
        self.db.sync_cn_clock(cn_idx, now);
        let ts = match self.db.cns[cn_idx].tm.mode {
            TmMode::GClock => {
                let ts = self.db.cns[cn_idx].tm.gclock.assign_timestamp(now);
                self.db.gtm.observe_commit(ts);
                ts
            }
            TmMode::Gtm => self.db.gtm.commit_gtm()?.0,
            TmMode::Dual => {
                let g = self.db.cns[cn_idx].tm.gclock.assign_timestamp(now);
                self.db.gtm.commit_dual(g)
            }
        };
        let txn = self.db.next_txn_id(cn_idx);

        let (kind, table_for_ddl) = match &bound {
            BoundDdl::CreateTable {
                name,
                columns,
                primary_key,
                distribution_key,
                distribution,
            } => {
                let id = self.db.catalog.allocate_table_id();
                let schema = TableSchema {
                    id,
                    name: name.clone(),
                    columns: columns.clone(),
                    primary_key: primary_key.clone(),
                    distribution_key: distribution_key.clone(),
                    distribution: distribution.clone(),
                };
                self.db.catalog.create_table(schema.clone())?;
                for shard in &mut self.db.shards {
                    shard.storage.create_table(schema.clone())?;
                }
                (gdb_wal::DdlKind::CreateTable(schema), id)
            }
            BoundDdl::DropTable(id) => {
                self.db.catalog.drop_table(*id)?;
                for shard in &mut self.db.shards {
                    shard.storage.drop_table(*id)?;
                }
                (gdb_wal::DdlKind::DropTable(*id), *id)
            }
            BoundDdl::CreateIndex {
                table,
                name,
                columns,
            } => {
                self.db
                    .catalog
                    .create_index(*table, name.clone(), columns.clone())?;
                for shard in &mut self.db.shards {
                    shard
                        .storage
                        .create_index(*table, name.clone(), columns.clone())?;
                }
                (
                    gdb_wal::DdlKind::CreateIndex {
                        table: *table,
                        index_name: name.clone(),
                        columns: columns.clone(),
                    },
                    *table,
                )
            }
            BoundDdl::DropIndex { name, table } => {
                self.db.catalog.drop_index(name)?;
                for shard in &mut self.db.shards {
                    shard.storage.drop_index(name)?;
                }
                (
                    gdb_wal::DdlKind::DropIndex {
                        table: *table,
                        index_name: name.clone(),
                    },
                    *table,
                )
            }
        };
        for shard in &mut self.db.shards {
            shard.log.append(
                now,
                txn,
                RedoPayload::Ddl {
                    commit_ts: ts,
                    kind: kind.clone(),
                },
            );
        }
        self.db.ddl.record(table_for_ddl, ts);
        self.db.cns[cn_idx].tm.finish_commit(ts);
        Ok(())
    }

    /// Bulk-load rows directly into primaries *and* replicas at timestamp
    /// 1 (benchmark setup: start from a fully synchronized state without
    /// paying per-row transaction costs).
    pub fn bulk_load(&mut self, table: TableId, rows: Vec<gdb_model::Row>) -> GdbResult<usize> {
        // Replicas learn about tables through DDL replay; make sure any
        // pending DDL has reached them before installing rows directly.
        self.sync_replicas_now();
        let schema = self.db.catalog.table(table)?.clone();
        let shard_count = self.db.shards.len() as u16;
        let ts = Timestamp(1);
        let mut n = 0;
        for mut row in rows {
            schema.coerce_row(&mut row);
            schema.check_row(&row)?;
            let key = schema.primary_key_of(&row);
            let targets: Vec<usize> = match schema.distribution {
                gdb_model::DistributionKind::Replicated => (0..self.db.shards.len()).collect(),
                _ => vec![schema.shard_of_pk(&key, shard_count).0 as usize],
            };
            for s in targets {
                let shard = &mut self.db.shards[s];
                shard
                    .storage
                    .apply_put(table, key.clone(), row.clone(), ts, SimTime::ZERO)?;
                for replica in &mut shard.replicas {
                    replica.applier.storage.apply_put(
                        table,
                        key.clone(),
                        row.clone(),
                        ts,
                        SimTime::ZERO,
                    )?;
                }
            }
            n += 1;
        }
        Ok(n)
    }

    /// Ship and apply everything sealed so far without network delay
    /// (setup helper).
    fn sync_replicas_now(&mut self) {
        let now = self.sim.now();
        for s in 0..self.db.shards.len() {
            self.db.shards[s].log.seal_upto(now);
            let deliveries = self.db.flush_shard(s, now);
            for (node, epoch, _at, records) in deliveries {
                self.db.apply_batch(s, node, epoch, &records, now);
            }
        }
    }

    /// After bulk loading, fast-forward the replication cursors and RCP so
    /// replicas are "caught up" with the loaded state.
    pub fn finish_load(&mut self) {
        let now = self.sim.now();
        self.db.heartbeat(now);
        self.sync_replicas_now();
        for r in 0..self.db.regions.len() {
            self.db.rcp_round(r, now);
        }
    }

    /// Run a closed transaction at virtual time `at` from `cn`.
    ///
    /// `read_only` marks the transaction ROR-eligible (it will read at the
    /// RCP snapshot from replicas when the routing policy allows);
    /// `single_shard` engages the paper's single-shard begin bypass in
    /// GClock mode.
    pub fn run_transaction<R>(
        &mut self,
        cn: usize,
        at: SimTime,
        read_only: bool,
        single_shard: bool,
        f: impl FnOnce(&mut TxnHandle) -> GdbResult<R>,
    ) -> GdbResult<(R, TxnOutcome)> {
        let at = at.max(self.sim.now());
        self.sim.run_until(&mut self.db, at);
        self.db
            .run_transaction_at(cn, at, read_only, single_shard, f)
    }

    /// Convenience: run one SQL statement as its own transaction.
    pub fn execute_sql(
        &mut self,
        cn: usize,
        at: SimTime,
        sql: &str,
        params: &[gdb_model::Datum],
    ) -> GdbResult<(ExecOutput, TxnOutcome)> {
        let prepared = self.prepare(sql)?;
        self.execute_prepared(cn, at, &prepared, params)
    }

    /// Convenience: run one prepared statement as its own transaction.
    pub fn execute_prepared(
        &mut self,
        cn: usize,
        at: SimTime,
        prepared: &Prepared,
        params: &[gdb_model::Datum],
    ) -> GdbResult<(ExecOutput, TxnOutcome)> {
        if matches!(prepared.bound, gdb_sqlengine::BoundStatement::Ddl(_)) {
            self.run_until(at);
            self.ddl(&prepared.sql)?;
            return Ok((
                ExecOutput::Count(0),
                TxnOutcome {
                    commit_ts: None,
                    snapshot: Timestamp::ZERO,
                    completed_at: self.sim.now(),
                    latency: SimDuration::ZERO,
                    shards_written: vec![],
                    used_replica: false,
                    aborted: false,
                },
            ));
        }
        let read_only = prepared.bound.is_read_only();
        self.run_transaction(cn, at, read_only, false, |txn| {
            txn.execute(prepared, params)
        })
    }

    /// Kick off an online TM-mode transition (Figs. 2–3). The cluster
    /// stays fully available; watch
    /// [`GlobalDb::last_transition_completed`] for completion.
    pub fn start_transition(&mut self, direction: gdb_txnmgr::TransitionDirection) {
        crate::transition::start_transition(&mut self.db, &mut self.sim, direction);
    }

    /// Run a vacuum pass at the current virtual time.
    pub fn vacuum(&mut self) -> usize {
        self.db.vacuum()
    }

    /// Override the replication mode of one table (paper future work:
    /// "synchronous replicated tables that co-exist with asynchronous
    /// tables"). Commits touching the table pay the synchronous quorum
    /// wait; other tables keep the cluster-wide default.
    pub fn set_table_replication(
        &mut self,
        table_name: &str,
        mode: gdb_replication::ReplicationMode,
    ) -> GdbResult<()> {
        let id = self.db.catalog.table_by_name(table_name)?.id;
        self.db.table_replication.insert(id, mode);
        Ok(())
    }

    /// Crash a shard's primary data node (paper §IV: replicas keep serving
    /// read-only queries until the primary recovers or a replica is
    /// promoted). Writes to the shard fail until promotion.
    ///
    /// Thin shim over the fault-injection API ([`GlobalDb::crash_primary`]).
    pub fn fail_primary(&mut self, shard_idx: usize) {
        self.db.crash_primary(shard_idx);
    }

    /// Promote one of a shard's replicas to primary (paper §IV).
    ///
    /// Durability follows the replication mode exactly:
    /// * under synchronous quorum replication every acknowledged commit
    ///   was already durable on the replicas, so the outstanding redo is
    ///   force-delivered to the chosen replica before the switch — no
    ///   acknowledged commit is lost;
    /// * under asynchronous replication the replica only has what reached
    ///   it — the unreplicated tail of acknowledged commits is lost, the
    ///   trade-off the paper accepts for WAN performance.
    ///
    /// The remaining replicas full-resync from the new primary and the
    /// shard starts a fresh redo stream.
    pub fn promote_replica(&mut self, shard_idx: usize, replica_idx: usize) -> GdbResult<()> {
        let now = self.sim.now();
        self.db.promote_replica_at(shard_idx, replica_idx, now)
    }

    /// Re-admit a recovered node as a replica of `shard` (paper §IV: a
    /// failed primary "recovers" — here it returns in the replica role).
    /// The node full-resyncs from the current primary snapshot and then
    /// follows the redo stream from the current sealed head.
    pub fn rejoin_as_replica(&mut self, shard_idx: usize, node: NetNodeId) -> GdbResult<()> {
        let now = self.sim.now();
        self.db.rejoin_as_replica_at(shard_idx, node, now)
    }

    /// Access the ROR service view (for diagnostics / tests).
    pub fn ror_service(&mut self) -> RorService<'_> {
        RorService { db: &mut self.db }
    }
}

// ---- Recurring event functions ------------------------------------------

fn flush_event(w: &mut GlobalDb, sim: &mut Sim<GlobalDb>, shard: usize) {
    let now = sim.now();
    let deliveries = w.flush_shard(shard, now);
    for (node, epoch, deliver_at, records) in deliveries {
        sim.schedule_at(deliver_at, move |w: &mut GlobalDb, sim| {
            let Some(done) = w.deliver_batch(shard, node, epoch, records.len(), sim.now()) else {
                return;
            };
            sim.schedule_at(done, move |w: &mut GlobalDb, sim| {
                w.apply_batch(shard, node, epoch, &records, sim.now());
            });
        });
    }
    let interval = w.config.flush_interval;
    sim.schedule_after(interval, move |w: &mut GlobalDb, sim| {
        flush_event(w, sim, shard);
    });
}

fn rcp_event(w: &mut GlobalDb, sim: &mut Sim<GlobalDb>, region: usize) {
    if w.config.rcp_two_phase {
        // Two-phase round: gather replica reports now, compute +
        // distribute after the gathering round trips. The gap is a real
        // vulnerability window — a collector crash in between abandons
        // the round. The round's span (and latency) covers collect
        // through finish; the span id rides in the finish closure.
        if let Some(collector_cn) = w.rcp_collect(region, sim.now()) {
            let start = sim.now();
            let span = w.obs.tracer.begin(SpanKind::RcpRound, region as u64, start);
            let gather = w.rcp_gather_delay(region, collector_cn);
            sim.schedule_after(gather, move |w: &mut GlobalDb, sim| {
                let now = sim.now();
                w.rcp_finish(region, collector_cn, now);
                w.obs.tracer.end(span, now);
                w.obs
                    .metrics
                    .observe(gdb_consistency::metrics::RCP_ROUND_US, now.since(start));
            });
        }
    } else {
        w.rcp_round(region, sim.now());
    }
    let interval = w.config.rcp_interval;
    sim.schedule_after(interval, move |w: &mut GlobalDb, sim| {
        rcp_event(w, sim, region);
    });
}

fn heartbeat_event(w: &mut GlobalDb, sim: &mut Sim<GlobalDb>) {
    w.heartbeat(sim.now());
    // The heartbeat doubles as the clock-health watchdog: a failed clock
    // triggers the online fallback to GTM mode (Fig. 3).
    if w.clock_health_check() {
        crate::transition::start_transition(w, sim, gdb_txnmgr::TransitionDirection::ToGtm);
    }
    let interval = w.config.heartbeat_interval;
    sim.schedule_after(interval, move |w: &mut GlobalDb, sim| {
        heartbeat_event(w, sim);
    });
}

fn vacuum_event(w: &mut GlobalDb, sim: &mut Sim<GlobalDb>) {
    let removed = w.vacuum();
    w.stats.versions_vacuumed += removed as u64;
    let Some(interval) = w.config.vacuum_interval else {
        return;
    };
    sim.schedule_after(interval, move |w: &mut GlobalDb, sim| {
        vacuum_event(w, sim);
    });
}

// The RoutingPolicy is re-checked per query; nothing cluster-global
// changes when it flips, so tests can toggle it live.
impl GlobalDb {
    pub fn set_routing(&mut self, routing: RoutingPolicy) {
        self.config.routing = routing;
    }
}
