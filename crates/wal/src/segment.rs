//! The per-primary redo append buffer and shipping batches.
//!
//! A primary appends [`RedoRecord`]s to its [`RedoBuffer`]; the replication
//! sender drains pending records into [`LogBatch`]es (the unit shipped over
//! the network). The buffer retains all records so a newly attached or
//! recovering replica can be caught up from any LSN.

use crate::record::{encode_record, Lsn, RedoPayload, RedoRecord};
use gdb_model::TxnId;

/// A contiguous run of redo records drained for shipping.
#[derive(Debug, Clone, PartialEq)]
pub struct LogBatch {
    /// LSN of the first record in the batch.
    pub first_lsn: Lsn,
    /// The records, in LSN order.
    pub records: Vec<RedoRecord>,
}

impl LogBatch {
    /// Encode the whole batch to wire bytes (framed records, CRC each).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.records.len() * 48);
        for r in &self.records {
            encode_record(&mut out, r);
        }
        out
    }

    pub fn last_lsn(&self) -> Lsn {
        self.records.last().map(|r| r.lsn).unwrap_or(self.first_lsn)
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Append buffer for one primary data node's redo stream.
#[derive(Debug, Default)]
pub struct RedoBuffer {
    records: Vec<RedoRecord>,
    next_lsn: u64,
}

impl RedoBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a payload, assigning the next LSN. Returns the record's LSN.
    pub fn append(&mut self, txn: TxnId, payload: RedoPayload) -> Lsn {
        let lsn = Lsn(self.next_lsn);
        self.next_lsn += 1;
        self.records.push(RedoRecord { lsn, txn, payload });
        lsn
    }

    /// Total records ever appended.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The LSN the next append will receive.
    pub fn head_lsn(&self) -> Lsn {
        Lsn(self.next_lsn)
    }

    /// Records in `[from, from + max)` as a shipping batch; empty batch if
    /// `from` is at the head.
    pub fn batch_from(&self, from: Lsn, max: usize) -> LogBatch {
        let start = from.0 as usize;
        let end = (start + max).min(self.records.len());
        let records = if start >= self.records.len() {
            Vec::new()
        } else {
            self.records[start..end].to_vec()
        };
        LogBatch {
            first_lsn: from,
            records,
        }
    }

    /// Read a single record (testing / recovery).
    pub fn get(&self, lsn: Lsn) -> Option<&RedoRecord> {
        self.records.get(lsn.0 as usize)
    }

    /// Iterate over all records (in LSN order).
    pub fn iter(&self) -> impl Iterator<Item = &RedoRecord> {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::decode_all;
    use gdb_model::Timestamp;

    fn commit(ts: u64) -> RedoPayload {
        RedoPayload::Commit {
            commit_ts: Timestamp(ts),
        }
    }

    #[test]
    fn appends_assign_sequential_lsns() {
        let mut buf = RedoBuffer::new();
        assert_eq!(buf.append(TxnId(1), RedoPayload::PendingCommit), Lsn(0));
        assert_eq!(buf.append(TxnId(1), commit(10)), Lsn(1));
        assert_eq!(buf.append(TxnId(2), commit(11)), Lsn(2));
        assert_eq!(buf.head_lsn(), Lsn(3));
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn batches_are_contiguous_and_bounded() {
        let mut buf = RedoBuffer::new();
        for i in 0..10 {
            buf.append(TxnId(i), commit(i));
        }
        let b1 = buf.batch_from(Lsn(0), 4);
        assert_eq!(b1.first_lsn, Lsn(0));
        assert_eq!(b1.len(), 4);
        assert_eq!(b1.last_lsn(), Lsn(3));
        let b2 = buf.batch_from(Lsn(4), 100);
        assert_eq!(b2.len(), 6);
        assert_eq!(b2.last_lsn(), Lsn(9));
        let empty = buf.batch_from(Lsn(10), 5);
        assert!(empty.is_empty());
        assert_eq!(empty.last_lsn(), Lsn(10));
    }

    #[test]
    fn batch_encode_decode_roundtrip() {
        let mut buf = RedoBuffer::new();
        for i in 0..5 {
            buf.append(TxnId(i), commit(100 + i));
        }
        let batch = buf.batch_from(Lsn(0), 5);
        let wire = batch.encode();
        let decoded = decode_all(&wire).unwrap();
        assert_eq!(decoded, batch.records);
    }

    #[test]
    fn get_by_lsn() {
        let mut buf = RedoBuffer::new();
        buf.append(TxnId(9), RedoPayload::Abort);
        assert_eq!(buf.get(Lsn(0)).unwrap().txn, TxnId(9));
        assert!(buf.get(Lsn(1)).is_none());
    }
}
