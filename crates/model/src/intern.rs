//! String interning for hot name lookups.
//!
//! Catalog resolution and metric naming repeatedly hash the same small
//! set of strings ("warehouse", "orders.pk", ...). An [`Interner`]
//! turns each distinct string into a dense [`Sym`] once; afterwards the
//! symbol is the identity — `Copy`, 4 bytes, compares and hashes as an
//! integer — so per-operation costs stop scaling with string length
//! and per-lookup allocations disappear.

use crate::fxhash::FxHashMap;

/// An interned string: a dense index into its [`Interner`]. Only
/// meaningful together with the interner that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// Append-only string pool. Interning the same text twice returns the
/// same [`Sym`]; resolution is an array index.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    by_text: FxHashMap<String, Sym>,
    texts: Vec<String>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `text`, allocating only the first time it is seen.
    pub fn intern(&mut self, text: &str) -> Sym {
        if let Some(&sym) = self.by_text.get(text) {
            return sym;
        }
        let sym = Sym(self.texts.len() as u32);
        self.texts.push(text.to_string());
        self.by_text.insert(text.to_string(), sym);
        sym
    }

    /// Look up the symbol for `text` without interning it.
    pub fn get(&self, text: &str) -> Option<Sym> {
        self.by_text.get(text).copied()
    }

    /// The text behind `sym`. Panics on a symbol from another interner
    /// (an index out of range).
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.texts[sym.0 as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("warehouse");
        let b = i.intern("district");
        let a2 = i.intern("warehouse");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let s = i.intern("orders.pk");
        assert_eq!(i.resolve(s), "orders.pk");
        assert_eq!(i.get("orders.pk"), Some(s));
        assert_eq!(i.get("missing"), None);
    }

    #[test]
    fn symbols_are_dense() {
        let mut i = Interner::new();
        for n in 0..100 {
            assert_eq!(i.intern(&format!("t{n}")), Sym(n));
        }
    }
}
