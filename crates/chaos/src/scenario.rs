//! The declarative scenario DSL: one file describing topology, workload
//! mix, nemesis schedule, and rebalancer settings, runnable as a single
//! oracle-checked chaos run.
//!
//! A scenario is the operator-facing unit of reproduction: instead of
//! wiring `ClusterConfig` + `ChaosConfig` + a `FaultPlan` + rebalancer
//! ticks in Rust, a DBA (or CI) commits a TOML-subset file and replays
//! it with `gdb-shell scenario run <file>`. Same file + same seed ⇒
//! bit-identical trace, like every other seeded run in this repo.
//!
//! ```toml
//! [scenario]
//! name = "migrate-under-fire"
//! seed = 1
//!
//! [topology]
//! geometry = "three-city"        # or "one-region"
//! cns = 6
//! replication = "sync-remote-quorum"
//! quorum = 1
//!
//! [workload]
//! terminals = 8
//! warmup = "500ms"
//! duration = "3s"
//! grace = "2s"
//!
//! [nemesis]
//! plan = "migrate-under-fire"    # canned plan, or "generated"
//!
//! [rebalancer]
//! auto = true
//! interval = "500ms"
//!
//! [[fault]]                      # inline plan (instead of [nemesis] plan)
//! at = "300ms"
//! kind = "crash-primary"
//! shard = 0
//! ```
//!
//! Validation is strict: unknown tables, unknown keys, dangling plan
//! names, and unknown fault kinds are all errors, reported with line
//! numbers (`benchcmp validate` lints committed scenario files with the
//! same code path).

use crate::fault::Fault;
use crate::plan::{canned, FaultPlan};
use crate::runner::{run_plan_prepped, ChaosConfig, ChaosReport};
use gdb_obs::{ConfDoc, ConfTable, ConfValue};
use gdb_rebalance::RebalanceController;
use globaldb::{ClusterConfig, ReplicationMode, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Where a scenario's fault schedule comes from.
#[derive(Debug, Clone)]
pub enum PlanSource {
    /// A canned plan by name ([`canned::by_name`]).
    Canned(String),
    /// The seeded nemesis generator (`plan = "generated"`), with the
    /// episode families enabled by the `[nemesis]` flags.
    Generated {
        overlap: bool,
        migrations: bool,
        elastic: bool,
    },
    /// Inline `[[fault]]` events (offsets from the end of warmup).
    Inline(FaultPlan),
}

/// A fully validated scenario, ready to run.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub name: String,
    /// The chaos knobs (seed, warmup/duration/grace, terminals,
    /// replication mode) the file resolved to.
    pub cfg: ChaosConfig,
    pub geometry: GeometryKind,
    pub cns: Option<usize>,
    pub shards: Option<usize>,
    pub replicas: Option<usize>,
    pub plan: PlanSource,
    /// `Some(interval)` when `[rebalancer] auto = true`: the controller
    /// ticks at this period for the whole fault window.
    pub rebalance_every: Option<SimDuration>,
}

/// Which preset topology the `[topology] geometry` key selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryKind {
    ThreeCity,
    OneRegion,
}

impl Scenario {
    /// The cluster config this scenario deploys: the canonical chaos
    /// shape for its geometry, with the file's overrides applied.
    pub fn cluster_config(&self) -> ClusterConfig {
        let mut cc = match self.geometry {
            GeometryKind::ThreeCity => self.cfg.cluster_config(),
            GeometryKind::OneRegion => {
                let mut c = ClusterConfig::globaldb_one_region().with_seed(self.cfg.cluster_seed);
                c.cn_count = 6;
                c.replication = self.cfg.replication;
                c.rcp_two_phase = true;
                c
            }
        };
        if let Some(n) = self.cns {
            cc.cn_count = n;
        }
        if let Some(n) = self.shards {
            cc.shard_count = n;
        }
        if let Some(n) = self.replicas {
            cc.replicas_per_shard = n;
        }
        cc
    }
}

/// Every fault kind the DSL (and the shell's `fault` command) accepts,
/// with the argument keys each takes. The kebab-case names match the
/// trace lines [`Fault::apply`] emits.
pub const FAULT_KINDS: &[(&str, &[&str])] = &[
    ("crash-primary", &["shard"]),
    ("restart-primary", &["shard"]),
    ("promote-replica", &["shard", "replica"]),
    ("rejoin-old-primary", &["shard"]),
    ("crash-replica", &["shard", "replica"]),
    ("restart-replica", &["shard", "replica"]),
    ("crash-gtm", &[]),
    ("restart-gtm", &[]),
    ("crash-cn", &["cn"]),
    ("restart-cn", &["cn"]),
    ("partition-regions", &["a", "b"]),
    ("heal-regions", &["a", "b"]),
    ("delay-spike", &["extra"]),
    ("clear-delay", &[]),
    ("clock-sync-outage", &["cn"]),
    ("clock-sync-resume", &["cn"]),
    ("start-migration", &["shard", "to-region", "to-host"]),
    ("crash-migration-target", &[]),
    ("restore-migration-target", &[]),
    ("crash-migration-source", &[]),
    ("restore-migration-source", &[]),
    ("add-node", &["region", "host"]),
    ("remove-node", &["region", "host"]),
];

/// Build a [`Fault`] from a kind name plus `key = value` arguments —
/// shared by `[[fault]]` tables and the shell's `fault` command. Unknown
/// kinds, unknown keys, missing keys, and mistyped values are errors.
pub fn fault_from_pairs(kind: &str, pairs: &[(String, ConfValue)]) -> Result<Fault, String> {
    let allowed = FAULT_KINDS
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, args)| *args)
        .ok_or_else(|| {
            format!(
                "unknown fault kind {kind:?} (known: {})",
                FAULT_KINDS
                    .iter()
                    .map(|(k, _)| *k)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("fault {kind:?}: unknown argument {k:?}"));
        }
    }
    let int = |key: &str| -> Result<usize, String> {
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .ok_or_else(|| format!("fault {kind:?}: missing argument {key:?}"))?
            .1
            .as_int()
            .filter(|v| *v >= 0)
            .map(|v| v as usize)
            .ok_or_else(|| format!("fault {kind:?}: argument {key:?} must be a non-negative int"))
    };
    let duration = |key: &str| -> Result<SimDuration, String> {
        let v = &pairs
            .iter()
            .find(|(k, _)| k == key)
            .ok_or_else(|| format!("fault {kind:?}: missing argument {key:?}"))?
            .1;
        match v {
            ConfValue::Str(s) => gdb_obs::parse_duration(s),
            ConfValue::Int(n) if *n >= 0 => Some(SimDuration::from_secs(*n as u64)),
            _ => None,
        }
        .ok_or_else(|| format!("fault {kind:?}: argument {key:?} must be a duration"))
    };
    Ok(match kind {
        "crash-primary" => Fault::CrashPrimary {
            shard: int("shard")?,
        },
        "restart-primary" => Fault::RestartPrimary {
            shard: int("shard")?,
        },
        "promote-replica" => Fault::PromoteReplica {
            shard: int("shard")?,
            replica: int("replica")?,
        },
        "rejoin-old-primary" => Fault::RejoinOldPrimary {
            shard: int("shard")?,
        },
        "crash-replica" => Fault::CrashReplica {
            shard: int("shard")?,
            replica: int("replica")?,
        },
        "restart-replica" => Fault::RestartReplica {
            shard: int("shard")?,
            replica: int("replica")?,
        },
        "crash-gtm" => Fault::CrashGtm,
        "restart-gtm" => Fault::RestartGtm,
        "crash-cn" => Fault::CrashCn { cn: int("cn")? },
        "restart-cn" => Fault::RestartCn { cn: int("cn")? },
        "partition-regions" => Fault::PartitionRegions {
            a: int("a")?,
            b: int("b")?,
        },
        "heal-regions" => Fault::HealRegions {
            a: int("a")?,
            b: int("b")?,
        },
        "delay-spike" => Fault::DelaySpike {
            extra: duration("extra")?,
        },
        "clear-delay" => Fault::ClearDelay,
        "clock-sync-outage" => Fault::ClockSyncOutage { cn: int("cn")? },
        "clock-sync-resume" => Fault::ClockSyncResume { cn: int("cn")? },
        "start-migration" => Fault::StartMigration {
            shard: int("shard")?,
            to_region: int("to-region")?,
            to_host: int("to-host")? as u16,
        },
        "crash-migration-target" => Fault::CrashMigrationTarget,
        "restore-migration-target" => Fault::RestoreMigrationTarget,
        "crash-migration-source" => Fault::CrashMigrationSource,
        "restore-migration-source" => Fault::RestoreMigrationSource,
        "add-node" => Fault::AddNode {
            region: int("region")?,
            host: int("host")? as u16,
        },
        "remove-node" => Fault::RemoveNode {
            region: int("region")?,
            host: int("host")? as u16,
        },
        _ => unreachable!("kind validated above"),
    })
}

/// Accumulates all validation errors instead of stopping at the first,
/// so a lint pass reports the whole file at once.
struct Check {
    errors: Vec<String>,
}

impl Check {
    fn known_keys(&mut self, t: &ConfTable, allowed: &[&str]) {
        for (k, _, line) in &t.entries {
            if !allowed.contains(&k.as_str()) {
                self.errors.push(format!(
                    "line {line}: unknown key {k:?} in [{}] (allowed: {})",
                    t.name,
                    allowed.join(", ")
                ));
            }
        }
    }
}

/// Parse + validate a scenario document. All problems are returned at
/// once; `Ok` means the scenario is structurally sound and every name it
/// mentions resolves.
pub fn load(text: &str) -> Result<Scenario, Vec<String>> {
    let doc = ConfDoc::parse(text).map_err(|e| vec![e])?;
    let mut ck = Check { errors: Vec::new() };

    for t in &doc.tables {
        match (t.name.as_str(), t.array) {
            ("scenario" | "topology" | "workload" | "nemesis" | "rebalancer", false) => {}
            ("fault", true) => {}
            ("fault", false) => ck
                .errors
                .push(format!("line {}: use [[fault]], not [fault]", t.line)),
            (other, _) => ck.errors.push(format!(
                "line {}: unknown table [{other}] (known: scenario, topology, workload, \
                 nemesis, rebalancer, [[fault]])",
                t.line
            )),
        }
    }

    // [scenario]
    let mut name = String::new();
    let mut seed = 1u64;
    match doc.table("scenario") {
        Some(t) => {
            ck.known_keys(t, &["name", "seed"]);
            match t.str_of("name") {
                Some(n) => name = n.to_string(),
                None => ck
                    .errors
                    .push(format!("line {}: [scenario] needs a string `name`", t.line)),
            }
            if let Some(v) = t.get("seed") {
                match v.as_int().filter(|s| *s >= 0) {
                    Some(s) => seed = s as u64,
                    None => ck
                        .errors
                        .push("[scenario] seed must be a non-negative int".into()),
                }
            }
        }
        None => ck.errors.push("missing [scenario] table".into()),
    }

    let mut cfg = ChaosConfig::quick(seed);

    // [topology]
    let mut geometry = GeometryKind::ThreeCity;
    let mut cns = None;
    let mut shards = None;
    let mut replicas = None;
    if let Some(t) = doc.table("topology") {
        ck.known_keys(
            t,
            &[
                "geometry",
                "cns",
                "shards",
                "replicas",
                "replication",
                "quorum",
            ],
        );
        match t.str_of("geometry") {
            Some("three-city") | None => {}
            Some("one-region") => geometry = GeometryKind::OneRegion,
            Some(g) => ck.errors.push(format!(
                "[topology] geometry {g:?} (known: three-city, one-region)"
            )),
        }
        cns = t.int_of("cns").map(|v| v as usize);
        shards = t.int_of("shards").map(|v| v as usize);
        replicas = t.int_of("replicas").map(|v| v as usize);
        let quorum = t.int_of("quorum").unwrap_or(1).max(0) as usize;
        match t.str_of("replication") {
            Some("async") => cfg.replication = ReplicationMode::Async,
            Some("sync-local-quorum") => cfg.replication = ReplicationMode::SyncLocalQuorum,
            Some("sync-remote-quorum") | None => {
                cfg.replication = ReplicationMode::SyncRemoteQuorum { quorum }
            }
            Some(m) => ck.errors.push(format!(
                "[topology] replication {m:?} (known: async, sync-local-quorum, \
                 sync-remote-quorum)"
            )),
        }
    }

    // [workload]
    if let Some(t) = doc.table("workload") {
        ck.known_keys(t, &["terminals", "warmup", "duration", "grace"]);
        if let Some(n) = t.int_of("terminals") {
            cfg.terminals = n.max(1) as usize;
        }
        let dur = |key: &str, errors: &mut Vec<String>| -> Option<SimDuration> {
            t.get(key)?;
            let d = t.duration_of(key);
            if d.is_none() {
                errors.push(format!("[workload] {key} must be a duration"));
            }
            d
        };
        if let Some(d) = dur("warmup", &mut ck.errors) {
            cfg.warmup = d;
        }
        if let Some(d) = dur("duration", &mut ck.errors) {
            cfg.duration = d;
        }
        if let Some(d) = dur("grace", &mut ck.errors) {
            cfg.grace = d;
        }
    }

    // [nemesis] and/or [[fault]]
    let mut plan: Option<PlanSource> = None;
    if let Some(t) = doc.table("nemesis") {
        ck.known_keys(t, &["plan", "overlap", "migrations", "elastic"]);
        let overlap = t.bool_of("overlap").unwrap_or(false);
        let migrations = t.bool_of("migrations").unwrap_or(false);
        let elastic = t.bool_of("elastic").unwrap_or(false);
        match t.str_of("plan") {
            Some("generated") => {
                plan = Some(PlanSource::Generated {
                    overlap,
                    migrations,
                    elastic,
                })
            }
            Some(p) => {
                if canned::by_name(p).is_some() {
                    plan = Some(PlanSource::Canned(p.to_string()));
                } else {
                    ck.errors.push(format!(
                        "[nemesis] unknown plan {p:?} (known: generated, {})",
                        canned::all()
                            .iter()
                            .map(|pl| pl.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
            }
            None => ck
                .errors
                .push(format!("line {}: [nemesis] needs a `plan`", t.line)),
        }
    }
    let fault_tables: Vec<&ConfTable> = doc.tables_named("fault").collect();
    if !fault_tables.is_empty() {
        if plan.is_some() {
            ck.errors
                .push("give either [nemesis] plan or [[fault]] events, not both".into());
        }
        let mut inline = FaultPlan::new(if name.is_empty() {
            "inline".to_string()
        } else {
            name.clone()
        });
        for t in &fault_tables {
            let mut pairs: Vec<(String, ConfValue)> = Vec::new();
            let mut at = None;
            let mut kind = None;
            for (k, v, line) in &t.entries {
                match k.as_str() {
                    "at" => match t.duration_of("at") {
                        Some(d) => at = Some(d),
                        None => ck
                            .errors
                            .push(format!("line {line}: [[fault]] at must be a duration")),
                    },
                    "kind" => match v.as_str() {
                        Some(s) => kind = Some(s.to_string()),
                        None => ck
                            .errors
                            .push(format!("line {line}: [[fault]] kind must be a string")),
                    },
                    _ => pairs.push((k.clone(), v.clone())),
                }
            }
            let (Some(at), Some(kind)) = (at, kind) else {
                ck.errors
                    .push(format!("line {}: [[fault]] needs `at` and `kind`", t.line));
                continue;
            };
            match fault_from_pairs(&kind, &pairs) {
                Ok(f) => inline = inline.at(SimTime::ZERO + at, f),
                Err(e) => ck.errors.push(format!("line {}: {e}", t.line)),
            }
        }
        plan = Some(PlanSource::Inline(inline));
    }
    let Some(plan) = plan else {
        ck.errors
            .push("scenario has no fault schedule: give [nemesis] plan or [[fault]] events".into());
        return Err(ck.errors);
    };

    // [rebalancer]
    let mut rebalance_every = None;
    if let Some(t) = doc.table("rebalancer") {
        ck.known_keys(t, &["auto", "interval"]);
        if t.bool_of("auto").unwrap_or(false) {
            match t.duration_of("interval") {
                Some(d) if d > SimDuration::ZERO => rebalance_every = Some(d),
                _ => ck
                    .errors
                    .push("[rebalancer] auto = true needs a positive `interval`".into()),
            }
        }
    }

    if !ck.errors.is_empty() {
        return Err(ck.errors);
    }
    Ok(Scenario {
        name,
        cfg,
        geometry,
        cns,
        shards,
        replicas,
        plan,
        rebalance_every,
    })
}

/// Lint a scenario file: every validation error, or empty when clean.
/// (`benchcmp validate` calls this on committed `scenarios/*.toml`.)
pub fn lint(text: &str) -> Vec<String> {
    match load(text) {
        Ok(_) => Vec::new(),
        Err(errors) => errors,
    }
}

/// Run a loaded scenario: resolve its plan, deploy its topology, arm
/// the auto-rebalancer if asked, and torment it under the standard
/// oracle. The report's plan name is the scenario name.
pub fn run_scenario(scn: &Scenario) -> ChaosReport {
    let cfg = scn.cfg;
    let plan = match &scn.plan {
        PlanSource::Canned(name) => canned::by_name(name).expect("validated plan name"),
        PlanSource::Inline(plan) => plan.clone(),
        PlanSource::Generated {
            overlap,
            migrations,
            elastic,
        } => {
            let cc = scn.cluster_config();
            let shape = crate::nemesis::ClusterShape {
                shards: cc.shard_count,
                replicas_per_shard: cc.replicas_per_shard,
                cns: cc.cn_count,
                regions: match cc.geometry {
                    globaldb::Geometry::OneRegion { .. } => 1,
                    globaldb::Geometry::ThreeCity { .. } => 3,
                    globaldb::Geometry::MultiRegion { regions, .. } => regions,
                },
            };
            let mut nemesis =
                crate::nemesis::NemesisConfig::new(cfg.cluster_seed, SimTime::ZERO, cfg.duration);
            if *overlap {
                nemesis = nemesis.with_overlap();
            }
            if *migrations {
                nemesis = nemesis.with_migrations();
            }
            if *elastic {
                nemesis = nemesis.with_elastic();
            }
            crate::nemesis::generate(&nemesis, &shape)
        }
    };
    let every = scn.rebalance_every;
    let horizon = cfg.warmup + cfg.duration;
    let mut report = run_plan_prepped(plan, &cfg, scn.cluster_config(), move |cluster| {
        let Some(every) = every else { return };
        let ctrl = Rc::new(RefCell::new(RebalanceController::new()));
        let end = cluster.now() + horizon;
        let mut at = cluster.now() + every;
        while at <= end {
            let ctrl = Rc::clone(&ctrl);
            cluster.sim.schedule_at(at, move |w, sim| {
                ctrl.borrow_mut().tick_at(w, sim);
            });
            at += every;
        }
    });
    if !scn.name.is_empty() {
        report.plan_name = scn.name.clone();
    }
    report
}

/// Load + run in one step; parse errors become report-less `Err`.
pub fn run_text(text: &str) -> Result<ChaosReport, Vec<String>> {
    Ok(run_scenario(&load(text)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
[scenario]
name = "smoke"
seed = 3

[topology]
replication = "sync-remote-quorum"
quorum = 1

[workload]
terminals = 4
warmup = "200ms"
duration = "600ms"
grace = "500ms"

[[fault]]
at = "100ms"
kind = "crash-primary"
shard = 0

[[fault]]
at = "300ms"
kind = "restart-primary"
shard = 0
"#;

    #[test]
    fn loads_inline_scenario() {
        let scn = load(GOOD).unwrap();
        assert_eq!(scn.name, "smoke");
        assert_eq!(scn.cfg.terminals, 4);
        assert_eq!(scn.cfg.warmup, SimDuration::from_millis(200));
        let PlanSource::Inline(plan) = &scn.plan else {
            panic!("expected inline plan");
        };
        assert_eq!(plan.events.len(), 2);
        assert_eq!(plan.events[0].fault, Fault::CrashPrimary { shard: 0 });
    }

    #[test]
    fn rejects_unknown_names() {
        let errs = lint("[scenario]\nname = \"x\"\n[nemesis]\nplan = \"no-such-plan\"\n");
        assert!(errs.iter().any(|e| e.contains("unknown plan")), "{errs:?}");
        let errs =
            lint("[scenario]\nname = \"x\"\n[[fault]]\nat = \"1s\"\nkind = \"crash-primaries\"\n");
        assert!(
            errs.iter().any(|e| e.contains("unknown fault kind")),
            "{errs:?}"
        );
        let errs = lint(
            "[scenario]\nname = \"x\"\n[[fault]]\nat = \"1s\"\nkind = \"crash-primary\"\nshards = 0\n",
        );
        assert!(
            errs.iter().any(|e| e.contains("unknown argument")),
            "{errs:?}"
        );
        let errs =
            lint("[scenario]\nname = \"x\"\n[typo]\nk = 1\n[nemesis]\nplan = \"generated\"\n");
        assert!(errs.iter().any(|e| e.contains("unknown table")), "{errs:?}");
    }

    #[test]
    fn canned_plans_resolve() {
        let text = "[scenario]\nname = \"x\"\n[nemesis]\nplan = \"migrate-under-fire\"\n";
        let scn = load(text).unwrap();
        assert!(
            matches!(&scn.plan, PlanSource::Canned(p) if p == "migrate-under-fire"),
            "{:?}",
            scn.plan
        );
    }

    #[test]
    fn tiny_inline_scenario_runs_oracle_green() {
        let report = run_text(GOOD).unwrap();
        assert_eq!(report.plan_name, "smoke");
        assert!(report.ok(), "{}", report.render());
        assert!(report.txns_committed > 0);
    }
}
