//! String strategies from simple regex patterns.
//!
//! A `&str` used as a strategy (e.g. `"[a-z]{0,8}"`) generates matching
//! strings. The supported grammar is the subset the workspace uses:
//! sequences of atoms, where an atom is a literal character or a `[...]`
//! character class (with `a-z` ranges), optionally followed by a repetition
//! `{n}`, `{m,n}`, `?`, `*`, or `+` (unbounded repetitions cap at 16).

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

const UNBOUNDED_CAP: usize = 16;

struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut choices = Vec::new();
    // `i` points just past '['.
    while i < chars.len() && chars[i] != ']' {
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            for c in lo..=hi {
                if let Some(c) = char::from_u32(c) {
                    choices.push(c);
                }
            }
            i += 3;
        } else {
            choices.push(chars[i]);
            i += 1;
        }
    }
    (choices, i + 1) // skip ']'
}

fn parse_repetition(chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, UNBOUNDED_CAP, i + 1),
        Some('+') => (1, UNBOUNDED_CAP, i + 1),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .expect("unclosed {} repetition in pattern");
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition bound"),
                    hi.trim().parse().expect("bad repetition bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            };
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let (choices, next) = parse_class(&chars, i + 1);
                i = next;
                choices
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max, next) = parse_repetition(&chars, i);
        i = next;
        assert!(!choices.is_empty(), "empty character class in pattern");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

fn generate_matching(pattern: &str, rng: &mut SmallRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let reps = rng.gen_range(atom.min..=atom.max);
        for _ in 0..reps {
            out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
        }
    }
    out
}

impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        generate_matching(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_repetition() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate_matching("[a-z]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn mixed_class() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = generate_matching("[a-zA-Z0-9 ]{0,32}", &mut rng);
            assert!(s.len() <= 32);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = SmallRng::seed_from_u64(3);
        let s = generate_matching("ab{2}c?", &mut rng);
        assert!(s.starts_with("abb"));
    }
}
