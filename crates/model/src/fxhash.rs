//! A fast, non-cryptographic hasher for hot-path maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which pays ~1
//! round per 8 input bytes plus keyed setup on every lookup. The lock
//! table and storage-engine maps hash small fixed keys (ids, short
//! datum tuples) millions of times per second, where a multiply-xor
//! hash in the style of rustc's FxHash is 3-5x faster and — because
//! these maps never face adversarial keys — loses nothing.
//!
//! The states is a single `u64`; each word is folded in with
//! `rotate ^ word` then a multiply by a Weyl-style odd constant.
//! Streams are consumed 8 bytes at a time so `write(&[u8])` and the
//! fixed-width `write_u64`/`write_u32` paths agree on speed, not on
//! values (hashers only promise determinism per build, which is all a
//! `HashMap` needs).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from splitmix64's finalizer; any odd constant with good
/// bit dispersion works.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state. Zero-initialized via `Default`, as
/// [`BuildHasherDefault`] requires.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" + "" and "a" + "b" differ.
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plugs into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the fast hasher. Drop-in for hot-path maps
/// whose keys are trusted (no hash-flooding surface).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` over the fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_within_process() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"warehouse"), hash_of(&"warehouse"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // A weak fold (e.g. xor without rotate) collapses these.
        let a = hash_of(&(1u64, 2u64));
        let b = hash_of(&(2u64, 1u64));
        assert_ne!(a, b);
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
    }

    #[test]
    fn byte_stream_length_matters() {
        let mut short = FxHasher::default();
        short.write(b"abc");
        let mut padded = FxHasher::default();
        padded.write(b"abc\0");
        assert_ne!(short.finish(), padded.finish());
    }

    #[test]
    fn usable_as_map() {
        let mut m: FxHashMap<(u32, u64), &str> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((i as u32 % 7, i), "v");
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(3, 10)), Some(&"v"));
    }

    #[test]
    fn low_collision_rate_on_sequential_ids() {
        // Sequential integers are the common key shape (TxnId, LSN);
        // the multiply must spread them across the whole u64.
        let mut seen = FxHashSet::default();
        for i in 0..100_000u64 {
            // Bucket into 2^17 slots like a real table would.
            seen.insert(hash_of(&i) >> (64 - 17));
        }
        // With 100k keys into 131072 buckets, a decent hash fills most
        // of the table (expected ~69k distinct); a weak one collapses.
        assert!(seen.len() > 60_000, "only {} distinct buckets", seen.len());
    }
}
