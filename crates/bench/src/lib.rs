//! Shared harness for the figure-regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one figure of the paper's
//! evaluation (§V, Fig. 1a and Fig. 6a–d) or one ablation. Absolute
//! numbers are simulated (the substrate is a deterministic virtual-time
//! cluster, not the authors' hardware); the *shape* — who wins, by what
//! factor, where the crossovers are — is the reproduction target.
//!
//! Environment knobs:
//! * `GDB_BENCH_SCALE` = `tiny` | `small` (default) | `medium`
//! * `GDB_BENCH_SECS`  = measured virtual seconds (default 10)
//! * `GDB_BENCH_TERMINALS` = closed-loop terminals (default 24)

use gdb_simnet::SimDuration;
use gdb_workloads::driver::{run_workload, RunConfig, Workload};
use gdb_workloads::tpcc::{TpccMix, TpccScale, TpccWorkload};
use gdb_workloads::WorkloadReport;
use globaldb::{Cluster, ClusterConfig};

/// Scale/duration parameters shared by the binaries.
#[derive(Debug, Clone, Copy)]
pub struct BenchParams {
    pub scale: TpccScale,
    pub run: RunConfig,
    pub seed: u64,
}

impl BenchParams {
    /// Read from the environment (defaults: small scale, 10 virtual s).
    pub fn from_env() -> Self {
        let scale = match std::env::var("GDB_BENCH_SCALE").as_deref() {
            Ok("tiny") => TpccScale::tiny(),
            Ok("medium") => TpccScale::medium(),
            _ => TpccScale::small(),
        };
        let secs: u64 = std::env::var("GDB_BENCH_SECS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        let terminals: usize = std::env::var("GDB_BENCH_TERMINALS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(24);
        BenchParams {
            scale,
            run: RunConfig {
                terminals,
                duration: SimDuration::from_secs(secs),
                warmup: SimDuration::from_secs(1),
                think_time: SimDuration::from_millis(10),
            },
            seed: 42,
        }
    }
}

/// Build a cluster, load TPC-C, run the mix, and return the report.
pub fn tpcc_run(
    config: ClusterConfig,
    params: &BenchParams,
    mix: TpccMix,
    tweak: impl FnOnce(&mut TpccWorkload),
) -> (Cluster, WorkloadReport) {
    let mut cluster = Cluster::new(config);
    let mut wl = TpccWorkload::new(params.scale, mix, params.seed);
    tweak(&mut wl);
    wl.setup(&mut cluster).expect("tpcc setup");
    let report = run_workload(&mut cluster, &mut wl, params.run);
    (cluster, report)
}

/// Print an aligned results table (one figure per binary, paper-style).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
    println!();
}

/// Format a throughput relative to a baseline ("3.2x").
pub fn ratio(value: f64, base: f64) -> String {
    if base <= 0.0 {
        "n/a".into()
    } else {
        format!("{:.2}x", value / base)
    }
}

/// Mean RCP lag across regions in milliseconds (freshness metric).
pub fn rcp_lag_ms(cluster: &Cluster) -> f64 {
    let now_us = cluster.now().as_micros() as f64;
    let regions = cluster.db.rcp.len().max(1) as f64;
    let total: f64 = cluster
        .db
        .rcp
        .iter()
        .map(|r| (now_us - r.current().as_micros() as f64).max(0.0))
        .sum();
    total / regions / 1_000.0
}
