//! Differential correctness of the transaction hot path: the optimized
//! pipeline and the frozen pre-pass reference must produce byte-identical
//! durable segments and identical committed state on randomized scripts.

use gdb_bench::txnpath::{assert_equivalent, generate_script, run_fast, run_reference};

#[test]
fn optimized_path_matches_frozen_reference_across_seeds() {
    for seed in [1u64, 7, 42, 1337, 0xDEADBEEF] {
        let script = generate_script(seed, 2_000);
        let fast = run_fast(&script, 64);
        let reference = run_reference(&script, 64);
        assert_equivalent(&fast, &reference);
    }
}

#[test]
fn ship_window_is_invisible_to_committed_state() {
    let script = generate_script(99, 2_000);
    let reference = run_reference(&script, 64);
    for window in [1usize, 13, 256, usize::MAX] {
        let fast = run_fast(&script, window);
        assert_equivalent(&fast, &reference);
    }
}

#[test]
fn group_commit_cuts_fsyncs_without_losing_records() {
    let script = generate_script(5, 2_000);
    let fast = run_fast(&script, 64);
    let reference = run_reference(&script, 64);
    // Same records durable on both paths, ~64x fewer fsyncs on one.
    assert_eq!(fast.synced_txns, reference.synced_txns);
    assert_eq!(reference.fsyncs, 2_000);
    assert!(fast.fsyncs <= 2_000 / 64 + 1, "fsyncs {}", fast.fsyncs);
}
