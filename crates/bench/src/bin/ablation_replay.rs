//! Ablation — parallel redo replay (paper §II-B: GlobalDB "applies Redo
//! logs in parallel which significantly improves log replay speed").
//!
//! Sweeps replay workers 1..8 under a write-heavy load and reports replica
//! freshness (RCP lag): serial replay falls behind, parallel replay keeps
//! the RCP close to the present, which is what makes ROR reads fresh.
//!
//! Regenerate with: `cargo run -p gdb-bench --release --bin ablation_replay`

use gdb_bench::{print_table, rcp_lag_ms, tpcc_run, BenchParams};
use gdb_replication::ReplayCostModel;
use gdb_simnet::SimDuration;
use gdb_workloads::tpcc::TpccMix;
use globaldb::ClusterConfig;

fn main() {
    let params = BenchParams::from_env();
    let mut rows = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let config = ClusterConfig {
            replay: ReplayCostModel {
                // A deliberately expensive per-record cost so replay is the
                // bottleneck being ablated.
                per_record: SimDuration::from_micros(150),
                workers,
                per_batch: SimDuration::from_micros(20),
            },
            ..ClusterConfig::globaldb_three_city()
        };
        let (cluster, report) = tpcc_run(config, &params, TpccMix::standard(), |wl| {
            wl.set_all_local();
        });
        let fallbacks = cluster.db.stats().replica_blocked_fallbacks;
        rows.push(vec![
            format!("{workers}"),
            format!("{:.0}", report.tpmc()),
            format!("{:.1} ms", rcp_lag_ms(&cluster)),
            format!("{fallbacks}"),
        ]);
    }
    print_table(
        "Ablation — parallel replay workers (write-heavy, Three-City)",
        &[
            "replay workers",
            "tpmC (sim)",
            "RCP lag",
            "blocked fallbacks",
        ],
        &rows,
    );
    println!("Expected: more workers ⇒ fresher replicas (smaller RCP lag).");
}
