//! Real-cluster smoke: a small TPC-C mix on a 3-node loopback cluster,
//! once per execution backend.
//!
//! * `sim` — the ordinary deterministic simulation (reference run,
//!   printed but not gated: its wall speed has no physical meaning);
//! * `thread` — one OS thread per silo, in-process channel delivery;
//! * `tcp` — one loopback-TCP listener per silo, framed sockets.
//!
//! Every run must commit transactions end-to-end and pass the
//! plane-vs-silo accounting cross-check (each charged message routed by
//! exactly one silo). The artifact is marked `wall_clock=true` with the
//! `thread` series as in-run baseline: the CI gate ratios `tcp /
//! thread` committed-txn throughput measured on this machine in this
//! process — never absolute numbers, which are machine-local. The floor
//! (`wall_floor=0.02`) only guards against collapse: real sockets are
//! legitimately slower than channels.
//!
//! Regenerate the blessed baseline with `scripts/regen_bench.sh` (or:
//! `cargo run --release -p gdb-realnet --bin realnet_smoke -- --json
//! BENCH_realnet.json`). Knobs: `GDB_BENCH_SCALE` (default `tiny`
//! here), `GDB_BENCH_SECS` (default 2), `GDB_BENCH_TERMINALS`
//! (default 8).

use gdb_bench::{artifact, emit_artifact, print_table, series_from_run, BenchParams};
use gdb_obs::{WALL_BASELINE_KEY, WALL_CLOCK_KEY, WALL_FLOOR_KEY};
use gdb_realnet::{Backend, RealCluster, RealnetReport};
use gdb_simnet::SimDuration;
use gdb_workloads::driver::{run_workload, RunConfig, Workload};
use gdb_workloads::tpcc::{TpccMix, TpccScale, TpccWorkload};
use globaldb::ClusterConfig;
use std::time::Instant;

/// Like [`BenchParams::from_env`] but with smoke-sized defaults: the
/// point is exercising the transport, not generating load, and every
/// message here costs a real round trip.
fn smoke_params() -> BenchParams {
    let (scale, scale_name) = match std::env::var("GDB_BENCH_SCALE").as_deref() {
        Ok("small") => (TpccScale::small(), "small"),
        Ok("medium") => (TpccScale::medium(), "medium"),
        _ => (TpccScale::tiny(), "tiny"),
    };
    let secs: u64 = std::env::var("GDB_BENCH_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let terminals: usize = std::env::var("GDB_BENCH_TERMINALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    BenchParams {
        scale,
        scale_name,
        run: RunConfig {
            terminals,
            duration: SimDuration::from_secs(secs),
            warmup: SimDuration::from_secs(1),
            think_time: SimDuration::from_millis(10),
        },
        seed: 42,
    }
}

struct BackendRun {
    backend: Backend,
    wall: std::time::Duration,
    commits: u64,
    aborts: u64,
    virtual_txn_s: f64,
    real: RealnetReport,
    series: gdb_obs::BenchSeries,
}

impl BackendRun {
    /// Committed transactions per *wall-clock* second (the gated metric).
    fn wall_txn_s(&self) -> f64 {
        self.commits as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

fn run_backend(backend: Backend, params: &BenchParams) -> BackendRun {
    eprintln!("realnet_smoke: running {} backend...", backend.label());
    let mut rc = RealCluster::launch(ClusterConfig::globaldb_three_city(), backend);
    let mut wl = TpccWorkload::new(params.scale, TpccMix::standard(), params.seed);
    wl.setup(&mut rc.cluster).expect("tpcc setup");
    let start = Instant::now();
    let report = run_workload(&mut rc.cluster, &mut wl, params.run);
    let wall = start.elapsed();
    let real = rc.shutdown();
    real.verify_against_plane(rc.cluster.db.plane())
        .expect("plane/silo accounting must agree");
    let commits = report.total_commits();
    assert!(
        commits > 0,
        "{} backend committed nothing — the cluster is not executing",
        backend.label()
    );
    let mut series = series_from_run(backend.label(), &mut rc.cluster, &report);
    let run = BackendRun {
        backend,
        wall,
        commits,
        aborts: report.total_aborts(),
        virtual_txn_s: report.throughput_per_sec(),
        real,
        series: {
            // The artifact is wall-clock: the gated throughput field holds
            // committed txn per wall second, not virtual-time txn/s.
            series.throughput_txn_s = commits as f64 / wall.as_secs_f64().max(1e-9);
            series
        },
    };
    eprintln!(
        "realnet_smoke: {} done — {} commits in {:.2}s wall ({} msgs physically routed)",
        backend.label(),
        commits,
        wall.as_secs_f64(),
        run.real.msgs
    );
    run
}

fn row(r: &BackendRun) -> Vec<String> {
    let routed = if r.backend == Backend::Sim {
        "-".to_string()
    } else {
        format!("{}", r.real.msgs)
    };
    vec![
        r.backend.label().into(),
        format!("{}", r.commits),
        format!("{}", r.aborts),
        format!("{:.2}", r.wall.as_secs_f64()),
        format!("{:.0}", r.wall_txn_s()),
        format!("{:.0}", r.virtual_txn_s),
        routed,
    ]
}

fn main() {
    let params = smoke_params();
    eprintln!(
        "realnet_smoke: {} scale, {:.0} virtual s, {} terminals",
        params.scale_name,
        params.run.duration.as_secs_f64(),
        params.run.terminals
    );

    let sim = run_backend(Backend::Sim, &params);
    let thread = run_backend(Backend::Thread, &params);
    let tcp = run_backend(Backend::Tcp, &params);

    // The same deterministic workload ran on all three backends; the
    // real ones must have routed every silo's share of it.
    for r in [&thread, &tcp] {
        assert_eq!(r.real.silos.len(), 3, "three silos on the 3-node cluster");
        assert!(r.real.msgs > 0);
    }

    print_table(
        "realnet smoke: TPC-C on three execution backends",
        &[
            "backend",
            "commits",
            "aborts",
            "wall s",
            "commit/s (wall)",
            "txn/s (virtual)",
            "msgs routed",
        ],
        &[row(&sim), row(&thread), row(&tcp)],
    );
    for r in [&thread, &tcp] {
        let per_silo: Vec<String> = r
            .real
            .silos
            .iter()
            .map(|s| format!("host{}={}m/{}b", s.host, s.msgs, s.bytes))
            .collect();
        println!(
            "{} silo tallies: {}",
            r.backend.label(),
            per_silo.join("  ")
        );
    }
    println!(
        "tcp/thread wall throughput ratio: {:.3}",
        tcp.wall_txn_s() / thread.wall_txn_s().max(1e-9)
    );

    // Artifact: thread + tcp only. The sim series' wall speed would gate
    // a meaningless ratio (simulation does no physical work per message).
    let mut a = artifact("realnet_smoke", &params);
    a.config_kv(WALL_CLOCK_KEY, "true");
    a.config_kv(WALL_BASELINE_KEY, "thread");
    a.config_kv(WALL_FLOOR_KEY, "0.02");
    a.series.push(thread.series);
    a.series.push(tcp.series);
    emit_artifact(&a);
}
