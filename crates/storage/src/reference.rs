//! Frozen pre-optimization storage path, kept as the differential
//! reference and wall-clock comparator.
//!
//! Everything here is a verbatim copy of the storage hot path **before**
//! the transaction hot-path pass (arena version chains, no-clone lock
//! acquire, zero-copy encode/ship), in the same spirit as
//! `simnet::reference::HeapSim`:
//!
//! * [`ReferenceTable`] — `Vec`-backed version chains in a
//!   `BTreeMap<RowKey, chain>`, with `entry(key.clone())` per install.
//! * [`ReferenceLockTable`] — one flat `std::collections::HashMap`
//!   (SipHash) keyed by `(TableId, RowKey)`, cloning the key on every
//!   acquire/lookup.
//! * [`legacy_decode_batch`] — the old replay decode: a fresh `String`
//!   (copy + re-validate) per text field, fresh `Vec`s per row and key.
//!
//! `txn_bench` drives the identical workload through this path and the
//! live one; the differential tests assert identical committed state,
//! and the CI gate checks the wall-clock *ratio* between them — never a
//! machine-local absolute. Do not "fix" or optimize this module: its
//! value is that it does not change.

use crate::table::{Version, VisibleRow};
use gdb_model::{Datum, GdbError, GdbResult, Row, RowKey, TableId, Timestamp, TxnId};
use gdb_simnet::SimTime;
use gdb_wal::codec::{DecodeError, Reader};
use gdb_wal::record::{Lsn, RedoPayload, RedoRecord, WalError};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

pub use crate::lock::LockOutcome;

/// The version chain for one primary key, newest last (frozen copy).
#[derive(Debug, Clone, Default)]
struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    fn push(&mut self, key: &RowKey, v: Version) -> GdbResult<()> {
        if let Some(last) = self.versions.last() {
            if v.commit_ts < last.commit_ts {
                return Err(GdbError::Internal(format!(
                    "version chain order violation at {key}: {} (vtime {}) after {} (vtime {})",
                    v.commit_ts, v.commit_vtime, last.commit_ts, last.commit_vtime
                )));
            }
        }
        self.versions.push(v);
        Ok(())
    }

    fn visible_at(&self, snapshot: Timestamp) -> Option<&Version> {
        self.versions.iter().rev().find(|v| v.commit_ts <= snapshot)
    }

    fn newest(&self) -> Option<&Version> {
        self.versions.last()
    }

    fn vacuum(&mut self, horizon: Timestamp) -> usize {
        let keep_from = match self.versions.iter().rposition(|v| v.commit_ts <= horizon) {
            Some(i) => i,
            None => return 0,
        };
        let removed = keep_from;
        if removed > 0 {
            self.versions.drain(0..removed);
        }
        removed
    }

    fn len(&self) -> usize {
        self.versions.len()
    }
}

/// Pre-pass versioned table (frozen copy of `Table`).
#[derive(Debug, Default, Clone)]
pub struct ReferenceTable {
    rows: BTreeMap<RowKey, VersionChain>,
    /// Count of version installs (write amplification metric).
    pub versions_installed: u64,
}

impl ReferenceTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a committed version. Note the unconditional `key.clone()`
    /// — the allocation the live path's arena install eliminates.
    pub fn install_version(
        &mut self,
        key: RowKey,
        row: Option<Row>,
        commit_ts: Timestamp,
        commit_vtime: SimTime,
    ) -> GdbResult<()> {
        self.versions_installed += 1;
        let chain = self.rows.entry(key.clone()).or_default();
        chain.push(
            &key,
            Version {
                commit_ts,
                commit_vtime,
                row,
            },
        )
    }

    pub fn read(&self, key: &RowKey, snapshot: Timestamp) -> Option<VisibleRow<'_>> {
        let (key, chain) = self.rows.get_key_value(key)?;
        let v = chain.visible_at(snapshot)?;
        v.row.as_ref().map(|row| VisibleRow {
            key,
            row,
            commit_ts: v.commit_ts,
            commit_vtime: v.commit_vtime,
        })
    }

    pub fn read_newest(&self, key: &RowKey) -> Option<VisibleRow<'_>> {
        let (key, chain) = self.rows.get_key_value(key)?;
        let v = chain.newest()?;
        v.row.as_ref().map(|row| VisibleRow {
            key,
            row,
            commit_ts: v.commit_ts,
            commit_vtime: v.commit_vtime,
        })
    }

    pub fn range(
        &self,
        lo: Option<&RowKey>,
        hi: Option<&RowKey>,
        snapshot: Timestamp,
    ) -> Vec<VisibleRow<'_>> {
        let lo_b = lo.map_or(Bound::Unbounded, |k| Bound::Included(k.clone()));
        let hi_b = hi.map_or(Bound::Unbounded, |k| Bound::Included(k.clone()));
        self.rows
            .range((lo_b, hi_b))
            .filter_map(|(key, chain)| {
                chain.visible_at(snapshot).and_then(|v| {
                    v.row.as_ref().map(|row| VisibleRow {
                        key,
                        row,
                        commit_ts: v.commit_ts,
                        commit_vtime: v.commit_vtime,
                    })
                })
            })
            .collect()
    }

    pub fn scan(&self, snapshot: Timestamp) -> Vec<VisibleRow<'_>> {
        self.range(None, None, snapshot)
    }

    pub fn key_count(&self) -> usize {
        self.rows.len()
    }

    pub fn vacuum(&mut self, horizon: Timestamp) -> usize {
        let mut removed = 0;
        for chain in self.rows.values_mut() {
            removed += chain.vacuum(horizon);
        }
        self.rows.retain(|_, chain| {
            !(chain.len() == 1
                && chain.versions[0].row.is_none()
                && chain.versions[0].commit_ts <= horizon)
        });
        removed
    }
}

#[derive(Debug, Clone, Copy)]
struct LockState {
    holder: TxnId,
    release_at: SimTime,
}

/// Pre-pass lock table (frozen copy of `LockTable`): SipHash map keyed
/// by `(TableId, RowKey)`, one key clone per acquire.
#[derive(Debug, Default, Clone)]
pub struct ReferenceLockTable {
    locks: HashMap<(TableId, RowKey), LockState>,
    /// Total lock-wait events (contention metric).
    pub waits: u64,
}

impl ReferenceLockTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn acquire(
        &mut self,
        table: TableId,
        key: &RowKey,
        txn: TxnId,
        now: SimTime,
        release_at: SimTime,
    ) -> LockOutcome {
        let entry = self.locks.entry((table, key.clone()));
        match entry {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let state = o.get_mut();
                if state.holder == txn {
                    state.release_at = state.release_at.max(release_at);
                    return LockOutcome::Acquired;
                }
                if state.release_at <= now {
                    *state = LockState {
                        holder: txn,
                        release_at,
                    };
                    return LockOutcome::Acquired;
                }
                self.waits += 1;
                LockOutcome::WaitUntil(state.release_at)
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(LockState {
                    holder: txn,
                    release_at,
                });
                LockOutcome::Acquired
            }
        }
    }

    pub fn extend(&mut self, txn: TxnId, release_at: SimTime) {
        for state in self.locks.values_mut() {
            if state.holder == txn {
                state.release_at = state.release_at.max(release_at);
            }
        }
    }

    pub fn release_all(&mut self, txn: TxnId) {
        self.locks.retain(|_, s| s.holder != txn);
    }

    pub fn set_release(&mut self, table: TableId, key: &RowKey, txn: TxnId, at: SimTime) {
        if let Some(s) = self.locks.get_mut(&(table, key.clone())) {
            if s.holder == txn {
                s.release_at = at;
            }
        }
    }

    pub fn sweep(&mut self, now: SimTime) {
        self.locks.retain(|_, s| s.release_at > now);
    }

    pub fn holder(&self, table: TableId, key: &RowKey, now: SimTime) -> Option<TxnId> {
        self.locks
            .get(&(table, key.clone()))
            .filter(|s| s.release_at > now)
            .map(|s| s.holder)
    }

    pub fn len(&self) -> usize {
        self.locks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }
}

/// The old `Decoder::str` behavior: copy the bytes out, then validate
/// the copy (`String::from_utf8` walks it again).
fn legacy_str(r: &mut Reader) -> Result<String, DecodeError> {
    let b = r.bytes()?;
    String::from_utf8(b.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
}

fn legacy_datum(r: &mut Reader) -> Result<Datum, DecodeError> {
    // Tag bytes mirror gdb_wal::codec (T_NULL..T_BOOL_T).
    Ok(match r.u8()? {
        0 => Datum::Null,
        1 => Datum::Int(r.varint_i64()?),
        2 => Datum::Decimal(r.varint_i64()?),
        3 => Datum::Text(legacy_str(r)?),
        4 => Datum::Bool(false),
        5 => Datum::Bool(true),
        t => {
            return Err(DecodeError::UnknownTag {
                kind: "datum",
                tag: t,
            })
        }
    })
}

fn legacy_datums(r: &mut Reader, cap: usize) -> Result<Vec<Datum>, DecodeError> {
    let n = r.varint()? as usize;
    let mut vals = Vec::with_capacity(n.min(cap));
    for _ in 0..n {
        vals.push(legacy_datum(r)?);
    }
    Ok(vals)
}

/// The pre-pass replay decode for the hot record kinds: fresh `Vec`s
/// per row/key, owned `String` per text field, one owned `RedoRecord`
/// per frame collected into a fresh batch `Vec`. Control/DDL kinds the
/// transaction hot path never ships decode as an error here.
pub fn legacy_decode_batch(data: &[u8]) -> Result<Vec<RedoRecord>, WalError> {
    let mut r = Reader::new(data);
    let mut out = Vec::new();
    while !r.is_empty() {
        let body = r.bytes()?;
        let mut crc_bytes = [0u8; 4];
        for b in crc_bytes.iter_mut() {
            *b = r.u8()?;
        }
        if gdb_wal::crc::crc32(body) != u32::from_le_bytes(crc_bytes) {
            let lsn = Reader::new(body).varint().unwrap_or(0);
            return Err(WalError::Corrupt { lsn });
        }
        let mut br = Reader::new(body);
        let lsn = Lsn(br.varint()?);
        let txn = TxnId(br.varint()?);
        // Payload tags mirror gdb_wal::record (P_INSERT..P_CHECKPOINT).
        let payload = match br.u8()? {
            1 => RedoPayload::Insert {
                table: TableId(br.varint()? as u32),
                key: RowKey(legacy_datums(&mut br, 64)?),
                row: Row(legacy_datums(&mut br, 1024)?),
            },
            2 => RedoPayload::Update {
                table: TableId(br.varint()? as u32),
                key: RowKey(legacy_datums(&mut br, 64)?),
                new_row: Row(legacy_datums(&mut br, 1024)?),
            },
            3 => RedoPayload::Delete {
                table: TableId(br.varint()? as u32),
                key: RowKey(legacy_datums(&mut br, 64)?),
            },
            4 => RedoPayload::PendingCommit,
            5 => RedoPayload::Commit {
                commit_ts: Timestamp(br.varint()?),
            },
            6 => RedoPayload::Abort,
            11 => RedoPayload::Heartbeat {
                commit_ts: Timestamp(br.varint()?),
            },
            t => {
                return Err(WalError::Decode(format!(
                    "legacy decoder: unsupported payload tag {t}"
                )))
            }
        };
        out.push(RedoRecord { lsn, txn, payload });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdb_wal::record::encode_record;

    #[test]
    fn legacy_decode_matches_live_decoder() {
        let recs: Vec<RedoRecord> = vec![
            RedoRecord {
                lsn: Lsn(0),
                txn: TxnId(1),
                payload: RedoPayload::Insert {
                    table: TableId(3),
                    key: RowKey::single(7i64),
                    row: Row(vec![
                        Datum::Int(7),
                        Datum::Text("héllo".into()),
                        Datum::Null,
                    ]),
                },
            },
            RedoRecord {
                lsn: Lsn(1),
                txn: TxnId(1),
                payload: RedoPayload::PendingCommit,
            },
            RedoRecord {
                lsn: Lsn(2),
                txn: TxnId(1),
                payload: RedoPayload::Commit {
                    commit_ts: Timestamp(42),
                },
            },
            RedoRecord {
                lsn: Lsn(3),
                txn: TxnId(2),
                payload: RedoPayload::Delete {
                    table: TableId(3),
                    key: RowKey(vec![Datum::Int(1), Datum::Bool(true)]),
                },
            },
        ];
        let mut wire = Vec::new();
        for rec in &recs {
            encode_record(&mut wire, rec);
        }
        assert_eq!(legacy_decode_batch(&wire).unwrap(), recs);
        assert_eq!(gdb_wal::record::decode_all(&wire).unwrap(), recs);
    }

    #[test]
    fn legacy_decode_detects_corruption() {
        let rec = RedoRecord {
            lsn: Lsn(0),
            txn: TxnId(1),
            payload: RedoPayload::Commit {
                commit_ts: Timestamp(9),
            },
        };
        let mut wire = Vec::new();
        encode_record(&mut wire, &rec);
        let mid = wire.len() / 2;
        wire[mid] ^= 0x20;
        assert!(legacy_decode_batch(&wire).is_err());
    }
}

#[cfg(test)]
mod difftests {
    //! Differential property tests: the optimized live structures must
    //! behave identically to these frozen copies on randomized scripts.
    use super::*;
    use crate::lock::LockTable;
    use crate::table::Table;
    use proptest::prelude::*;

    proptest! {
        /// Arena-chained `Table` and the frozen Vec-chain table expose
        /// identical visible state under interleaved installs, reads,
        /// and vacuums.
        #[test]
        fn table_matches_reference(
            writes in proptest::collection::vec(
                (0i64..6, 1u64..80, any::<bool>()), 1..50),
            vacuums in proptest::collection::vec(1u64..90, 0..4),
        ) {
            let mut sorted = writes.clone();
            sorted.sort_by_key(|(_, ts, _)| *ts);
            let mut live = Table::new();
            let mut frozen = ReferenceTable::new();
            for (key, ts, delete) in &sorted {
                let row = if *delete { None } else {
                    Some(Row(vec![Datum::Int(*key), Datum::Int(*ts as i64)]))
                };
                live.install_version(
                    RowKey::single(*key), row.clone(), Timestamp(*ts), SimTime::ZERO,
                ).unwrap();
                frozen.install_version(
                    RowKey::single(*key), row, Timestamp(*ts), SimTime::ZERO,
                ).unwrap();
            }
            prop_assert_eq!(live.versions_installed, frozen.versions_installed);
            for &h in &vacuums {
                prop_assert_eq!(
                    live.vacuum(Timestamp(h)),
                    frozen.vacuum(Timestamp(h)),
                    "vacuum({}) removed different counts", h
                );
                prop_assert_eq!(live.key_count(), frozen.key_count());
            }
            for snapshot in 0u64..90 {
                let a: Vec<_> = live.scan(Timestamp(snapshot))
                    .iter().map(|v| (v.key.clone(), v.row.clone(), v.commit_ts)).collect();
                let b: Vec<_> = frozen.scan(Timestamp(snapshot))
                    .iter().map(|v| (v.key.clone(), v.row.clone(), v.commit_ts)).collect();
                prop_assert_eq!(a, b, "scan at {} diverged", snapshot);
            }
        }

        /// The nested fast-hash lock table and the frozen flat SipHash
        /// table produce identical outcomes, wait counts, and holders.
        #[test]
        fn lock_table_matches_reference(
            ops in proptest::collection::vec(
                (0u8..5, 0u8..3, 0i64..5, 1u64..6, 0u64..100, 0u64..140), 1..60),
        ) {
            let mut live = LockTable::new();
            let mut frozen = ReferenceLockTable::new();
            for (op, table, key, txn, now_ms, rel_ms) in ops {
                let table = TableId(table as u32);
                let key = RowKey::single(key);
                let txn = TxnId(txn);
                let now = SimTime::from_millis(now_ms);
                let rel = SimTime::from_millis(rel_ms);
                match op {
                    0 | 1 => {
                        let a = live.acquire(table, &key, txn, now, rel);
                        let b = frozen.acquire(table, &key, txn, now, rel);
                        prop_assert_eq!(a, b);
                    }
                    2 => {
                        live.extend(txn, rel);
                        frozen.extend(txn, rel);
                    }
                    3 => {
                        live.release_all(txn);
                        frozen.release_all(txn);
                    }
                    _ => {
                        live.sweep(now);
                        frozen.sweep(now);
                    }
                }
                prop_assert_eq!(live.waits, frozen.waits);
                prop_assert_eq!(live.len(), frozen.len());
                prop_assert_eq!(
                    live.holder(table, &key, now),
                    frozen.holder(table, &key, now)
                );
            }
        }
    }
}
