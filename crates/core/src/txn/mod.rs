//! Transaction execution: the [`TxnHandle`] drives SQL plans against the
//! distributed cluster, accumulating latency from every message the
//! transaction would send (shard RTTs, GTM round trips, lock waits, commit
//! waits, 2PC rounds, quorum waits). Every message goes through the typed
//! message plane ([`crate::net::MessagePlane`]), so per-[`RpcKind`]
//! traffic and latency are accounted at one chokepoint.
//!
//! The pipeline is phase-structured: begin acquires the snapshot
//! ([`TxnHandle::begin`]), the statement operations in [`ops`] accumulate
//! reads/locks/staged writes, and [`commit`] runs the explicit commit
//! phases — prepare → commit-point → commit-wait → replicate-ack — each
//! returning a phase-state struct that carries its timing boundaries.

mod commit;
mod ops;

use crate::cluster::GlobalDb;
use crate::config::RoutingPolicy;
use crate::net::RpcKind;
use crate::stats::TxnOutcome;
use gdb_model::{Datum, GdbError, GdbResult, Row, RowKey, TableId, Timestamp, TxnId};
use gdb_simnet::{SimDuration, SimTime};
use gdb_sqlengine::{execute, ExecOutput, Prepared};
use gdb_txnmgr::BeginPlan;
use gdb_wal::RedoPayload;
use std::collections::{BTreeSet, HashMap};

/// Nominal request/response payload size for point operations.
const OP_MSG_BYTES: u64 = 256;
/// Placeholder lock lease; replaced with the exact commit-apply time at
/// commit (nothing else runs between acquire and commit within one event).
const LOCK_LEASE: SimDuration = SimDuration(10_000_000_000);

#[derive(Debug, Clone)]
struct WriteOp {
    shard: usize,
    table: TableId,
    key: RowKey,
    /// `None` = delete.
    row: Option<Row>,
}

/// An open transaction bound to one computing node.
pub struct TxnHandle<'a> {
    pub(crate) db: &'a mut GlobalDb,
    cn: usize,
    txn: TxnId,
    started_at: SimTime,
    /// When snapshot acquisition finished (phase boundary for
    /// observability; the begin→begin_done interval is the
    /// `snapshot_acquire` phase).
    begin_done: SimTime,
    /// The running virtual-time cursor (start + accumulated latency).
    pub now: SimTime,
    snapshot: Timestamp,
    /// Routing epoch the CN's route table carried when this transaction
    /// began. Every shard access validates it against the shard's
    /// `owner_epoch`; a migration cutover between begin and the access
    /// yields a retryable [`GdbError::StaleRoute`].
    pub(crate) route_epoch: u64,
    /// True while this transaction reads at the RCP from replicas.
    ror: bool,
    freshness_bound: Option<SimDuration>,
    single_shard_hint: bool,
    overlay: HashMap<(TableId, RowKey), Option<Row>>,
    write_log: Vec<WriteOp>,
    first_write: HashMap<usize, SimTime>,
    locked: Vec<(usize, TableId, RowKey)>,
    shards_written: BTreeSet<usize>,
    used_replica: bool,
    finished: bool,
    /// Set once a COMMIT / COMMIT_PREPARED record has been appended to any
    /// shard's redo log: past this point a failure must not emit ABORT
    /// records (the replicas may already have replayed the commit).
    commit_appended: bool,
}

impl<'a> TxnHandle<'a> {
    pub(crate) fn begin(
        db: &'a mut GlobalDb,
        cn: usize,
        at: SimTime,
        read_only: bool,
        single_shard: bool,
    ) -> GdbResult<Self> {
        if db.topo.is_node_down(db.cns[cn].node) {
            return Err(GdbError::NodeUnavailable(format!("cn {cn} is down")));
        }
        db.sync_cn_clock(cn, at);
        let route_epoch = db.cns[cn].route_epoch;
        let mut now = at;
        let mut ror = false;
        let mut freshness_bound = None;
        let mut snapshot = Timestamp::ZERO;

        if read_only {
            if let RoutingPolicy::ReadOnReplica {
                freshness_bound: fb,
            } = db.config.routing
            {
                let rcp = db.cns[cn].rcp;
                if rcp > Timestamp::ZERO {
                    ror = true;
                    freshness_bound = fb;
                    snapshot = rcp;
                }
            }
        }
        if !ror {
            match db.cns[cn].tm.plan_begin(now, single_shard) {
                BeginPlan::ViaGtm => {
                    let cn_node = db.cns[cn].node;
                    let gtm_node = db.gtm_node;
                    let rtt = db
                        .plane
                        .rtt(&mut db.topo, RpcKind::GtmBeginTs, cn_node, gtm_node)
                        .ok_or_else(|| GdbError::NodeUnavailable("GTM unreachable".into()))?;
                    now += rtt;
                    snapshot = db.gtm.begin_snapshot();
                }
                BeginPlan::Local {
                    snapshot: s,
                    invocation_wait,
                } => {
                    now += invocation_wait;
                    snapshot = s;
                }
            }
        }

        let txn = db.next_txn_id(cn);
        Ok(TxnHandle {
            db,
            cn,
            txn,
            started_at: at,
            begin_done: now,
            now,
            snapshot,
            route_epoch,
            ror,
            freshness_bound,
            single_shard_hint: single_shard,
            overlay: HashMap::new(),
            write_log: Vec::new(),
            first_write: HashMap::new(),
            locked: Vec::new(),
            shards_written: BTreeSet::new(),
            used_replica: false,
            finished: false,
            commit_appended: false,
        })
    }

    /// The snapshot this transaction reads at.
    pub fn snapshot(&self) -> Timestamp {
        self.snapshot
    }

    /// True while reads are served from replicas at the RCP.
    pub fn is_ror(&self) -> bool {
        self.ror
    }

    /// Execute a prepared statement inside this transaction.
    pub fn execute(&mut self, prepared: &Prepared, params: &[Datum]) -> GdbResult<ExecOutput> {
        if matches!(prepared.bound, gdb_sqlengine::BoundStatement::Ddl(_)) {
            return Err(GdbError::Plan(
                "DDL cannot run inside a transaction; use Cluster::ddl".into(),
            ));
        }
        if self.ror {
            if !prepared.bound.is_read_only() {
                return Err(GdbError::Execution(
                    "write statement in a read-only (ROR) transaction".into(),
                ));
            }
            // DDL-visibility conditions (§IV-A): if the query's tables have
            // unreplayed DDL, fall back to primary reads for the whole txn.
            if !self
                .db
                .ddl
                .ror_allowed(self.snapshot, &prepared.bound.tables())
            {
                self.db.stats.ror_rejected_ddl += 1;
                self.fallback_to_primary()?;
            }
        }
        execute(&prepared.bound, params, self)
    }

    /// Downgrade an ROR transaction to primary reads (DDL gate or
    /// persistent replica blockage): acquire a normal snapshot.
    fn fallback_to_primary(&mut self) -> GdbResult<()> {
        self.ror = false;
        let db = &mut *self.db;
        match db.cns[self.cn]
            .tm
            .plan_begin(self.now, self.single_shard_hint)
        {
            BeginPlan::ViaGtm => {
                let cn_node = db.cns[self.cn].node;
                let gtm_node = db.gtm_node;
                let rtt = db
                    .plane
                    .rtt(&mut db.topo, RpcKind::GtmBeginTs, cn_node, gtm_node)
                    .ok_or_else(|| GdbError::NodeUnavailable("GTM unreachable".into()))?;
                self.now += rtt;
                self.snapshot = db.gtm.begin_snapshot();
            }
            BeginPlan::Local {
                snapshot,
                invocation_wait,
            } => {
                self.now += invocation_wait;
                self.snapshot = snapshot;
            }
        }
        Ok(())
    }

    fn abort_inner(&mut self) {
        for (shard, table, key) in std::mem::take(&mut self.locked) {
            self.db.shards[shard]
                .storage
                .locks
                .set_release(table, &key, self.txn, self.now);
        }
        for &s in &self.shards_written.clone() {
            self.db.shards[s]
                .log
                .append(self.now, self.txn, RedoPayload::Abort);
        }
        self.overlay.clear();
        self.write_log.clear();
        self.finished = true;
    }

    /// Abort the transaction: release locks, discard buffered writes, and
    /// emit ABORT records so replicas unlock the tuples. Returns the
    /// outcome so callers can record the abort in cluster statistics.
    pub fn abort(mut self) -> TxnOutcome {
        self.abort_inner();
        TxnOutcome {
            commit_ts: None,
            snapshot: self.snapshot,
            completed_at: self.now,
            latency: self.now.since(self.started_at),
            shards_written: vec![],
            used_replica: self.used_replica,
            aborted: true,
        }
    }
}
