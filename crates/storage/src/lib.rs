//! Shared-nothing MVCC storage engine (one instance per data node).
//!
//! GaussDB data nodes host horizontal portions of tables selected by the
//! distribution key (paper §II-A) and use multi-version concurrency control
//! for visibility checking. This crate implements:
//!
//! * [`table::Table`] — a B-tree keyed heap of version chains with
//!   timestamp-based snapshot visibility (the paper's R.1/R.2 rules reduce
//!   to `commit_ts ≤ snapshot_ts` once timestamps are assigned correctly).
//!   Each version also carries the *virtual time* its commit completed, so
//!   the simulation can model readers waiting on in-flight commits.
//! * [`lock::LockTable`] — row write locks with virtual-time release,
//!   giving PostgreSQL-style read-committed update semantics (writers wait
//!   for the current holder, then update the latest committed version).
//! * [`catalog::Catalog`] — table/index metadata, shared by CNs and DNs.
//! * [`engine::DataNodeStorage`] — the per-DN facade combining all of the
//!   above, plus secondary index maintenance.

pub mod catalog;
pub mod engine;
pub mod lock;
pub mod reference;
pub mod table;

pub use catalog::Catalog;
pub use engine::DataNodeStorage;
pub use lock::{LockOutcome, LockTable};
pub use table::{Table, Version, VisibleRow};

/// Metric names exported by the storage layer.
pub mod metrics {
    /// Per-shard gauge prefix: allocator bytes pinned by the shard
    /// primary's version arenas. Full name `{prefix}.s{shard}`.
    pub const ARENA_RESIDENT_BYTES_PREFIX: &str = "storage.arena_resident_bytes";

    /// The per-shard arena footprint gauge name.
    pub fn arena_resident_bytes_gauge(shard: usize) -> String {
        format!("{ARENA_RESIDENT_BYTES_PREFIX}.s{shard}")
    }
}

#[cfg(test)]
mod tests {
    /// Dashboards and the scale bench key on these names.
    #[test]
    fn metric_names_are_frozen() {
        assert_eq!(
            super::metrics::arena_resident_bytes_gauge(3),
            "storage.arena_resident_bytes.s3"
        );
    }
}
