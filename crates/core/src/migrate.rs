//! Online shard migration: snapshot copy → redo catch-up → cutover.
//!
//! Moves a shard's **primary** — or one of its **replicas** — from its
//! current data node (the *source* of the data stream is always the
//! shard's primary) to a freshly provisioned data node (the *target*)
//! without losing availability: the shard keeps serving reads and writes
//! through the snapshot and catch-up phases, and the cutover is a brief
//! DUAL-style barrier — seal the source log, drain the remaining redo
//! into the target synchronously, swap ownership, and atomically bump
//! the cluster **routing epoch**. Requests routed with a stale epoch are
//! rejected with the retryable [`GdbError::StaleRoute`] and re-routed on
//! retry.
//!
//! Migrations are grouped into **plans** ([`start_plan`]): a plan moves
//! k distinct shards (each a primary or replica move) and cuts all of
//! them over under **one** routing-epoch bump — the members copy and
//! catch up independently, park in the `Ready` phase once their barrier
//! elapses, and the last member to become ready triggers the batched
//! cutover. Replica-only plans swap replica identity without touching
//! the routing epoch (routing only names primaries).
//!
//! Per-member state machine:
//!
//! ```text
//! Idle → Snapshot → Catchup → Barrier → Ready ─┐ (all plan members ready)
//!            \          \         \            ├──→ Batched cutover
//!             +----------+---------+--→ Abort ─┘ (drop member, plan goes on)
//! ```
//!
//! Every wire interaction is typed on the message plane —
//! [`RpcKind::MigrateSnapshot`] for the storage image,
//! [`RpcKind::MigrateCatchup`] for redo batches,
//! [`RpcKind::MigrateCutover`] for the barrier round trip and the
//! routing-epoch announcement fan-out to the CNs. A crash of the source
//! or target (or a concurrent promotion replacing the source) at any
//! point aborts that member and leaves its routing/ownership exactly at
//! the source — the target applier is private state until cutover, so
//! abort is a pure drop; surviving plan members continue and cut over
//! together. After every plan completion or abort the cluster checks
//! whether a draining host has emptied and can be retired
//! ([`GlobalDb::maybe_retire_drained`] — elastic scale-in).
//!
//! The whole run is spanned: a `Migration` root whose
//! `MigrationSnapshot` / `MigrationCatchup` / `MigrationCutover`
//! children tile it exactly (aborts tile up to the abort instant).

use crate::cluster::GlobalDb;
use crate::event::CoreSim;
use crate::net::RpcKind;
use crate::shardlog::ShardLog;
use gdb_model::{GdbError, GdbResult, Timestamp};
use gdb_obs::SpanKind;
use gdb_replication::{ReplicaApplier, ShippingChannel};
use gdb_simnet::{NetNodeId, NodeKind, RegionId, SimDuration, SimTime};

/// Metric names owned by the migration executor (consumed by
/// `gdb-rebalance`'s hot-shard detector via the metrics registry).
pub mod metrics {
    /// Migrations started (snapshot phase entered).
    pub const MIGRATIONS_STARTED: &str = "rebalance.migrations_started";
    /// Migrations that reached cutover.
    pub const MIGRATIONS_COMPLETED: &str = "rebalance.migrations_completed";
    /// Migrations aborted mid-flight (ownership stayed at the source).
    pub const MIGRATIONS_ABORTED: &str = "rebalance.migrations_aborted";
    /// Current cluster routing epoch (bumped at every cutover).
    pub const ROUTING_EPOCH: &str = "rebalance.routing_epoch";
    /// Per-shard op counter prefix: `rebalance.shard_ops.<shard>`, plus
    /// the per-region split `rebalance.shard_ops.<shard>.r<region>`.
    pub const SHARD_OPS_PREFIX: &str = "rebalance.shard_ops";
    /// Per-shard payload-byte counter prefix: `rebalance.shard_bytes.<shard>`.
    pub const SHARD_BYTES_PREFIX: &str = "rebalance.shard_bytes";
}

/// Nominal on-wire bytes per stored key for the snapshot-copy estimate.
const SNAPSHOT_ROW_BYTES: u64 = 128;

/// Live per-shard load accounting: every data-node operation a
/// transaction routes to a shard is counted here (and mirrored into the
/// metrics registry at snapshot time), giving the hot-shard detector its
/// input signal.
#[derive(Debug, Default, Clone)]
pub struct ShardLoad {
    /// Data-node operations routed to this shard.
    pub ops: u64,
    /// Payload bytes of those operations.
    pub bytes: u64,
    /// Ops attributed to the submitting CN's region (indexed like
    /// [`GlobalDb::regions`]) — the region-affinity policy's signal.
    pub by_region: Vec<u64>,
}

/// What a migration moves: the shard's primary, or the replica currently
/// hosted on a specific node (identified by node, not index — promotions
/// reshuffle the replica vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationKind {
    Primary,
    Replica { node: NetNodeId },
}

/// One member of a migration plan: move `shard`'s primary (or the
/// replica on `kind`'s node) to a fresh data node on `(to_region,
/// to_host)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationSpec {
    pub shard: usize,
    pub kind: MigrationKind,
    pub to_region: RegionId,
    pub to_host: u16,
}

/// Phase of an in-flight migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// The storage image is in flight to the target.
    Snapshot,
    /// Redo batches ship each round until the backlog drains.
    Catchup,
    /// The cutover barrier round trip is in flight.
    Barrier,
    /// Barrier elapsed; parked until every plan member is ready, then the
    /// whole plan cuts over under one routing-epoch bump.
    Ready,
}

/// One in-flight migration (a member of a batched plan).
pub struct Migration {
    pub shard: usize,
    /// The data stream's source: the shard's primary for both kinds.
    pub source: NetNodeId,
    pub target: NetNodeId,
    pub target_region: RegionId,
    pub kind: MigrationKind,
    /// The batched plan this member belongs to.
    pub plan: u64,
    pub phase: MigrationPhase,
    pub started: SimTime,
    /// Set when the snapshot arrived and catch-up began.
    pub snapshot_end: Option<SimTime>,
    /// Set when the backlog drained and the barrier began.
    pub catchup_end: Option<SimTime>,
    /// Catch-up rounds shipped so far.
    pub rounds: u32,
    /// Guard for scheduled events: ticks for a finished/aborted
    /// migration carry a stale sequence number and are dropped.
    pub(crate) seq: u64,
    /// The target's building state: a resumed applier over the source
    /// snapshot, following the source redo stream via its own channel.
    pub(crate) applier: ReplicaApplier,
    pub(crate) channel: ShippingChannel,
    /// FIFO stream cursor for catch-up transmission (a saturated link
    /// queues batches, exactly like replica shipping).
    pub(crate) stream_free: SimTime,
}

/// Start migrating `shard_idx`'s primary to a freshly provisioned data
/// node on `(to_region, to_host)` at the current virtual time — a
/// single-member [`start_plan`]. Fails (without side effects) when the
/// shard is already migrating or its primary is down; once started,
/// watch [`GlobalDb::migrations`] / `rebalance.migrations_*` for the
/// outcome.
pub fn start_migration(
    db: &mut GlobalDb,
    sim: &mut CoreSim,
    shard_idx: usize,
    to_region: RegionId,
    to_host: u16,
) -> GdbResult<()> {
    start_plan(
        db,
        sim,
        vec![MigrationSpec {
            shard: shard_idx,
            kind: MigrationKind::Primary,
            to_region,
            to_host,
        }],
    )
    .map(|_| ())
}

/// Start a batched migration plan: every member is validated up front
/// (no side effects on error), then all members start copying
/// concurrently and cut over together under one routing-epoch bump.
/// A plan never moves the same shard twice, and a shard with a
/// migration already in flight cannot join a new plan.
pub fn start_plan(
    db: &mut GlobalDb,
    sim: &mut CoreSim,
    specs: Vec<MigrationSpec>,
) -> GdbResult<u64> {
    if specs.is_empty() {
        return Err(GdbError::Internal("empty migration plan".into()));
    }
    let mut seen = std::collections::HashSet::new();
    for spec in &specs {
        if spec.shard >= db.shards.len() {
            return Err(GdbError::Internal(format!("no shard {}", spec.shard)));
        }
        if !seen.insert(spec.shard) {
            return Err(GdbError::Execution(format!(
                "plan moves shard {} twice",
                spec.shard
            )));
        }
        if db.migrations.iter().any(|m| m.shard == spec.shard) {
            return Err(GdbError::Execution(format!(
                "migration of shard {} already in flight",
                spec.shard
            )));
        }
        let source = db.shards[spec.shard].primary;
        if db.topo.is_node_down(source) {
            return Err(GdbError::NodeUnavailable(format!(
                "shard {} source primary is down",
                spec.shard
            )));
        }
        if let MigrationKind::Replica { node } = spec.kind {
            if !db.shards[spec.shard]
                .replicas
                .iter()
                .any(|r| r.node == node)
            {
                return Err(GdbError::Internal(format!(
                    "node {} is not a replica of shard {}",
                    node.0, spec.shard
                )));
            }
        }
        if db
            .topo
            .is_partitioned(db.topo.node_region(source), spec.to_region)
        {
            return Err(GdbError::NodeUnavailable(format!(
                "shard {} target region unreachable from source",
                spec.shard
            )));
        }
    }
    db.plan_seq += 1;
    let plan = db.plan_seq;
    for spec in specs {
        start_member(db, sim, plan, spec);
    }
    Ok(plan)
}

/// Start one plan member: provision the target, cut the snapshot, and
/// ship the storage image (preconditions were validated by
/// [`start_plan`]).
fn start_member(db: &mut GlobalDb, sim: &mut CoreSim, plan: u64, spec: MigrationSpec) {
    let now = sim.now();
    let shard_idx = spec.shard;
    let source = db.shards[shard_idx].primary;
    // Provision the target DN. `add_node` draws no RNG, so an idle run
    // (no migration scheduled) stays trace-identical.
    let node_kind = match spec.kind {
        MigrationKind::Primary => NodeKind::DataNodePrimary,
        MigrationKind::Replica { .. } => NodeKind::DataNodeReplica,
    };
    let target = db.topo.add_node(spec.to_region, spec.to_host, node_kind);

    // Snapshot cut: seal the *entire* staged log so the stream cut
    // aligns with the storage snapshot (same rule as promote/rejoin —
    // the storage already holds effects of records staged with future
    // apply instants).
    db.shards[shard_idx].log.seal_all(now);
    let head = db.shards[shard_idx].log.sealed_head();
    let shard = &db.shards[shard_idx];
    let max_ts = shard
        .replicas
        .iter()
        .map(|r| r.applier.max_commit_ts())
        .max()
        .unwrap_or(Timestamp::ZERO);
    let applier = ReplicaApplier::resumed(shard.storage.clone(), head, max_ts);
    let mut channel = ShippingChannel::new(db.config.codec);
    channel.rewind(head);

    // Ship the storage image: a 1-byte propagation probe plus explicit
    // transmission time, remaining bytes accounted without a second
    // latency draw (the log-shipping cost model).
    let snapshot_bytes =
        (db.shards[shard_idx].storage.total_keys() as u64).max(1) * SNAPSHOT_ROW_BYTES;
    let Some(propagation) =
        db.plane
            .send(&mut db.topo, RpcKind::MigrateSnapshot, source, target, 1)
    else {
        // Validated reachable above; a racing fault still loses the
        // member without ever admitting it to the plan.
        db.stats.migrations_started += 1;
        db.stats.migrations_aborted += 1;
        db.last_migration_aborted = Some((shard_idx, "target unreachable".to_string()));
        return;
    };
    let link = db
        .topo
        .link(db.topo.node_region(source), db.topo.node_region(target));
    let tx = SimDuration::from_secs_f64(
        snapshot_bytes as f64 / link.effective_bandwidth().max(1) as f64,
    );
    db.plane.charge_bytes(
        &mut db.topo,
        RpcKind::MigrateSnapshot,
        source,
        target,
        snapshot_bytes.saturating_sub(1),
    );
    let arrive = now + tx + propagation;

    db.migration_seq += 1;
    let seq = db.migration_seq;
    db.migrations.push(Migration {
        shard: shard_idx,
        source,
        target,
        target_region: spec.to_region,
        kind: spec.kind,
        plan,
        phase: MigrationPhase::Snapshot,
        started: now,
        snapshot_end: None,
        catchup_end: None,
        rounds: 0,
        seq,
        applier,
        channel,
        stream_free: arrive,
    });
    db.stats.migrations_started += 1;
    sim.schedule_at(arrive, move |w: &mut GlobalDb, sim| {
        migration_tick(w, sim, seq);
    });
}

/// Fault guards for one member: a dead endpoint, a promotion that
/// replaced the source, or (replica moves) a promotion that consumed
/// the replica being replaced.
fn guard_failure(db: &GlobalDb, m: &Migration) -> Option<&'static str> {
    if db.topo.is_node_down(m.source) {
        return Some("source down");
    }
    if db.topo.is_node_down(m.target) {
        return Some("target down");
    }
    if db.shards[m.shard].primary != m.source {
        return Some("source replaced by failover");
    }
    if let MigrationKind::Replica { node } = m.kind {
        if !db.shards[m.shard].replicas.iter().any(|r| r.node == node) {
            return Some("replaced replica left the group");
        }
    }
    None
}

/// One step of a member's state machine (snapshot arrival, a catch-up
/// round, or the cutover barrier elapsing).
pub(crate) fn migration_tick(db: &mut GlobalDb, sim: &mut CoreSim, seq: u64) {
    let now = sim.now();
    // Stale tick for a migration that already finished or aborted.
    let Some(idx) = db.migrations.iter().position(|m| m.seq == seq) else {
        return;
    };
    if let Some(reason) = guard_failure(db, &db.migrations[idx]) {
        let m = db.migrations.remove(idx);
        abort_member(db, sim, m, now, reason);
        return;
    }
    match db.migrations[idx].phase {
        MigrationPhase::Snapshot => {
            let m = &mut db.migrations[idx];
            m.phase = MigrationPhase::Catchup;
            m.snapshot_end = Some(now);
            let interval = db.config.flush_interval;
            sim.schedule_after(interval, move |w: &mut GlobalDb, sim| {
                migration_tick(w, sim, seq);
            });
        }
        MigrationPhase::Catchup => catchup_round(db, sim, idx, seq, now),
        MigrationPhase::Barrier => {
            let m = &mut db.migrations[idx];
            m.phase = MigrationPhase::Ready;
            let plan = m.plan;
            maybe_cutover_plan(db, sim, plan, now);
        }
        // Ready members have no scheduled ticks; a stray one is inert.
        MigrationPhase::Ready => {}
    }
}

/// One catch-up round: seal, drain a batch off the source log, ship it
/// to the target, apply on arrival. Catch-up has converged — and the
/// barrier round trip starts — when the backlog is empty *or* the round
/// shipped nothing but idle heartbeats: every shard log receives a
/// heartbeat record each heartbeat interval, so a cross-region stream
/// whose round spacing exceeds that cadence would otherwise chase the
/// heartbeat tail forever. The residue is handled by the cutover's
/// synchronous final drain either way.
fn catchup_round(db: &mut GlobalDb, sim: &mut CoreSim, idx: usize, seq: u64, now: SimTime) {
    // Take the migration out so the shard log and the migration channel
    // can be borrowed together.
    let mut m = db.migrations.remove(idx);
    db.shards[m.shard].log.seal_upto(now);
    let wire = m.channel.drain(db.shards[m.shard].log.sealed());
    match wire {
        Some(wire) => {
            let Some(propagation) =
                db.plane
                    .send(&mut db.topo, RpcKind::MigrateCatchup, m.source, m.target, 1)
            else {
                abort_member(db, sim, m, now, "target unreachable during catch-up");
                return;
            };
            let link = db
                .topo
                .link(db.topo.node_region(m.source), db.topo.node_region(m.target));
            let tx = SimDuration::from_secs_f64(
                wire.wire_bytes as f64 / link.effective_bandwidth().max(1) as f64,
            );
            db.plane.charge_bytes(
                &mut db.topo,
                RpcKind::MigrateCatchup,
                m.source,
                m.target,
                (wire.wire_bytes as u64).saturating_sub(1),
            );
            let start = now.max(m.stream_free);
            m.stream_free = start + tx;
            let arrive = m.stream_free + propagation;
            let caught_up = wire
                .batch
                .records
                .iter()
                .all(|r| matches!(r.payload, gdb_wal::RedoPayload::Heartbeat { .. }));
            // The target applies the batch at its arrival instant; the
            // records carry their own commit timestamps, so applying
            // "in the future" is the same contract as replica replay.
            if let Err(e) = m.applier.apply_batch(&wire.batch.records, arrive) {
                panic!("migration catch-up replay failed (shard {}): {e}", m.shard);
            }
            m.rounds += 1;
            db.migrations.insert(idx, m);
            if caught_up {
                // Run the barrier after this last batch lands.
                begin_barrier(db, sim, idx, seq, now, arrive);
            } else {
                let interval = db.config.flush_interval;
                let next = arrive.max(now + interval);
                sim.schedule_at(next, move |w: &mut GlobalDb, sim| {
                    migration_tick(w, sim, seq);
                });
            }
        }
        None => {
            db.migrations.insert(idx, m);
            begin_barrier(db, sim, idx, seq, now, now);
        }
    }
}

/// Start the cutover barrier: a round trip that stops admission of new
/// source-side redo (writers keep committing on the source; the final
/// drain at the cutover instant catches them). The barrier begins once
/// the last catch-up batch has landed (`from`).
fn begin_barrier(
    db: &mut GlobalDb,
    sim: &mut CoreSim,
    idx: usize,
    seq: u64,
    now: SimTime,
    from: SimTime,
) {
    let m = &mut db.migrations[idx];
    let (source, target) = (m.source, m.target);
    let Some(rtt) = db
        .plane
        .rtt(&mut db.topo, RpcKind::MigrateCutover, source, target)
    else {
        let m = db.migrations.remove(idx);
        abort_member(db, sim, m, now, "barrier round trip failed");
        return;
    };
    let m = &mut db.migrations[idx];
    m.phase = MigrationPhase::Barrier;
    m.catchup_end = Some(now);
    sim.schedule_at(from.max(now) + rtt, move |w: &mut GlobalDb, sim| {
        migration_tick(w, sim, seq);
    });
}

/// Cut the whole plan over if every surviving member is `Ready`.
fn maybe_cutover_plan(db: &mut GlobalDb, sim: &mut CoreSim, plan: u64, now: SimTime) {
    let mut any = false;
    for m in &db.migrations {
        if m.plan == plan {
            any = true;
            if m.phase != MigrationPhase::Ready {
                return;
            }
        }
    }
    if any {
        cutover_plan(db, sim, plan, now);
    }
}

/// The batched cutover instant: per member, seal the source log, drain
/// the remaining redo into the target synchronously, and swap ownership
/// (primary moves) or replica identity (replica moves); then bump the
/// routing epoch **once** (iff a primary moved), rebuild the RCP groups
/// once, and announce the new route table to the CNs once.
fn cutover_plan(db: &mut GlobalDb, sim: &mut CoreSim, plan: u64, now: SimTime) {
    // Pull every plan member out, preserving start order.
    let mut members = Vec::new();
    let mut i = 0;
    while i < db.migrations.len() {
        if db.migrations[i].plan == plan {
            members.push(db.migrations.remove(i));
        } else {
            i += 1;
        }
    }
    let mut primary_moved: Vec<usize> = Vec::new();
    let mut announce_from = None;
    let mut completed_any = false;
    let codec = db.config.codec;
    for mut m in members {
        // Guard re-check at the cutover instant: a Ready member has no
        // scheduled tick, so a source/target crash while it waited for
        // its plan-mates surfaces here.
        if let Some(reason) = guard_failure(db, &m) {
            record_abort(db, &m, now, reason);
            continue;
        }
        // Final drain: everything the source accepted before this
        // instant — including records staged with future apply instants
        // (their commit processing already ran synchronously) — moves to
        // the target.
        db.shards[m.shard].log.seal_all(now);
        while let Some(wire) = m.channel.drain(db.shards[m.shard].log.sealed()) {
            db.plane.charge_bytes(
                &mut db.topo,
                RpcKind::MigrateCutover,
                m.source,
                m.target,
                wire.wire_bytes as u64,
            );
            if let Err(e) = m.applier.apply_batch(&wire.batch.records, now) {
                panic!("migration cutover replay failed (shard {}): {e}", m.shard);
            }
        }

        db.stats.migrations_completed += 1;
        db.last_migration_completed = Some(m.shard);
        record_migration_spans(db, &m, now);
        completed_any = true;

        let Migration {
            shard: shard_idx,
            target,
            target_region,
            kind,
            applier,
            channel,
            ..
        } = m;
        match kind {
            MigrationKind::Primary => {
                let shard = &mut db.shards[shard_idx];
                // The source's row locks outlive the cutover for the same
                // reason they outlive a promotion: drained records can
                // carry apply instants (and commit timestamps) later than
                // the cutover instant, and only the lock release times
                // make the next writer of such a key wait them out.
                let old_locks = std::mem::take(&mut shard.storage.locks);
                shard.primary = target;
                shard.region = target_region;
                shard.storage = applier.into_storage();
                shard.storage.locks = old_locks;
                shard.log = ShardLog::new();
                // Replicas full-resync from the new primary: fresh applier
                // over a snapshot of its state, fresh channel on the new
                // (empty) redo stream, new incarnation (orphans in-flight
                // deliveries).
                for replica in &mut shard.replicas {
                    replica.applier = ReplicaApplier::new(shard.storage.clone());
                    replica.channel = ShippingChannel::new(codec);
                    replica.busy_until = now;
                    replica.stream_free = now;
                    replica.last_arrival = now;
                    replica.epoch += 1;
                }
                primary_moved.push(shard_idx);
                announce_from = Some(target);
            }
            MigrationKind::Replica { node: old } => {
                let shard = &mut db.shards[shard_idx];
                let replica = shard
                    .replicas
                    .iter_mut()
                    .find(|r| r.node == old)
                    .expect("guard checked the replaced replica is present");
                // Swap replica identity in place: the built applier takes
                // over, the migration channel continues from the sealed
                // head it drained to, and the incarnation bump orphans
                // deliveries still in flight to the old node.
                replica.node = target;
                replica.region = target_region;
                replica.applier = applier;
                replica.channel = channel;
                replica.busy_until = now;
                replica.stream_free = now;
                replica.last_arrival = now;
                replica.epoch += 1;
                // The replaced node leaves the cluster for good.
                db.topo.retire_node(old);
            }
        }
    }

    if !primary_moved.is_empty() {
        // The atomic routing-epoch bump: this instant is the
        // serialization point between old-route and new-route requests —
        // one bump for the whole batch.
        db.routing_epoch += 1;
        let epoch = db.routing_epoch;
        for s in primary_moved {
            db.shards[s].owner_epoch = epoch;
        }
        // Placement changed: refresh the flat O(1) routing table in the
        // same instant as the epoch bump (one rebuild per batch).
        db.rebuild_routes();
        // Announce the new route table to every CN (real latency; an
        // unreachable CN learns the epoch from its first stale-route
        // reject instead).
        let from = announce_from.expect("a primary moved");
        for cn in 0..db.cns.len() {
            let to = db.cns[cn].node;
            if let Some(delay) = db
                .plane
                .send(&mut db.topo, RpcKind::MigrateCutover, from, to, 128)
            {
                sim.schedule_after(delay, move |w: &mut GlobalDb, _sim| {
                    let e = &mut w.cns[cn].route_epoch;
                    *e = (*e).max(epoch);
                });
            }
        }
    }
    if completed_any {
        // Replica membership/regions may have changed: rebuild the
        // per-region RCP groups once for the whole batch.
        db.rebuild_rcp_groups();
    }
    db.maybe_retire_drained();
}

/// Record one member's abort (stats + spans). Ownership never moved, so
/// no shard/routing state changes.
fn record_abort(db: &mut GlobalDb, m: &Migration, now: SimTime, reason: &str) {
    db.stats.migrations_aborted += 1;
    db.last_migration_aborted = Some((m.shard, reason.to_string()));
    record_migration_spans(db, m, now);
}

/// Abort one member (already removed from [`GlobalDb::migrations`]):
/// drop the target-side state, then re-check its plan — the surviving
/// members may all be `Ready` and waiting on this one — and the drain
/// bookkeeping.
fn abort_member(db: &mut GlobalDb, sim: &mut CoreSim, m: Migration, now: SimTime, reason: &str) {
    let plan = m.plan;
    record_abort(db, &m, now, reason);
    maybe_cutover_plan(db, sim, plan, now);
    db.maybe_retire_drained();
}

/// Record the migration's span tree: a `Migration` root whose phase
/// children tile `[started, completed]` exactly (aborts tile up to the
/// abort instant).
fn record_migration_spans(db: &mut GlobalDb, m: &Migration, completed: SimTime) {
    let label = m.shard as u64;
    let tracer = &mut db.obs.tracer;
    let root = tracer.record(SpanKind::Migration, label, m.started, completed);
    let snap_end = m.snapshot_end.unwrap_or(completed).min(completed);
    tracer.record_child(
        root,
        SpanKind::MigrationSnapshot,
        label,
        m.started,
        snap_end,
    );
    if m.snapshot_end.is_some() {
        let catch_end = m.catchup_end.unwrap_or(completed).min(completed);
        tracer.record_child(root, SpanKind::MigrationCatchup, label, snap_end, catch_end);
        if m.catchup_end.is_some() {
            tracer.record_child(
                root,
                SpanKind::MigrationCutover,
                label,
                catch_end,
                completed,
            );
        }
    }
}
