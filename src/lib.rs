//! Umbrella crate for the GaussDB-Global reproduction: re-exports the
//! public API of every subsystem crate. See README.md for a tour.
pub use gdb_compress as compress;
pub use gdb_consistency as consistency;
pub use gdb_model as model;
pub use gdb_replication as replication;
pub use gdb_router as router;
pub use gdb_simclock as simclock;
pub use gdb_simnet as simnet;
pub use gdb_sqlengine as sqlengine;
pub use gdb_storage as storage;
pub use gdb_txnmgr as txnmgr;
pub use gdb_wal as wal;
pub use gdb_workloads as workloads;
pub use globaldb::*;
