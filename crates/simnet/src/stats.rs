//! Small statistics helpers shared by the workload drivers and benches:
//! latency histograms with percentile queries, and throughput counters.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A latency recorder with exact percentiles (stores all samples; workloads
/// here are ≤ a few million samples, so this is fine and precise).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyHistogram {
    samples_us: Vec<u64>,
    sorted: bool,
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, d: SimDuration) {
        self.samples_us.push(d.as_micros());
        self.sorted = false;
    }

    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples_us.sort_unstable();
            self.sorted = true;
        }
    }

    /// The q-th percentile (q in 0..=100), using nearest-rank.
    pub fn percentile(&mut self, q: f64) -> SimDuration {
        if self.samples_us.is_empty() {
            return SimDuration::ZERO;
        }
        self.ensure_sorted();
        let n = self.samples_us.len();
        let rank = ((q / 100.0) * n as f64).ceil().max(1.0) as usize;
        SimDuration::from_micros(self.samples_us[rank.min(n) - 1])
    }

    pub fn mean(&self) -> SimDuration {
        if self.samples_us.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u64 = self.samples_us.iter().sum();
        SimDuration::from_micros(sum / self.samples_us.len() as u64)
    }

    pub fn max(&mut self) -> SimDuration {
        self.ensure_sorted();
        SimDuration::from_micros(self.samples_us.last().copied().unwrap_or(0))
    }

    pub fn min(&mut self) -> SimDuration {
        self.ensure_sorted();
        SimDuration::from_micros(self.samples_us.first().copied().unwrap_or(0))
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.samples_us.extend_from_slice(&other.samples_us);
        self.sorted = false;
    }
}

/// A windowed throughput counter: events per virtual second.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Throughput {
    pub count: u64,
    pub elapsed: SimDuration,
}

impl Throughput {
    pub fn per_second(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.count as f64 / s
        }
    }

    /// TPC-C style transactions-per-minute.
    pub fn per_minute(&self) -> f64 {
        self.per_second() * 60.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.percentile(50.0), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert!(h.is_empty());
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut h = LatencyHistogram::new();
        for ms in 1..=100u64 {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.percentile(50.0).as_millis(), 50);
        assert_eq!(h.percentile(99.0).as_millis(), 99);
        assert_eq!(h.percentile(100.0).as_millis(), 100);
        assert_eq!(h.min().as_millis(), 1);
        assert_eq!(h.max().as_millis(), 100);
        assert_eq!(h.mean().as_micros(), 50_500);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_millis(1));
        b.record(SimDuration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.max().as_millis(), 3);
    }

    #[test]
    fn throughput_math() {
        let t = Throughput {
            count: 600,
            elapsed: SimDuration::from_secs(60),
        };
        assert!((t.per_second() - 10.0).abs() < 1e-9);
        assert!((t.per_minute() - 600.0).abs() < 1e-9);
        let z = Throughput::default();
        assert_eq!(z.per_second(), 0.0);
    }
}
