//! Real transports: in-process channels ([`ThreadTransport`]) and
//! loopback TCP ([`TcpTransport`]).
//!
//! Both implement [`globaldb::Transport`] over the same plan:
//!
//! 1. consult the shared [`Topology`] — down nodes and region
//!    partitions make a message undeliverable exactly as in sim;
//! 2. consult the [`FaultController`] — realnet-native link drops kill
//!    the delivery, link delays ride along in the frame header and are
//!    physically slept by the destination silo;
//! 3. ship the frame, wait for the ack, and charge the *measured*
//!    wall-clock round trip to virtual time.
//!
//! Neither path ever touches the topology's RNG (`one_way` is sim-only),
//! so installing a real transport cannot perturb sim traces; accounting
//! goes through [`Topology::record_delivery`].

use crate::fault::FaultController;
use crate::membership::StaticMembership;
use crate::silo::{handle_frame, SharedSilo, SiloState};
use crate::wire::{self, Request};
use gdb_simclock::WallClock;
use gdb_simnet::{SimDuration, Topology};
use globaldb::{Envelope, Transport};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Decide where an envelope goes and what fault-injected delay rides
/// along, or `None` if it is undeliverable. Shared by both transports so
/// they enact identical fault semantics.
///
/// Same-silo traffic gets no injected delay: `tc`-style shaping applies
/// to the inter-host network interface, and `Topology::one_way` likewise
/// routes same-host messages through the loopback path.
fn plan_delivery(
    topo: &Topology,
    membership: &StaticMembership,
    faults: &FaultController,
    env: &Envelope,
) -> Option<(usize, u64)> {
    if !topo.deliverable(env.from, env.to) {
        return None;
    }
    let src = membership.silo_of(env.from);
    let dst = membership.silo_of(env.to);
    if src == dst {
        return Some((dst, 0));
    }
    let (ha, hb) = (membership.host_of_silo(src), membership.host_of_silo(dst));
    if faults.is_dropped(ha, hb) {
        return None;
    }
    let extra = topo.injected_delay().as_nanos() + faults.delay_ns(ha, hb);
    Some((dst, extra))
}

/// Build the wire request for an envelope (monotonic per-transport seq).
fn make_request(env: &Envelope, seq: u64, delay_ns: u64) -> Request {
    Request {
        kind: env.kind,
        from: env.from,
        to: env.to,
        seq,
        declared: env.bytes,
        delay_ns,
    }
}

fn check_ack(ack: &wire::Ack, seq: u64, who: &str) {
    if ack.seq != seq {
        panic!("{who}: ack out of sequence: sent {seq}, got {}", ack.seq);
    }
    if !ack.ok {
        // Membership covers every topology node, so a rejected route is a
        // wiring bug; the silo still tallied the frame, keep counters
        // consistent but be loud.
        eprintln!("{who}: silo rejected routed frame (seq {seq})");
    }
}

// ---------------------------------------------------------------------------
// ThreadTransport
// ---------------------------------------------------------------------------

struct SiloMsg {
    /// Frame body (length prefix stripped).
    body: Vec<u8>,
    /// Where to send the encoded ack.
    reply: Sender<Vec<u8>>,
}

/// Each silo is an OS thread serving a channel of frames. The stepping
/// stone between sim and sockets: real threads and measured wall-clock
/// delays, in-process delivery.
pub struct ThreadTransport {
    membership: StaticMembership,
    faults: FaultController,
    silos: Vec<SharedSilo>,
    senders: Vec<Sender<SiloMsg>>,
    threads: Vec<JoinHandle<()>>,
    /// One shared reply pair — the driver issues requests strictly
    /// sequentially, so acks cannot interleave.
    reply_tx: Sender<Vec<u8>>,
    reply_rx: Receiver<Vec<u8>>,
    seq: u64,
    down: bool,
}

impl ThreadTransport {
    /// Spawn one serving thread per silo of `membership`.
    pub fn launch(membership: StaticMembership, faults: FaultController, clock: WallClock) -> Self {
        let mut silos = Vec::new();
        let mut senders = Vec::new();
        let mut threads = Vec::new();
        for spec in membership.silos() {
            let silo = SiloState::new(spec.clone(), clock);
            let (tx, rx) = channel::<SiloMsg>();
            let served = Arc::clone(&silo);
            let host = spec.host;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("silo-{host}"))
                    .spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            match handle_frame(&served, &msg.body) {
                                Some(ack) => {
                                    // Driver gone mid-ack means shutdown
                                    // already started; just exit.
                                    if msg.reply.send(ack).is_err() {
                                        break;
                                    }
                                }
                                None => break,
                            }
                        }
                    })
                    .expect("spawn silo thread"),
            );
            silos.push(silo);
            senders.push(tx);
        }
        let (reply_tx, reply_rx) = channel();
        ThreadTransport {
            membership,
            faults,
            silos,
            senders,
            threads,
            reply_tx,
            reply_rx,
            seq: 0,
            down: false,
        }
    }

    /// Handles on the running silos (for end-of-run verification).
    pub fn states(&self) -> Vec<SharedSilo> {
        self.silos.iter().map(Arc::clone).collect()
    }

    pub fn fault_controller(&self) -> FaultController {
        self.faults.clone()
    }
}

impl Transport for ThreadTransport {
    fn name(&self) -> &'static str {
        "thread"
    }

    fn deliver(&mut self, topo: &mut Topology, env: Envelope) -> Option<SimDuration> {
        let (dst, delay_ns) = plan_delivery(topo, &self.membership, &self.faults, &env)?;
        self.seq += 1;
        let req = make_request(&env, self.seq, delay_ns);
        let encoded = wire::encode_request(&req);
        let body = wire::read_frame(&mut &encoded[..]).expect("self-encoded frame");
        let start = Instant::now();
        self.senders[dst]
            .send(SiloMsg {
                body,
                reply: self.reply_tx.clone(),
            })
            .ok()?;
        let ack_encoded = self.reply_rx.recv().ok()?;
        let ack_body = wire::read_frame(&mut &ack_encoded[..]).ok()?;
        let ack = wire::decode_ack(&ack_body).ok()?;
        check_ack(&ack, self.seq, "thread transport");
        let measured = start.elapsed().as_nanos() as u64;
        topo.record_delivery(env.from, env.to, env.bytes);
        Some(SimDuration::from_nanos(measured))
    }

    fn shutdown(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        let shutdown = wire::encode_shutdown();
        let body = wire::read_frame(&mut &shutdown[..]).expect("shutdown frame");
        for tx in self.senders.drain(..) {
            let _ = tx.send(SiloMsg {
                body: body.clone(),
                reply: self.reply_tx.clone(),
            });
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ThreadTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// TcpTransport
// ---------------------------------------------------------------------------

/// Per-silo accept loop state shared with the listener thread.
struct TcpSilo {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Each silo runs a loopback-TCP accept loop; envelopes travel as
/// length-prefixed frames over real sockets with Nagle disabled.
pub struct TcpTransport {
    membership: StaticMembership,
    faults: FaultController,
    silos: Vec<SharedSilo>,
    listeners: Vec<TcpSilo>,
    /// Lazily-connected client stream per destination silo.
    streams: Vec<Option<TcpStream>>,
    seq: u64,
    down: bool,
}

const IO_TIMEOUT: Duration = Duration::from_secs(10);

fn serve_connection(silo: SharedSilo, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    loop {
        let body = match wire::read_frame(&mut stream) {
            Ok(b) => b,
            Err(_) => return, // peer closed (or corrupt length): drop conn
        };
        match handle_frame(&silo, &body) {
            Some(ack) => {
                if wire::write_frame(&mut stream, &ack).is_err() {
                    return;
                }
            }
            None => return, // shutdown sentinel
        }
    }
}

impl TcpTransport {
    /// Bind one loopback listener per silo and start its accept loop.
    pub fn launch(
        membership: StaticMembership,
        faults: FaultController,
        clock: WallClock,
    ) -> std::io::Result<Self> {
        let mut silos = Vec::new();
        let mut listeners = Vec::new();
        for spec in membership.silos() {
            let silo = SiloState::new(spec.clone(), clock);
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            let stop = Arc::new(AtomicBool::new(false));
            let served = Arc::clone(&silo);
            let stop2 = Arc::clone(&stop);
            let host = spec.host;
            let accept_thread = std::thread::Builder::new()
                .name(format!("silo-{host}-accept"))
                .spawn(move || {
                    let mut conns: Vec<JoinHandle<()>> = Vec::new();
                    while let Ok((stream, _)) = listener.accept() {
                        if stop2.load(Ordering::SeqCst) {
                            break; // the wake-up dummy connect
                        }
                        let s = Arc::clone(&served);
                        conns.push(std::thread::spawn(move || serve_connection(s, stream)));
                    }
                    for c in conns {
                        let _ = c.join();
                    }
                })?;
            silos.push(silo);
            listeners.push(TcpSilo {
                addr,
                stop,
                accept_thread: Some(accept_thread),
            });
        }
        let streams = (0..listeners.len()).map(|_| None).collect();
        Ok(TcpTransport {
            membership,
            faults,
            silos,
            listeners,
            streams,
            seq: 0,
            down: false,
        })
    }

    /// Handles on the running silos (for end-of-run verification).
    pub fn states(&self) -> Vec<SharedSilo> {
        self.silos.iter().map(Arc::clone).collect()
    }

    pub fn fault_controller(&self) -> FaultController {
        self.faults.clone()
    }

    fn stream_to(&mut self, silo: usize) -> Option<&mut TcpStream> {
        if self.streams[silo].is_none() {
            let stream = TcpStream::connect(self.listeners[silo].addr).ok()?;
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
            let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
            self.streams[silo] = Some(stream);
        }
        self.streams[silo].as_mut()
    }

    fn round_trip(&mut self, dst: usize, encoded: &[u8], seq: u64) -> Option<u64> {
        let stream = self.stream_to(dst)?;
        let start = Instant::now();
        let io = (|| -> std::io::Result<wire::Ack> {
            stream.write_all(encoded)?;
            stream.flush()?;
            let body = wire::read_frame(stream)?;
            wire::decode_ack(&body)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
        })();
        match io {
            Ok(ack) => {
                check_ack(&ack, seq, "tcp transport");
                Some(start.elapsed().as_nanos() as u64)
            }
            Err(_) => {
                // Broken pipe / timeout: drop the stream so the next
                // delivery reconnects, report undeliverable.
                self.streams[dst] = None;
                None
            }
        }
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn deliver(&mut self, topo: &mut Topology, env: Envelope) -> Option<SimDuration> {
        let (dst, delay_ns) = plan_delivery(topo, &self.membership, &self.faults, &env)?;
        self.seq += 1;
        let req = make_request(&env, self.seq, delay_ns);
        let encoded = wire::encode_request(&req);
        let measured = self.round_trip(dst, &encoded, self.seq)?;
        topo.record_delivery(env.from, env.to, env.bytes);
        Some(SimDuration::from_nanos(measured))
    }

    fn shutdown(&mut self) {
        if self.down {
            return;
        }
        self.down = true;
        // 1. Shutdown frame down every open client stream, then close it —
        //    the serving loop exits on the sentinel, others on EOF.
        let frame = wire::encode_shutdown();
        for s in self.streams.iter_mut() {
            if let Some(mut stream) = s.take() {
                let _ = stream.write_all(&frame);
                let _ = stream.flush();
            }
        }
        // 2. Stop flags + a dummy connect to wake each accept loop.
        for l in &self.listeners {
            l.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(l.addr);
        }
        // 3. Join accept loops (each joins its connection handlers).
        for l in self.listeners.iter_mut() {
            if let Some(t) = l.accept_thread.take() {
                let _ = t.join();
            }
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use globaldb::{ClusterConfig, RpcKind};

    fn fixture() -> (Topology, StaticMembership) {
        let (topo, _) = ClusterConfig::globaldb_three_city().build_topology();
        let m = StaticMembership::from_topology(&topo);
        (topo, m)
    }

    /// A cross-silo envelope between the first two silos' first nodes.
    fn cross_silo_env(m: &StaticMembership) -> Envelope {
        let from = m.silos()[0].nodes[0].0;
        let to = m.silos()[1].nodes[0].0;
        Envelope {
            kind: RpcKind::GtmBeginTs,
            from,
            to,
            bytes: 96,
        }
    }

    fn exercise(t: &mut dyn Transport, topo: &mut Topology, m: &StaticMembership) {
        let env = cross_silo_env(m);
        for i in 1..=5u64 {
            let d = t.deliver(topo, env).expect("healthy link delivers");
            assert!(d.as_nanos() > 0, "round trip {i} must take real time");
        }
        assert_eq!(topo.total_stats().messages, 5);
    }

    #[test]
    fn thread_transport_delivers_and_tallies() {
        let (mut topo, m) = fixture();
        let mut t =
            ThreadTransport::launch(m.clone(), FaultController::default(), WallClock::new());
        exercise(&mut t, &mut topo, &m);
        let states = t.states();
        t.shutdown();
        let dst = m.silo_of(cross_silo_env(&m).to);
        let s = states[dst].lock().unwrap();
        assert_eq!(s.stats.msgs, 5);
        assert_eq!(s.stats.per_kind[RpcKind::GtmBeginTs.index()], 5);
        assert_eq!(s.stats.bytes, 5 * 96);
    }

    #[test]
    fn tcp_transport_delivers_over_real_sockets() {
        let (mut topo, m) = fixture();
        let mut t = TcpTransport::launch(m.clone(), FaultController::default(), WallClock::new())
            .expect("bind loopback");
        exercise(&mut t, &mut topo, &m);
        let states = t.states();
        t.shutdown();
        t.shutdown(); // idempotent
        let dst = m.silo_of(cross_silo_env(&m).to);
        assert_eq!(states[dst].lock().unwrap().stats.msgs, 5);
    }

    #[test]
    fn dropped_link_makes_messages_undeliverable() {
        let (mut topo, m) = fixture();
        let faults = FaultController::default();
        let mut t = ThreadTransport::launch(m.clone(), faults.clone(), WallClock::new());
        let env = cross_silo_env(&m);
        let (ha, hb) = (
            m.host_of_silo(m.silo_of(env.from)),
            m.host_of_silo(m.silo_of(env.to)),
        );
        faults.drop_link(ha, hb);
        assert!(t.deliver(&mut topo, env).is_none(), "dropped link");
        faults.heal_link(ha, hb);
        assert!(t.deliver(&mut topo, env).is_some(), "healed link");
        assert_eq!(topo.total_stats().messages, 1, "drops are not accounted");
    }

    #[test]
    fn link_delay_is_physically_enacted() {
        let (mut topo, m) = fixture();
        let faults = FaultController::default();
        let mut t = TcpTransport::launch(m.clone(), faults.clone(), WallClock::new())
            .expect("bind loopback");
        let env = cross_silo_env(&m);
        let (ha, hb) = (
            m.host_of_silo(m.silo_of(env.from)),
            m.host_of_silo(m.silo_of(env.to)),
        );
        faults.set_link_delay(ha, hb, SimDuration::from_millis(5));
        let d = t.deliver(&mut topo, env).expect("delayed but deliverable");
        assert!(
            d.as_nanos() >= 5_000_000,
            "measured {}ns must include the 5ms link delay",
            d.as_nanos()
        );
        faults.clear_link_delay(ha, hb);
        let d = t.deliver(&mut topo, env).unwrap();
        assert!(
            d.as_nanos() < 5_000_000,
            "cleared delay, got {}ns",
            d.as_nanos()
        );
    }

    #[test]
    fn partitioned_topology_blocks_real_delivery() {
        let (mut topo, m) = fixture();
        let mut t =
            ThreadTransport::launch(m.clone(), FaultController::default(), WallClock::new());
        let env = cross_silo_env(&m);
        let (ra, rb) = (topo.node_region(env.from), topo.node_region(env.to));
        topo.partition(ra, rb);
        assert!(t.deliver(&mut topo, env).is_none(), "partitioned regions");
        topo.heal(ra, rb);
        assert!(t.deliver(&mut topo, env).is_some(), "healed partition");
    }
}
