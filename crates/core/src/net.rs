//! The typed RPC message plane.
//!
//! Every wire interaction in the system is one of a small closed set of
//! [`RpcKind`]s, and every latency/byte charge for those interactions
//! funnels through a single chokepoint — [`MessagePlane::charge`] — so
//! that (a) the cost model is applied uniformly, (b) per-kind message and
//! byte counters plus delay histograms come for free, and (c) each
//! counter also exists with a per-region-pair label
//! (`rpc.<kind>.msgs.<from>-<to>`). The paper's results are all
//! message-count × geometry stories (commit wait vs. GTM round trips,
//! RCP gather fan-in, async log shipping), and this is the layer that
//! makes those counts first-class.
//!
//! Determinism: the plane is a thin wrapper over [`Topology::one_way`]
//! and must preserve the *exact* sequence of calls into it — each
//! `one_way` draws link jitter from the topology's seeded RNG, so a
//! skipped or reordered call changes every timestamp downstream. The
//! convenience methods ([`MessagePlane::rtt`], [`MessagePlane::ship_rtt`])
//! therefore mirror the short-circuit structure of the `Topology`
//! methods they replace: the return leg is only attempted when the
//! outbound leg was deliverable. Accounting-only paths
//! ([`MessagePlane::account`], [`MessagePlane::charge_bytes`]) never
//! touch the RNG.

use gdb_obs::MetricsRegistry;
use gdb_simnet::stats::LatencyHistogram;
use gdb_simnet::{NetNodeId, RegionId, SimDuration, Topology};
use std::collections::BTreeMap;
use std::fmt;

/// Every RPC the system puts on the wire. One enumerator per logical
/// interaction, not per implementation call site (see DESIGN.md for the
/// full table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RpcKind {
    /// CN → GTM snapshot-timestamp request (begin of a GTM-mode txn).
    GtmBeginTs,
    /// CN → GTM commit-timestamp request (GTM-counter commit plan).
    GtmCommitTs,
    /// CN → GTM commit round trip during a DUAL transition window.
    GtmDualCommit,
    /// CN → DN read operation (point/range/index/scan fetch).
    DnRead,
    /// CN → DN write operation (lock + stage redo on the primary).
    DnWrite,
    /// 2PC prepare branch: redo payload out to a written shard, ack back.
    TwoPcPrepare,
    /// 2PC commit decision out to a prepared shard, ack back.
    TwoPcCommit,
    /// Synchronous-replication quorum ship: primary → replica redo with
    /// durability ack (the commit-blocking leg of sync modes).
    SyncQuorumShip,
    /// Asynchronous redo log-shipping batch: primary → replica stream.
    LogShipBatch,
    /// RCP collect: replica applied-progress report to its region's
    /// collector CN.
    RcpGather,
    /// RCP finish: collector distributing the agreed consistency point to
    /// the region's CNs.
    RcpDistribute,
    /// Skyline staleness probe of one read-target candidate.
    SkylineProbe,
    /// GTM ⇄ CN barrier message of the DUAL transition protocol.
    TransitionBarrier,
    /// Shard-migration snapshot copy: source DN → target DN storage image.
    MigrateSnapshot,
    /// Shard-migration redo catch-up batch: source DN → target DN sealed
    /// log records shipped while the source still owns the shard.
    MigrateCatchup,
    /// Shard-migration cutover: barrier/ownership handoff between the DNs
    /// and the routing-epoch announcement fanned out to the CNs.
    MigrateCutover,
}

/// All kinds, in declaration order (the mirror/pre-registration order).
pub const ALL_RPC_KINDS: [RpcKind; 16] = [
    RpcKind::GtmBeginTs,
    RpcKind::GtmCommitTs,
    RpcKind::GtmDualCommit,
    RpcKind::DnRead,
    RpcKind::DnWrite,
    RpcKind::TwoPcPrepare,
    RpcKind::TwoPcCommit,
    RpcKind::SyncQuorumShip,
    RpcKind::LogShipBatch,
    RpcKind::RcpGather,
    RpcKind::RcpDistribute,
    RpcKind::SkylineProbe,
    RpcKind::TransitionBarrier,
    RpcKind::MigrateSnapshot,
    RpcKind::MigrateCatchup,
    RpcKind::MigrateCutover,
];

impl RpcKind {
    /// Stable snake_case name used in metric names and docs.
    pub fn name(self) -> &'static str {
        match self {
            RpcKind::GtmBeginTs => "gtm_begin_ts",
            RpcKind::GtmCommitTs => "gtm_commit_ts",
            RpcKind::GtmDualCommit => "gtm_dual_commit",
            RpcKind::DnRead => "dn_read",
            RpcKind::DnWrite => "dn_write",
            RpcKind::TwoPcPrepare => "two_pc_prepare",
            RpcKind::TwoPcCommit => "two_pc_commit",
            RpcKind::SyncQuorumShip => "sync_quorum_ship",
            RpcKind::LogShipBatch => "log_ship_batch",
            RpcKind::RcpGather => "rcp_gather",
            RpcKind::RcpDistribute => "rcp_distribute",
            RpcKind::SkylineProbe => "skyline_probe",
            RpcKind::TransitionBarrier => "transition_barrier",
            RpcKind::MigrateSnapshot => "migrate_snapshot",
            RpcKind::MigrateCatchup => "migrate_catchup",
            RpcKind::MigrateCutover => "migrate_cutover",
        }
    }

    /// Position in [`ALL_RPC_KINDS`] — the stable wire discriminant used
    /// by real transports when framing an [`Envelope`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`RpcKind::index`]; `None` for out-of-range values
    /// (a corrupt or newer-versioned frame).
    pub fn from_index(i: usize) -> Option<RpcKind> {
        ALL_RPC_KINDS.get(i).copied()
    }

    fn idx(self) -> usize {
        self as usize
    }
}

/// One typed wire message: what kind of RPC, between which nodes, how
/// many payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    pub kind: RpcKind,
    pub from: NetNodeId,
    pub to: NetNodeId,
    pub bytes: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct Traffic {
    msgs: u64,
    bytes: u64,
}

/// How an [`Envelope`] physically reaches its destination.
///
/// The plane's accounting (per-kind counters, delay histograms,
/// region-pair splits) is transport-independent; only the *delivery* —
/// what it costs and whether it arrives — is pluggable. The default
/// [`SimTransport`] asks the topology's cost model and advances no real
/// time; real transports (in `gdb-realnet`) carry the envelope over OS
/// channels or loopback TCP and report the *measured* wall-clock delay,
/// consulting the same topology for fault state (down nodes, partitions)
/// so chaos nemeses apply to physical backends too.
///
/// `Send` is a supertrait: a transport lives inside `GlobalDb` and real
/// implementations hold socket handles and thread channels, so the whole
/// cluster state must stay transferable across threads.
pub trait Transport: Send {
    /// Short stable name ("sim", "thread", "tcp") for metrics and traces.
    fn name(&self) -> &'static str;

    /// Deliver one envelope, returning the one-way delay the caller
    /// should charge to virtual time, or `None` when the message cannot
    /// be delivered (destination down, link partitioned or dropped).
    ///
    /// Determinism contract for simulated implementations: exactly one
    /// `topo.one_way` call per invocation, in invocation order — the
    /// topology RNG stream is part of the trace.
    fn deliver(&mut self, topo: &mut Topology, env: Envelope) -> Option<SimDuration>;

    /// Graceful teardown: join node threads, close sockets. Idempotent;
    /// the default (for purely simulated transports) does nothing.
    fn shutdown(&mut self) {}
}

/// The default transport: delivery *is* the simnet cost model. This is
/// byte-for-byte the pre-trait behaviour — one `Topology::one_way` call
/// per envelope — so committed baselines hold without re-blessing.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimTransport;

impl Transport for SimTransport {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn deliver(&mut self, topo: &mut Topology, env: Envelope) -> Option<SimDuration> {
        topo.one_way(env.from, env.to, env.bytes)
    }
}

/// Per-kind, per-region-pair RPC accounting plus the latency chokepoint.
pub struct MessagePlane {
    totals: [Traffic; ALL_RPC_KINDS.len()],
    by_region: BTreeMap<(u8, RegionId, RegionId), Traffic>,
    delays: Vec<LatencyHistogram>,
    transport: Box<dyn Transport>,
    /// Messages that went through [`Transport::deliver`] and delivered,
    /// per kind. Distinct from `totals`: statistically accounted fan-in
    /// ([`MessagePlane::account`], e.g. RCP gather reports) is counted
    /// there but never rides the transport. Real backends cross-check
    /// their silo tallies against *this*.
    delivered: [u64; ALL_RPC_KINDS.len()],
}

impl fmt::Debug for MessagePlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MessagePlane")
            .field("totals", &self.totals)
            .field("by_region", &self.by_region)
            .field("delays", &self.delays)
            .field("transport", &self.transport.name())
            .finish()
    }
}

impl MessagePlane {
    /// A plane with every kind pre-registered against `home` (region 0),
    /// so each `RpcKind` has a live, region-labelled counter from the
    /// first snapshot even before traffic of that kind occurs.
    pub fn new(home: RegionId) -> Self {
        let mut plane = MessagePlane {
            totals: Default::default(),
            by_region: BTreeMap::new(),
            delays: vec![LatencyHistogram::bounded(); ALL_RPC_KINDS.len()],
            transport: Box::new(SimTransport),
            delivered: [0; ALL_RPC_KINDS.len()],
        };
        for kind in ALL_RPC_KINDS {
            plane
                .by_region
                .insert((kind.idx() as u8, home, home), Traffic::default());
        }
        plane
    }

    /// Swap the delivery backend. Counters and histograms carry over —
    /// they describe the workload, not the wire.
    pub fn set_transport(&mut self, transport: Box<dyn Transport>) {
        self.transport = transport;
    }

    /// The active transport's name ("sim" unless a real backend was
    /// installed).
    pub fn transport_name(&self) -> &'static str {
        self.transport.name()
    }

    /// Gracefully shut the active transport down (no-op for `sim`).
    pub fn shutdown_transport(&mut self) {
        self.transport.shutdown();
    }

    fn note(&mut self, kind: RpcKind, from: RegionId, to: RegionId, bytes: u64, msgs: u64) {
        let t = &mut self.totals[kind.idx()];
        t.msgs += msgs;
        t.bytes += bytes;
        let r = self
            .by_region
            .entry((kind.idx() as u8, from, to))
            .or_default();
        r.msgs += msgs;
        r.bytes += bytes;
    }

    /// The chokepoint: deliver one one-way message via the active
    /// transport, returning its delay (`None` when the destination is
    /// down or partitioned away). All plane bookkeeping happens here.
    pub fn charge(&mut self, topo: &mut Topology, env: Envelope) -> Option<SimDuration> {
        let delay = self.transport.deliver(topo, env);
        if let Some(d) = delay {
            let (from, to) = (topo.node_region(env.from), topo.node_region(env.to));
            self.note(env.kind, from, to, env.bytes, 1);
            self.delays[env.kind.idx()].record(d);
            self.delivered[env.kind.idx()] += 1;
        }
        delay
    }

    /// Messages of `kind` the active transport delivered (excludes
    /// [`MessagePlane::account`]-only statistical traffic).
    pub fn transport_msgs(&self, kind: RpcKind) -> u64 {
        self.delivered[kind.idx()]
    }

    /// One one-way message of `kind`.
    pub fn send(
        &mut self,
        topo: &mut Topology,
        kind: RpcKind,
        from: NetNodeId,
        to: NetNodeId,
        bytes: u64,
    ) -> Option<SimDuration> {
        self.charge(
            topo,
            Envelope {
                kind,
                from,
                to,
                bytes,
            },
        )
    }

    /// Small request/response round trip (both legs 128 control bytes).
    /// The response leg is only attempted when the request leg delivered,
    /// mirroring [`Topology::rtt`].
    pub fn rtt(
        &mut self,
        topo: &mut Topology,
        kind: RpcKind,
        a: NetNodeId,
        b: NetNodeId,
    ) -> Option<SimDuration> {
        let there = self.send(topo, kind, a, b, 128)?;
        let back = self.send(topo, kind, b, a, 128)?;
        Some(there + back)
    }

    /// Ship `bytes` to `to` with a small acknowledgment back (the
    /// durability wait of synchronous replication), mirroring
    /// [`Topology::ship_rtt`].
    pub fn ship_rtt(
        &mut self,
        topo: &mut Topology,
        kind: RpcKind,
        from: NetNodeId,
        to: NetNodeId,
        bytes: u64,
    ) -> Option<SimDuration> {
        let there = self.send(topo, kind, from, to, bytes)?;
        let back = self.send(topo, kind, to, from, 128)?;
        Some(there + back)
    }

    /// Account payload bytes whose delivery cost was modelled elsewhere
    /// (the log-shipping path computes transmission explicitly and sends
    /// its propagation probe with a minimal payload). No delay, no
    /// message count, no RNG draw.
    pub fn charge_bytes(
        &mut self,
        topo: &mut Topology,
        kind: RpcKind,
        from: NetNodeId,
        to: NetNodeId,
        bytes: u64,
    ) {
        topo.charge_bytes(from, to, bytes);
        let (from, to) = (topo.node_region(from), topo.node_region(to));
        self.note(kind, from, to, bytes, 0);
    }

    /// Count a logical message whose latency is modelled outside the
    /// per-message cost path (RCP gather/distribute rounds, skyline
    /// staleness probes). Pure accounting: never touches the topology.
    pub fn account(&mut self, kind: RpcKind, from: RegionId, to: RegionId, bytes: u64) {
        self.note(kind, from, to, bytes, 1);
    }

    /// Total messages charged for `kind` so far.
    pub fn msgs(&self, kind: RpcKind) -> u64 {
        self.totals[kind.idx()].msgs
    }

    /// Total payload bytes charged for `kind` so far.
    pub fn bytes(&self, kind: RpcKind) -> u64 {
        self.totals[kind.idx()].bytes
    }

    /// Mirror every per-kind total, per-region-pair split, and delay
    /// histogram into the registry (called at snapshot time).
    pub fn mirror_metrics(&self, topo: &Topology, reg: &mut MetricsRegistry) {
        for kind in ALL_RPC_KINDS {
            let t = self.totals[kind.idx()];
            reg.set_counter(format!("rpc.{}.msgs", kind.name()), t.msgs);
            reg.set_counter(format!("rpc.{}.bytes", kind.name()), t.bytes);
            let h = &self.delays[kind.idx()];
            if !h.is_empty() {
                reg.set_histogram(format!("rpc.{}.delay_us", kind.name()), h.clone());
            }
        }
        for (&(kind, from, to), t) in &self.by_region {
            let name = ALL_RPC_KINDS[kind as usize].name();
            let (f, tn) = (topo.region_name(from), topo.region_name(to));
            reg.set_counter(format!("rpc.{name}.msgs.{f}-{tn}"), t.msgs);
            reg.set_counter(format!("rpc.{name}.bytes.{f}-{tn}"), t.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdb_simnet::{NodeKind, TopologyBuilder};

    fn city_pair(seed: u64) -> (Topology, NetNodeId, NetNodeId) {
        let (mut t, [xian, langzhong, _]) = TopologyBuilder::three_city(seed, false, 300);
        let a = t.add_node(xian, 0, NodeKind::ComputeNode);
        let b = t.add_node(langzhong, 1, NodeKind::DataNodePrimary);
        (t, a, b)
    }

    #[test]
    fn charge_matches_topology_cost_and_counts() {
        // Same seed, same call sequence: plane-mediated costs must be
        // bit-identical to direct topology calls.
        let (mut t1, a, d) = city_pair(7);
        let (mut t2, a2, d2) = city_pair(7);
        let mut plane = MessagePlane::new(RegionId(0));
        let via_plane = (
            plane.send(&mut t1, RpcKind::DnRead, a, d, 256),
            plane.rtt(&mut t1, RpcKind::GtmBeginTs, a, d),
            plane.ship_rtt(&mut t1, RpcKind::SyncQuorumShip, a, d, 4096),
        );
        let direct = (
            t2.one_way(a2, d2, 256),
            t2.rtt(a2, d2),
            t2.ship_rtt(a2, d2, 4096),
        );
        assert_eq!(via_plane, direct);
        assert_eq!(plane.msgs(RpcKind::DnRead), 1);
        assert_eq!(plane.msgs(RpcKind::GtmBeginTs), 2);
        assert_eq!(plane.msgs(RpcKind::SyncQuorumShip), 2);
        assert_eq!(plane.bytes(RpcKind::SyncQuorumShip), 4096 + 128);
    }

    #[test]
    fn every_kind_preregistered_with_region_label() {
        let plane = MessagePlane::new(RegionId(0));
        let (t, _, _) = city_pair(7);
        let mut reg = MetricsRegistry::new();
        plane.mirror_metrics(&t, &mut reg);
        let snap = reg.snapshot();
        for kind in ALL_RPC_KINDS {
            let total = format!("rpc.{}.msgs", kind.name());
            assert_eq!(snap.counter(&total), Some(0), "missing {total}");
            let labelled = format!("rpc.{}.msgs.xian-xian", kind.name());
            assert_eq!(snap.counter(&labelled), Some(0), "missing {labelled}");
        }
    }

    #[test]
    fn rpc_kind_wire_index_round_trips() {
        for (i, kind) in ALL_RPC_KINDS.iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert_eq!(RpcKind::from_index(i), Some(*kind));
        }
        assert_eq!(RpcKind::from_index(ALL_RPC_KINDS.len()), None);
    }

    #[test]
    fn plane_and_transports_are_send() {
        // Real transports hold socket handles and thread channels inside
        // `GlobalDb`, so the plane (and thus any `Transport`) must be
        // transferable across threads.
        fn assert_send<T: Send>() {}
        assert_send::<MessagePlane>();
        assert_send::<SimTransport>();
        assert_send::<Box<dyn Transport>>();
    }

    #[test]
    fn swapping_transports_preserves_counters() {
        struct NullTransport;
        impl Transport for NullTransport {
            fn name(&self) -> &'static str {
                "null"
            }
            fn deliver(&mut self, _: &mut Topology, _: Envelope) -> Option<SimDuration> {
                None
            }
        }
        let (mut t, a, b) = city_pair(3);
        let mut plane = MessagePlane::new(RegionId(0));
        assert_eq!(plane.transport_name(), "sim");
        plane.send(&mut t, RpcKind::DnRead, a, b, 64).unwrap();
        assert_eq!(plane.msgs(RpcKind::DnRead), 1);
        plane.set_transport(Box::new(NullTransport));
        assert_eq!(plane.transport_name(), "null");
        // Undeliverable: no delay, and the counter does not move.
        assert_eq!(plane.send(&mut t, RpcKind::DnRead, a, b, 64), None);
        assert_eq!(plane.msgs(RpcKind::DnRead), 1);
        plane.shutdown_transport();
    }

    #[test]
    fn account_and_charge_bytes_never_touch_the_rng() {
        let mut plane = MessagePlane::new(RegionId(0));
        plane.account(RpcKind::RcpGather, RegionId(1), RegionId(1), 64);
        plane.account(RpcKind::SkylineProbe, RegionId(0), RegionId(2), 16);
        assert_eq!(plane.msgs(RpcKind::RcpGather), 1);
        assert_eq!(plane.msgs(RpcKind::SkylineProbe), 1);
        // charge_bytes counts bytes but no message and draws no jitter:
        // a subsequent charged send agrees with an untouched topology.
        let (mut t1, x, y) = city_pair(9);
        let (mut t2, x2, y2) = city_pair(9);
        plane.charge_bytes(&mut t1, RpcKind::LogShipBatch, x, y, 9000);
        assert_eq!(plane.msgs(RpcKind::LogShipBatch), 0);
        assert_eq!(plane.bytes(RpcKind::LogShipBatch), 9000);
        assert_eq!(
            plane.send(&mut t1, RpcKind::DnWrite, x, y, 512),
            t2.one_way(x2, y2, 512)
        );
    }
}
