//! The plan executor.

use crate::access::DataAccess;
use crate::ast::AggFunc;
use crate::eval::{eval, truthy, RowCtx};
use crate::plan::{AccessPath, AggSpec, BoundStatement, Expr, JoinPlan, Projection, SelectPlan};
#[cfg(test)]
use gdb_model::GdbError;
use gdb_model::{Datum, GdbResult, Row, RowKey, TableId};
use std::collections::HashSet;

/// Result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutput {
    /// SELECT result rows (projected).
    Rows(Vec<Row>),
    /// DML: number of rows affected.
    Count(u64),
}

impl ExecOutput {
    pub fn rows(self) -> Vec<Row> {
        match self {
            ExecOutput::Rows(r) => r,
            ExecOutput::Count(_) => Vec::new(),
        }
    }

    pub fn count(&self) -> u64 {
        match self {
            ExecOutput::Rows(r) => r.len() as u64,
            ExecOutput::Count(c) => *c,
        }
    }

    /// First row, first column as an i64 (for scalar queries).
    pub fn scalar_int(&self) -> Option<i64> {
        match self {
            ExecOutput::Rows(rows) => rows.first()?.get(0)?.as_decimal(),
            ExecOutput::Count(_) => None,
        }
    }
}

/// Execute a bound statement with the given parameters.
pub fn execute(
    stmt: &BoundStatement,
    params: &[Datum],
    da: &mut dyn DataAccess,
) -> GdbResult<ExecOutput> {
    match stmt {
        BoundStatement::Ddl(ddl) => {
            da.apply_ddl(ddl)?;
            Ok(ExecOutput::Count(0))
        }
        BoundStatement::Insert { table, rows } => exec_insert(*table, rows, params, da),
        BoundStatement::Update {
            table,
            sets,
            access,
            residual,
        } => exec_update(*table, sets, access, residual.as_ref(), params, da),
        BoundStatement::Delete {
            table,
            access,
            residual,
        } => exec_delete(*table, access, residual.as_ref(), params, da),
        BoundStatement::Select(plan) => exec_select(plan, params, da),
    }
}

fn exec_insert(
    table: TableId,
    rows: &[Vec<Expr>],
    params: &[Datum],
    da: &mut dyn DataAccess,
) -> GdbResult<ExecOutput> {
    let ctx = RowCtx::empty();
    let mut inserted = 0u64;
    for exprs in rows {
        let values = exprs
            .iter()
            .map(|e| eval(e, params, &ctx))
            .collect::<GdbResult<Vec<_>>>()?;
        da.insert(table, Row(values))?;
        inserted += 1;
    }
    Ok(ExecOutput::Count(inserted))
}

/// Fetch `(key, row)` pairs for an access path on the outer table.
fn fetch_outer(
    table: TableId,
    access: &AccessPath,
    params: &[Datum],
    ctx: &RowCtx,
    da: &mut dyn DataAccess,
) -> GdbResult<Vec<(RowKey, Row)>> {
    match access {
        AccessPath::PointLookup { key } => {
            let key_vals = key
                .iter()
                .map(|e| eval(e, params, ctx))
                .collect::<GdbResult<Vec<_>>>()?;
            let rk = RowKey(key_vals);
            Ok(da
                .point_read(table, &rk)?
                .map(|row| (rk, row))
                .into_iter()
                .collect())
        }
        AccessPath::PkRange { prefix, low, high } => {
            let prefix_vals = prefix
                .iter()
                .map(|e| eval(e, params, ctx))
                .collect::<GdbResult<Vec<_>>>()?;
            let lo = match low {
                Some(e) => {
                    let mut v = prefix_vals.clone();
                    v.push(eval(e, params, ctx)?);
                    Some(RowKey(v))
                }
                None if prefix_vals.is_empty() => None,
                None => Some(RowKey(prefix_vals.clone())),
            };
            // Upper bound: prefix + high, or prefix + MAX sentinel. Text is
            // the highest-ranked datum type in key order, so a chain of
            // 0xFF-style text works as a practical +∞ per prefix.
            let hi = match high {
                Some(e) => {
                    let mut v = prefix_vals.clone();
                    v.push(eval(e, params, ctx)?);
                    // Extend with +∞ for any remaining PK columns so the
                    // inclusive bound covers full keys with this prefix.
                    v.push(max_sentinel());
                    Some(RowKey(v))
                }
                None if prefix_vals.is_empty() => None,
                None => {
                    let mut v = prefix_vals.clone();
                    v.push(max_sentinel());
                    Some(RowKey(v))
                }
            };
            let mut rows = da.range_read(table, lo.as_ref(), hi.as_ref())?;
            // Filter exact prefix match (range bounds are necessary, not
            // sufficient, for composite keys).
            rows.retain(|(k, _)| {
                k.0.len() >= prefix_vals.len()
                    && k.0[..prefix_vals.len()]
                        .iter()
                        .zip(&prefix_vals)
                        .all(|(a, b)| a.key_cmp(b) == std::cmp::Ordering::Equal)
            });
            Ok(rows)
        }
        AccessPath::IndexPrefix { index, prefix } => {
            let prefix_vals = prefix
                .iter()
                .map(|e| eval(e, params, ctx))
                .collect::<GdbResult<Vec<_>>>()?;
            da.index_read(*index, &prefix_vals)
        }
        AccessPath::FullScan => da.full_scan(table),
    }
}

fn max_sentinel() -> Datum {
    // Highest-sorting datum in key order: a long high text value.
    Datum::Text("\u{10FFFF}\u{10FFFF}\u{10FFFF}\u{10FFFF}".into())
}

fn exec_update(
    table: TableId,
    sets: &[(usize, Expr)],
    access: &AccessPath,
    residual: Option<&Expr>,
    params: &[Datum],
    da: &mut dyn DataAccess,
) -> GdbResult<ExecOutput> {
    let ctx = RowCtx::empty();
    let candidates = fetch_outer(table, access, params, &ctx, da)?;
    let mut affected = 0u64;
    for (key, _snapshot_row) in candidates {
        // Lock and re-read the newest committed version (read-committed).
        let Some(current) = da.read_for_update(table, &key)? else {
            continue; // concurrently deleted
        };
        let row_ctx = RowCtx::outer(&current);
        if let Some(f) = residual {
            if !truthy(&eval(f, params, &row_ctx)?) {
                continue;
            }
        }
        let mut new_row = current.clone();
        for (idx, e) in sets {
            new_row.0[*idx] = eval(e, params, &row_ctx)?;
        }
        da.update(table, &key, new_row)?;
        affected += 1;
    }
    Ok(ExecOutput::Count(affected))
}

fn exec_delete(
    table: TableId,
    access: &AccessPath,
    residual: Option<&Expr>,
    params: &[Datum],
    da: &mut dyn DataAccess,
) -> GdbResult<ExecOutput> {
    let ctx = RowCtx::empty();
    let candidates = fetch_outer(table, access, params, &ctx, da)?;
    let mut affected = 0u64;
    for (key, _) in candidates {
        let Some(current) = da.read_for_update(table, &key)? else {
            continue;
        };
        let row_ctx = RowCtx::outer(&current);
        if let Some(f) = residual {
            if !truthy(&eval(f, params, &row_ctx)?) {
                continue;
            }
        }
        da.delete(table, &key)?;
        affected += 1;
    }
    Ok(ExecOutput::Count(affected))
}

fn exec_select(
    plan: &SelectPlan,
    params: &[Datum],
    da: &mut dyn DataAccess,
) -> GdbResult<ExecOutput> {
    let empty_ctx = RowCtx::empty();
    let outer_rows = fetch_outer(plan.tables[0], &plan.outer_access, params, &empty_ctx, da)?;

    // Filter outer rows; lock them if FOR UPDATE.
    let mut joined: Vec<(Row, Option<Row>)> = Vec::new();
    for (key, row) in outer_rows {
        let ctx = RowCtx::outer(&row);
        if let Some(f) = &plan.outer_residual {
            if !truthy(&eval(f, params, &ctx)?) {
                continue;
            }
        }
        let row = if plan.for_update {
            // Lock and use the newest version.
            match da.read_for_update(plan.tables[0], &key)? {
                Some(newest) => {
                    // Re-check the residual on the newest version.
                    let ctx = RowCtx::outer(&newest);
                    if let Some(f) = &plan.outer_residual {
                        if !truthy(&eval(f, params, &ctx)?) {
                            continue;
                        }
                    }
                    newest
                }
                None => continue,
            }
        } else {
            row
        };

        joined.push((row, None));
    }

    // Join: a point-lookup inner side batches all keys into one
    // multi-shard fetch (the CN pushes the lookups down in one round
    // trip); other access paths fetch per outer row.
    if let Some(jp) = &plan.join {
        let outer_only = std::mem::take(&mut joined);
        match &jp.access {
            AccessPath::PointLookup { key } => {
                let mut keys = Vec::with_capacity(outer_only.len());
                for (outer, _) in &outer_only {
                    let ctx = RowCtx::outer(outer);
                    let vals = key
                        .iter()
                        .map(|e| eval(e, params, &ctx))
                        .collect::<GdbResult<Vec<_>>>()?;
                    keys.push(RowKey(vals));
                }
                let fetched = da.multi_point_read(jp.table, &keys)?;
                for ((outer, _), inner) in outer_only.into_iter().zip(fetched) {
                    let Some(inner) = inner else { continue };
                    if let Some(f) = &jp.residual {
                        let jctx = RowCtx::joined(&outer, &inner);
                        if !truthy(&eval(f, params, &jctx)?) {
                            continue;
                        }
                    }
                    joined.push((outer, Some(inner)));
                }
            }
            _ => {
                for (outer, _) in outer_only {
                    let inners = fetch_inner(jp, params, &outer, da)?;
                    for inner in inners {
                        joined.push((outer.clone(), Some(inner)));
                    }
                }
            }
        }
    }

    // ORDER BY before projection (it references table columns).
    if let Some((slot, idx, desc)) = plan.order_by {
        joined.sort_by(|a, b| {
            let get = |pair: &(Row, Option<Row>)| -> Datum {
                let row = if slot == 0 {
                    &pair.0
                } else {
                    pair.1.as_ref().expect("order by inner slot requires join")
                };
                row.0[idx].clone()
            };
            let o = get(a).key_cmp(&get(b));
            if desc {
                o.reverse()
            } else {
                o
            }
        });
    }
    if let Some(limit) = plan.limit {
        joined.truncate(limit);
    }

    match &plan.projection {
        Projection::Columns(exprs) => {
            let mut out = Vec::with_capacity(joined.len());
            for (outer, inner) in &joined {
                let ctx = match inner {
                    Some(i) => RowCtx::joined(outer, i),
                    None => RowCtx::outer(outer),
                };
                let vals = exprs
                    .iter()
                    .map(|e| eval(e, params, &ctx))
                    .collect::<GdbResult<Vec<_>>>()?;
                out.push(Row(vals));
            }
            Ok(ExecOutput::Rows(out))
        }
        Projection::Aggregates(specs) => {
            let row = aggregate(specs, &joined, params)?;
            Ok(ExecOutput::Rows(vec![row]))
        }
    }
}

fn fetch_inner(
    jp: &JoinPlan,
    params: &[Datum],
    outer: &Row,
    da: &mut dyn DataAccess,
) -> GdbResult<Vec<Row>> {
    let ctx = RowCtx::outer(outer);
    let candidates = fetch_outer(jp.table, &jp.access, params, &ctx, da)?;
    let mut out = Vec::new();
    for (_, inner) in candidates {
        if let Some(f) = &jp.residual {
            let jctx = RowCtx::joined(outer, &inner);
            if !truthy(&eval(f, params, &jctx)?) {
                continue;
            }
        }
        out.push(inner);
    }
    Ok(out)
}

fn aggregate(specs: &[AggSpec], rows: &[(Row, Option<Row>)], params: &[Datum]) -> GdbResult<Row> {
    let mut out = Vec::with_capacity(specs.len());
    for spec in specs {
        let mut count = 0u64;
        let mut sum: i64 = 0;
        let mut sum_is_decimal = false;
        let mut min: Option<Datum> = None;
        let mut max: Option<Datum> = None;
        let mut distinct_seen: HashSet<Datum> = HashSet::new();

        for (outer, inner) in rows {
            let ctx = match inner {
                Some(i) => RowCtx::joined(outer, i),
                None => RowCtx::outer(outer),
            };
            let value = match &spec.arg {
                None => Datum::Int(1), // COUNT(*)
                Some(e) => eval(e, params, &ctx)?,
            };
            if spec.arg.is_some() && value.is_null() {
                continue; // aggregates skip NULLs
            }
            if spec.distinct && !distinct_seen.insert(value.clone()) {
                continue;
            }
            count += 1;
            match value {
                Datum::Int(v) => sum = sum.wrapping_add(v),
                Datum::Decimal(v) => {
                    sum = sum.wrapping_add(v);
                    sum_is_decimal = true;
                }
                _ => {}
            }
            min = Some(match min {
                None => value.clone(),
                Some(m) => {
                    if value.key_cmp(&m) == std::cmp::Ordering::Less {
                        value.clone()
                    } else {
                        m
                    }
                }
            });
            max = Some(match max {
                None => value.clone(),
                Some(m) => {
                    if value.key_cmp(&m) == std::cmp::Ordering::Greater {
                        value.clone()
                    } else {
                        m
                    }
                }
            });
        }

        let result = match spec.func {
            AggFunc::Count => Datum::Int(count as i64),
            AggFunc::Sum => {
                if count == 0 {
                    Datum::Null
                } else if sum_is_decimal {
                    Datum::Decimal(sum)
                } else {
                    Datum::Int(sum)
                }
            }
            AggFunc::Min => min.unwrap_or(Datum::Null),
            AggFunc::Max => max.unwrap_or(Datum::Null),
            AggFunc::Avg => {
                if count == 0 {
                    Datum::Null
                } else if sum_is_decimal {
                    Datum::Decimal(sum / count as i64)
                } else {
                    Datum::Int(sum / count as i64)
                }
            }
        };
        out.push(result);
    }
    Ok(Row(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::MemAccess;
    use crate::prepare;

    /// Run one SQL statement end-to-end on a MemAccess.
    fn run(da: &mut MemAccess, sql: &str, params: &[Datum]) -> GdbResult<ExecOutput> {
        let prepared = prepare(sql, da.catalog())?;
        execute(&prepared.bound, params, da)
    }

    fn setup() -> MemAccess {
        let mut da = MemAccess::new();
        run(
            &mut da,
            "CREATE TABLE accounts (id INT NOT NULL, owner TEXT, region TEXT, \
             balance DECIMAL, PRIMARY KEY (id)) DISTRIBUTE BY HASH(id)",
            &[],
        )
        .unwrap();
        for (id, owner, region, bal) in [
            (1, "alice", "east", 1000),
            (2, "bob", "west", 2500),
            (3, "carol", "east", 50),
            (4, "dave", "west", 700),
            (5, "erin", "north", 0),
        ] {
            run(
                &mut da,
                "INSERT INTO accounts VALUES (?, ?, ?, ?)",
                &[
                    Datum::Int(id),
                    Datum::Text(owner.into()),
                    Datum::Text(region.into()),
                    Datum::Decimal(bal),
                ],
            )
            .unwrap();
        }
        da
    }

    #[test]
    fn point_select() {
        let mut da = setup();
        let out = run(
            &mut da,
            "SELECT owner, balance FROM accounts WHERE id = ?",
            &[Datum::Int(2)],
        )
        .unwrap();
        assert_eq!(
            out.rows(),
            vec![Row(vec![Datum::Text("bob".into()), Datum::Decimal(2500)])]
        );
    }

    #[test]
    fn full_scan_with_filter_order_limit() {
        let mut da = setup();
        let out = run(
            &mut da,
            "SELECT owner FROM accounts WHERE balance > 100 ORDER BY balance DESC LIMIT 2",
            &[],
        )
        .unwrap();
        let names: Vec<String> = out
            .rows()
            .iter()
            .map(|r| r.0[0].as_text().unwrap().to_owned())
            .collect();
        assert_eq!(names, vec!["bob", "alice"]);
    }

    #[test]
    fn update_with_expression_and_reread() {
        let mut da = setup();
        let out = run(
            &mut da,
            "UPDATE accounts SET balance = balance + ? WHERE id = ?",
            &[Datum::Decimal(500), Datum::Int(3)],
        )
        .unwrap();
        assert_eq!(out.count(), 1);
        let check = run(&mut da, "SELECT balance FROM accounts WHERE id = 3", &[]).unwrap();
        assert_eq!(check.rows()[0].0[0], Datum::Decimal(550));
    }

    #[test]
    fn update_with_residual_only_touches_matches() {
        let mut da = setup();
        let out = run(
            &mut da,
            "UPDATE accounts SET balance = 0 WHERE region = 'west'",
            &[],
        )
        .unwrap();
        assert_eq!(out.count(), 2);
        let sum = run(&mut da, "SELECT SUM(balance) FROM accounts", &[]).unwrap();
        assert_eq!(sum.rows()[0].0[0], Datum::Decimal(1050));
    }

    #[test]
    fn delete_and_count() {
        let mut da = setup();
        let out = run(&mut da, "DELETE FROM accounts WHERE balance = 0.0", &[]).unwrap();
        assert_eq!(out.count(), 1); // erin
        let count = run(&mut da, "SELECT COUNT(*) FROM accounts", &[]).unwrap();
        assert_eq!(count.rows()[0].0[0], Datum::Int(4));
    }

    #[test]
    fn aggregates_full_set() {
        let mut da = setup();
        let out = run(
            &mut da,
            "SELECT COUNT(*), SUM(balance), MIN(balance), MAX(balance), AVG(balance) \
             FROM accounts",
            &[],
        )
        .unwrap();
        assert_eq!(
            out.rows()[0],
            Row(vec![
                Datum::Int(5),
                Datum::Decimal(4250),
                Datum::Decimal(0),
                Datum::Decimal(2500),
                Datum::Decimal(850),
            ])
        );
    }

    #[test]
    fn count_distinct() {
        let mut da = setup();
        let out = run(&mut da, "SELECT COUNT(DISTINCT region) FROM accounts", &[]).unwrap();
        assert_eq!(out.rows()[0].0[0], Datum::Int(3));
    }

    #[test]
    fn aggregates_on_empty_input() {
        let mut da = setup();
        let out = run(
            &mut da,
            "SELECT COUNT(*), SUM(balance), MIN(balance), AVG(balance) \
             FROM accounts WHERE id = 999",
            &[],
        )
        .unwrap();
        assert_eq!(
            out.rows()[0],
            Row(vec![Datum::Int(0), Datum::Null, Datum::Null, Datum::Null])
        );
    }

    #[test]
    fn secondary_index_lookup_path() {
        let mut da = setup();
        run(&mut da, "CREATE INDEX by_region ON accounts (region)", &[]).unwrap();
        let prepared = prepare(
            "SELECT owner FROM accounts WHERE region = ? ORDER BY owner",
            da.catalog(),
        )
        .unwrap();
        // Confirm the planner chose the index.
        match &prepared.bound {
            BoundStatement::Select(s) => {
                assert!(matches!(s.outer_access, AccessPath::IndexPrefix { .. }))
            }
            other => panic!("{other:?}"),
        }
        let out = execute(&prepared.bound, &[Datum::Text("east".into())], &mut da).unwrap();
        let rows = out.rows();
        let names: Vec<&str> = rows.iter().map(|r| r.0[0].as_text().unwrap()).collect();
        assert_eq!(names, vec!["alice", "carol"]);
    }

    #[test]
    fn join_point_inner() {
        let mut da = setup();
        run(
            &mut da,
            "CREATE TABLE regions (name TEXT NOT NULL, tz INT, PRIMARY KEY (name))",
            &[],
        )
        .unwrap();
        for (name, tz) in [("east", -5), ("west", -8), ("north", 0)] {
            run(
                &mut da,
                "INSERT INTO regions VALUES (?, ?)",
                &[Datum::Text(name.into()), Datum::Int(tz)],
            )
            .unwrap();
        }
        let out = run(
            &mut da,
            "SELECT owner, tz FROM accounts, regions WHERE name = region AND balance > 500 \
             ORDER BY owner",
            &[],
        )
        .unwrap();
        let rows = out.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[0],
            Row(vec![Datum::Text("alice".into()), Datum::Int(-5)])
        );
        assert_eq!(
            rows[1],
            Row(vec![Datum::Text("bob".into()), Datum::Int(-8)])
        );
        assert_eq!(
            rows[2],
            Row(vec![Datum::Text("dave".into()), Datum::Int(-8)])
        );
    }

    #[test]
    fn pk_range_on_prefix() {
        let mut da = MemAccess::new();
        run(
            &mut da,
            "CREATE TABLE ol (w INT NOT NULL, o INT NOT NULL, n INT NOT NULL, item INT, \
             PRIMARY KEY (w, o, n))",
            &[],
        )
        .unwrap();
        for o in 0..5i64 {
            for n in 0..3i64 {
                run(
                    &mut da,
                    "INSERT INTO ol VALUES (1, ?, ?, ?)",
                    &[Datum::Int(o), Datum::Int(n), Datum::Int(o * 10 + n)],
                )
                .unwrap();
            }
        }
        let out = run(
            &mut da,
            "SELECT item FROM ol WHERE w = 1 AND o BETWEEN 1 AND 3",
            &[],
        )
        .unwrap();
        assert_eq!(out.rows().len(), 9);
        // Prefix-only (no range): all of w=1.
        let all = run(&mut da, "SELECT item FROM ol WHERE w = 1", &[]).unwrap();
        assert_eq!(all.rows().len(), 15);
        // Prefix + lower bound only.
        let ge = run(&mut da, "SELECT item FROM ol WHERE w = 1 AND o >= 4", &[]).unwrap();
        assert_eq!(ge.rows().len(), 3);
    }

    #[test]
    fn insert_duplicate_pk_fails() {
        let mut da = setup();
        let err = run(
            &mut da,
            "INSERT INTO accounts VALUES (1, 'dup', 'east', 0)",
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, GdbError::DuplicateKey(_)));
    }

    #[test]
    fn select_for_update_reads_newest() {
        let mut da = setup();
        let out = run(
            &mut da,
            "SELECT balance FROM accounts WHERE id = 1 FOR UPDATE",
            &[],
        )
        .unwrap();
        assert_eq!(out.rows()[0].0[0], Datum::Decimal(1000));
    }

    #[test]
    fn ddl_create_and_drop_via_sql() {
        let mut da = MemAccess::new();
        run(
            &mut da,
            "CREATE TABLE tmp (a INT NOT NULL, PRIMARY KEY (a))",
            &[],
        )
        .unwrap();
        run(&mut da, "INSERT INTO tmp VALUES (1)", &[]).unwrap();
        run(&mut da, "DROP TABLE tmp", &[]).unwrap();
        assert!(run(&mut da, "SELECT a FROM tmp", &[]).is_err());
    }

    #[test]
    fn scalar_int_helper() {
        let mut da = setup();
        let out = run(&mut da, "SELECT COUNT(*) FROM accounts", &[]).unwrap();
        assert_eq!(out.scalar_int(), Some(5));
    }
}
