//! Statement operations inside an open transaction: shard routing, the
//! primary and Read-On-Replica read paths, lock acquisition, and write
//! staging. All data-node round trips are charged through the message
//! plane as [`RpcKind::DnRead`] / [`RpcKind::DnWrite`].

use super::{TxnHandle, WriteOp, LOCK_LEASE, OP_MSG_BYTES};
use crate::net::RpcKind;
use crate::ror::ReadTarget;
use gdb_model::{
    Datum, DistributionKind, GdbError, GdbResult, IndexId, Row, RowKey, TableId, TableSchema,
};
use gdb_replication::ReplicaReadResult;
use gdb_simnet::SimDuration;
use gdb_sqlengine::plan::BoundDdl;
use gdb_sqlengine::DataAccess;
use gdb_storage::{Catalog, LockOutcome};
use gdb_wal::RedoPayload;

impl<'a> TxnHandle<'a> {
    // ---- Shard routing helpers ---------------------------------------

    pub(super) fn schema(&self, table: TableId) -> GdbResult<TableSchema> {
        self.db.catalog.table(table).cloned()
    }

    /// Validate this handle's cached routing epoch against `shard`'s
    /// ownership epoch, and note the access in the per-shard load
    /// counters the rebalance detector consumes. A stale epoch (the
    /// shard migrated after this transaction began) refreshes the CN's
    /// route cache immediately and returns the retryable
    /// [`GdbError::StaleRoute`], so the client's retry re-routes at the
    /// fresh epoch.
    fn route_to_shard(&mut self, shard: usize, bytes: u64) -> GdbResult<()> {
        let db = &mut *self.db;
        // O(1) epoch check off the flat routing table; the table is
        // rebuilt at every placement change, so it always mirrors
        // `shards[shard].owner_epoch` (pinned by the debug assert).
        let owner = db.routes.owner_epoch(shard);
        debug_assert_eq!(owner, db.shards[shard].owner_epoch);
        if self.route_epoch < owner {
            db.stats.stale_route_rejects += 1;
            db.cns[self.cn].route_epoch = db.routing_epoch;
            return Err(GdbError::StaleRoute(format!(
                "shard {shard}: route epoch {} < owner epoch {owner}",
                self.route_epoch
            )));
        }
        let region = db.region_idx_of_cn(self.cn);
        let load = &mut db.shard_load[shard];
        load.ops += 1;
        load.bytes += bytes;
        load.by_region[region] += 1;
        Ok(())
    }

    /// Charge one CN↔node round trip of kind `kind`.
    fn charge_rtt_to(
        &mut self,
        kind: RpcKind,
        node: gdb_simnet::NetNodeId,
        bytes: u64,
    ) -> GdbResult<()> {
        let db = &mut *self.db;
        let cn_node = db.cns[self.cn].node;
        let there = db
            .plane
            .send(&mut db.topo, kind, cn_node, node, OP_MSG_BYTES)
            .ok_or_else(|| GdbError::NodeUnavailable("data node unreachable".into()))?;
        let back = db
            .plane
            .send(&mut db.topo, kind, node, cn_node, bytes.max(OP_MSG_BYTES))
            .ok_or_else(|| GdbError::NodeUnavailable("data node unreachable".into()))?;
        self.now += there + back + db.config.op_cpu_cost;
        Ok(())
    }

    /// Charge a parallel scatter to several shards (max of the RTTs).
    fn charge_scatter(&mut self, kind: RpcKind, shards: &[usize], bytes: u64) -> GdbResult<()> {
        let db = &mut *self.db;
        let cn_node = db.cns[self.cn].node;
        let mut max = SimDuration::ZERO;
        for &s in shards {
            let primary = db.shards[s].primary;
            let there = db
                .plane
                .send(&mut db.topo, kind, cn_node, primary, OP_MSG_BYTES)
                .ok_or_else(|| GdbError::NodeUnavailable("shard unreachable".into()))?;
            let back = db
                .plane
                .send(
                    &mut db.topo,
                    kind,
                    primary,
                    cn_node,
                    bytes.max(OP_MSG_BYTES),
                )
                .ok_or_else(|| GdbError::NodeUnavailable("shard unreachable".into()))?;
            max = max.max(there + back);
        }
        self.now += max + db.config.op_cpu_cost;
        Ok(())
    }

    /// Which shards a range over `[lo, hi]` must touch.
    fn shards_for_range(
        &self,
        schema: &TableSchema,
        lo: Option<&RowKey>,
        hi: Option<&RowKey>,
    ) -> Vec<usize> {
        let all: Vec<usize> = (0..self.db.shards.len()).collect();
        if matches!(schema.distribution, DistributionKind::Replicated) {
            return vec![self.db.nearest_shard(self.cn)];
        }
        let (Some(lo), Some(hi)) = (lo, hi) else {
            return all;
        };
        // Length of the common prefix of lo and hi.
        let mut common = 0;
        while common < lo.0.len()
            && common < hi.0.len()
            && lo.0[common].key_cmp(&hi.0[common]) == std::cmp::Ordering::Equal
        {
            common += 1;
        }
        // Every distribution-key column must sit inside that common prefix
        // (positions are relative to the primary key ordering).
        let mut dist_vals = Vec::new();
        for dc in &schema.distribution_key {
            match schema.primary_key.iter().position(|pk| pk == dc) {
                Some(pos) if pos < common => dist_vals.push(lo.0[pos].clone()),
                _ => return all,
            }
        }
        vec![
            schema
                .shard_of_key(&RowKey(dist_vals), self.db.shards.len() as u16)
                .0 as usize,
        ]
    }

    /// Shard(s) an index prefix read must touch.
    fn shards_for_index_prefix(
        &self,
        schema: &TableSchema,
        index_cols: &[usize],
        prefix: &[Datum],
    ) -> Vec<usize> {
        if matches!(schema.distribution, DistributionKind::Replicated) {
            return vec![self.db.nearest_shard(self.cn)];
        }
        let mut dist_vals = Vec::new();
        for dc in &schema.distribution_key {
            match index_cols.iter().position(|c| c == dc) {
                Some(pos) if pos < prefix.len() => dist_vals.push(prefix[pos].clone()),
                _ => return (0..self.db.shards.len()).collect(),
            }
        }
        vec![
            schema
                .shard_of_key(&RowKey(dist_vals), self.db.shards.len() as u16)
                .0 as usize,
        ]
    }

    // ---- Read paths ----------------------------------------------------

    /// Primary point read with in-flight-commit wait.
    fn primary_point_read(
        &mut self,
        shard: usize,
        table: TableId,
        key: &RowKey,
    ) -> GdbResult<Option<Row>> {
        let primary = self.db.shards[shard].primary;
        self.charge_rtt_to(RpcKind::DnRead, primary, OP_MSG_BYTES)?;
        self.db.stats.reads_on_primary += 1;
        let snapshot = self.snapshot;
        let vis = self.db.shards[shard].storage.read(table, key, snapshot)?;
        Ok(match vis {
            Some(v) => {
                if v.commit_vtime > self.now {
                    // The writing transaction's commit is still in flight
                    // at our virtual time: wait for it (in-doubt wait).
                    self.now = v.commit_vtime;
                }
                Some(v.row.clone())
            }
            None => None,
        })
    }

    /// ROR point read: pick a node off the skyline; blocked tuples fall
    /// back to the primary.
    fn ror_point_read(
        &mut self,
        shard: usize,
        table: TableId,
        key: &RowKey,
    ) -> GdbResult<Option<Row>> {
        let target = self.db.select_read_node(
            self.cn,
            shard,
            self.snapshot,
            self.now,
            self.freshness_bound,
        );
        match target {
            ReadTarget::Primary => self.primary_point_read(shard, table, key),
            ReadTarget::Replica(ri) => {
                let node = self.db.shards[shard].replicas[ri].node;
                self.charge_rtt_to(RpcKind::DnRead, node, OP_MSG_BYTES)?;
                let snapshot = self.snapshot;
                let res = self.db.shards[shard].replicas[ri]
                    .applier
                    .read(table, key, snapshot)?;
                match res {
                    ReplicaReadResult::Row(r) => {
                        self.used_replica = true;
                        self.db.stats.reads_on_replica += 1;
                        Ok(r.map(|(row, _)| row))
                    }
                    ReplicaReadResult::Blocked { .. } => {
                        self.db.stats.replica_blocked_fallbacks += 1;
                        self.primary_point_read(shard, table, key)
                    }
                }
            }
        }
    }

    fn merge_overlay_into_range(
        &self,
        table: TableId,
        lo: Option<&RowKey>,
        hi: Option<&RowKey>,
        rows: &mut Vec<(RowKey, Row)>,
    ) {
        let mut changed = false;
        for ((t, key), row) in &self.overlay {
            if *t != table {
                continue;
            }
            if lo.is_some_and(|l| key < l) || hi.is_some_and(|h| key > h) {
                continue;
            }
            match rows.iter().position(|(k, _)| k == key) {
                Some(i) => match row {
                    Some(r) => rows[i].1 = r.clone(),
                    None => {
                        rows.remove(i);
                    }
                },
                None => {
                    if let Some(r) = row {
                        rows.push((key.clone(), r.clone()));
                        changed = true;
                    }
                }
            }
        }
        if changed {
            rows.sort_by(|a, b| a.0.cmp(&b.0));
        }
    }
}

impl<'a> DataAccess for TxnHandle<'a> {
    fn catalog(&self) -> &Catalog {
        &self.db.catalog
    }

    fn point_read(&mut self, table: TableId, key: &RowKey) -> GdbResult<Option<Row>> {
        if let Some(hit) = self.overlay.get(&(table, key.clone())) {
            return Ok(hit.clone());
        }
        let schema = self.schema(table)?;
        let shard = if matches!(schema.distribution, DistributionKind::Replicated) {
            self.db.nearest_shard(self.cn)
        } else {
            self.db.shard_of(&schema, key)
        };
        self.route_to_shard(shard, OP_MSG_BYTES)?;
        if self.ror {
            self.ror_point_read(shard, table, key)
        } else {
            self.primary_point_read(shard, table, key)
        }
    }

    fn multi_point_read(&mut self, table: TableId, keys: &[RowKey]) -> GdbResult<Vec<Option<Row>>> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        let schema = self.schema(table)?;
        let replicated = matches!(schema.distribution, DistributionKind::Replicated);
        // Group keys by shard; one parallel scatter round trip total.
        let mut shard_of_key: Vec<usize> = Vec::with_capacity(keys.len());
        let mut shards: Vec<usize> = Vec::new();
        for key in keys {
            let s = if replicated {
                self.db.nearest_shard(self.cn)
            } else {
                self.db.shard_of(&schema, key)
            };
            shard_of_key.push(s);
            if !shards.contains(&s) {
                shards.push(s);
            }
        }
        for &s in &shards {
            self.route_to_shard(s, OP_MSG_BYTES)?;
        }
        let snapshot = self.snapshot;
        // Pick the read target per shard (skyline under ROR, else the
        // primary) and charge ONE parallel scatter over the chosen nodes.
        // `targets` parallels the deduped `shards` list — the touched
        // shard count per statement is small, so a position scan beats
        // hashing on this per-op path.
        let mut targets: Vec<ReadTarget> = Vec::with_capacity(shards.len());
        let mut nodes: Vec<gdb_simnet::NetNodeId> = Vec::new();
        for &s in &shards {
            let t = if self.ror {
                self.db
                    .select_read_node(self.cn, s, snapshot, self.now, self.freshness_bound)
            } else {
                ReadTarget::Primary
            };
            let node = match t {
                ReadTarget::Primary => self.db.shards[s].primary,
                ReadTarget::Replica(ri) => self.db.shards[s].replicas[ri].node,
            };
            targets.push(t);
            nodes.push(node);
        }
        let bytes = OP_MSG_BYTES * (keys.len() as u64 / 4).max(1);
        let db = &mut *self.db;
        let cn_node = db.cns[self.cn].node;
        let mut max_rtt = SimDuration::ZERO;
        for &node in &nodes {
            let there = db
                .plane
                .send(&mut db.topo, RpcKind::DnRead, cn_node, node, OP_MSG_BYTES)
                .ok_or_else(|| GdbError::NodeUnavailable("read target unreachable".into()))?;
            let back = db
                .plane
                .send(&mut db.topo, RpcKind::DnRead, node, cn_node, bytes)
                .ok_or_else(|| GdbError::NodeUnavailable("read target unreachable".into()))?;
            max_rtt = max_rtt.max(there + back);
        }
        self.now += max_rtt + db.config.op_cpu_cost;

        let mut out = Vec::with_capacity(keys.len());
        let mut max_wait = self.now;
        for (key, &s) in keys.iter().zip(&shard_of_key) {
            if let Some(hit) = self.overlay.get(&(table, key.clone())) {
                out.push(hit.clone());
                continue;
            }
            let target = shards.iter().position(|&u| u == s).map(|i| targets[i]);
            if let Some(ReadTarget::Replica(ri)) = target.as_ref() {
                let res = self.db.shards[s].replicas[*ri]
                    .applier
                    .read(table, key, snapshot)?;
                match res {
                    ReplicaReadResult::Row(r) => {
                        self.used_replica = true;
                        self.db.stats.reads_on_replica += 1;
                        out.push(r.map(|(row, _)| row));
                        continue;
                    }
                    ReplicaReadResult::Blocked { .. } => {
                        // Blocked tuple: pay an extra primary round trip.
                        self.db.stats.replica_blocked_fallbacks += 1;
                        let primary = self.db.shards[s].primary;
                        self.charge_rtt_to(RpcKind::DnRead, primary, OP_MSG_BYTES)?;
                    }
                }
            }
            self.db.stats.reads_on_primary += 1;
            let vis = self.db.shards[s].storage.read(table, key, snapshot)?;
            out.push(match vis {
                Some(v) => {
                    if v.commit_vtime > max_wait {
                        max_wait = v.commit_vtime;
                    }
                    Some(v.row.clone())
                }
                None => None,
            });
        }
        self.now = self.now.max(max_wait);
        Ok(out)
    }

    fn range_read(
        &mut self,
        table: TableId,
        lo: Option<&RowKey>,
        hi: Option<&RowKey>,
    ) -> GdbResult<Vec<(RowKey, Row)>> {
        let schema = self.schema(table)?;
        let shards = self.shards_for_range(&schema, lo, hi);
        for &s in &shards {
            self.route_to_shard(s, OP_MSG_BYTES * 4)?;
        }
        let snapshot = self.snapshot;
        let mut out: Vec<(RowKey, Row)> = Vec::new();
        // Decide per shard: replica or primary.
        let mut primary_shards = Vec::new();
        if self.ror {
            for &s in &shards {
                let target =
                    self.db
                        .select_read_node(self.cn, s, snapshot, self.now, self.freshness_bound);
                match target {
                    ReadTarget::Replica(ri) => {
                        let blocked = self.db.shards[s].replicas[ri]
                            .applier
                            .is_range_blocked(table, lo, hi);
                        if blocked {
                            self.db.stats.replica_blocked_fallbacks += 1;
                            primary_shards.push(s);
                            continue;
                        }
                        let node = self.db.shards[s].replicas[ri].node;
                        self.charge_rtt_to(RpcKind::DnRead, node, OP_MSG_BYTES * 4)?;
                        self.used_replica = true;
                        self.db.stats.reads_on_replica += 1;
                        let rows = self.db.shards[s].replicas[ri]
                            .applier
                            .storage
                            .range(table, lo, hi, snapshot)?;
                        out.extend(rows.into_iter().map(|v| (v.key.clone(), v.row.clone())));
                    }
                    ReadTarget::Primary => primary_shards.push(s),
                }
            }
        } else {
            primary_shards = shards;
        }
        if !primary_shards.is_empty() {
            self.charge_scatter(RpcKind::DnRead, &primary_shards, OP_MSG_BYTES * 4)?;
            self.db.stats.reads_on_primary += 1;
            let mut max_wait = self.now;
            for &s in &primary_shards {
                let rows = self.db.shards[s].storage.range(table, lo, hi, snapshot)?;
                for v in rows {
                    if v.commit_vtime > max_wait {
                        max_wait = v.commit_vtime;
                    }
                    out.push((v.key.clone(), v.row.clone()));
                }
            }
            self.now = max_wait;
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        self.merge_overlay_into_range(table, lo, hi, &mut out);
        Ok(out)
    }

    fn index_read(&mut self, index: IndexId, prefix: &[Datum]) -> GdbResult<Vec<(RowKey, Row)>> {
        let def = self.db.catalog.index(index)?.clone();
        let schema = self.schema(def.table)?;
        let shards = self.shards_for_index_prefix(&schema, &def.columns, prefix);
        for &s in &shards {
            self.route_to_shard(s, OP_MSG_BYTES * 2)?;
        }
        let snapshot = self.snapshot;
        let mut out: Vec<(RowKey, Row)> = Vec::new();
        let mut primary_shards = Vec::new();
        if self.ror {
            for &s in &shards {
                let target =
                    self.db
                        .select_read_node(self.cn, s, snapshot, self.now, self.freshness_bound);
                match target {
                    ReadTarget::Replica(ri) => {
                        // Conservative: any pending write to this table on
                        // the replica forces a primary fallback.
                        let blocked = self.db.shards[s].replicas[ri]
                            .applier
                            .is_range_blocked(def.table, None, None);
                        if blocked {
                            self.db.stats.replica_blocked_fallbacks += 1;
                            primary_shards.push(s);
                            continue;
                        }
                        let node = self.db.shards[s].replicas[ri].node;
                        self.charge_rtt_to(RpcKind::DnRead, node, OP_MSG_BYTES * 2)?;
                        self.used_replica = true;
                        self.db.stats.reads_on_replica += 1;
                        let rows = self.db.shards[s].replicas[ri]
                            .applier
                            .storage
                            .index_lookup(index, prefix, snapshot)?;
                        out.extend(rows);
                    }
                    ReadTarget::Primary => primary_shards.push(s),
                }
            }
        } else {
            primary_shards = shards;
        }
        if !primary_shards.is_empty() {
            self.charge_scatter(RpcKind::DnRead, &primary_shards, OP_MSG_BYTES * 2)?;
            self.db.stats.reads_on_primary += 1;
            for &s in &primary_shards {
                let rows = self.db.shards[s]
                    .storage
                    .index_lookup(index, prefix, snapshot)?;
                out.extend(rows);
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        // Overlay merge: recheck added/updated rows against the prefix.
        let overlay_keys: Vec<(RowKey, Option<Row>)> = self
            .overlay
            .iter()
            .filter(|((t, _), _)| *t == def.table)
            .map(|((_, k), r)| (k.clone(), r.clone()))
            .collect();
        for (key, row) in overlay_keys {
            out.retain(|(k, _)| *k != key);
            if let Some(r) = row {
                let matches = def
                    .columns
                    .iter()
                    .zip(prefix)
                    .all(|(&c, p)| r.0[c].key_cmp(p) == std::cmp::Ordering::Equal);
                if matches {
                    out.push((key, r));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    fn full_scan(&mut self, table: TableId) -> GdbResult<Vec<(RowKey, Row)>> {
        self.range_read(table, None, None)
    }

    fn read_for_update(&mut self, table: TableId, key: &RowKey) -> GdbResult<Option<Row>> {
        if self.ror {
            return Err(GdbError::Execution(
                "FOR UPDATE in a read-only (ROR) transaction".into(),
            ));
        }
        let schema = self.schema(table)?;
        let shards: Vec<usize> = if matches!(schema.distribution, DistributionKind::Replicated) {
            (0..self.db.shards.len()).collect()
        } else {
            vec![self.db.shard_of(&schema, key)]
        };
        for &s in &shards {
            self.route_to_shard(s, OP_MSG_BYTES)?;
        }
        self.charge_scatter(RpcKind::DnWrite, &shards, OP_MSG_BYTES)?;
        for &s in &shards {
            self.lock_key(s, table, key)?;
        }
        if let Some(hit) = self.overlay.get(&(table, key.clone())) {
            return Ok(hit.clone());
        }
        let s0 = shards[0];
        let vis = self.db.shards[s0].storage.read_newest(table, key)?;
        Ok(match vis {
            Some(v) => {
                if v.commit_vtime > self.now {
                    self.now = v.commit_vtime;
                }
                Some(v.row.clone())
            }
            None => None,
        })
    }

    fn insert(&mut self, table: TableId, row: Row) -> GdbResult<()> {
        if self.ror {
            return Err(GdbError::Execution(
                "INSERT in a read-only (ROR) transaction".into(),
            ));
        }
        let schema = self.schema(table)?;
        let mut row = row;
        schema.coerce_row(&mut row);
        schema.check_row(&row)?;
        let key = schema.primary_key_of(&row);
        let replicated = matches!(schema.distribution, DistributionKind::Replicated);
        let shards: Vec<usize> = if replicated {
            (0..self.db.shards.len()).collect()
        } else {
            vec![self.db.shard_of(&schema, &key)]
        };
        for &s in &shards {
            self.route_to_shard(s, OP_MSG_BYTES)?;
        }
        // Duplicate check: overlay first, then committed state.
        match self.overlay.get(&(table, key.clone())) {
            Some(Some(_)) => return Err(GdbError::DuplicateKey(format!("{table} {key}"))),
            Some(None) => {} // deleted in this txn; reinsert ok
            None => {
                if self.db.shards[shards[0]]
                    .storage
                    .table(table)?
                    .exists_newest(&key)
                {
                    return Err(GdbError::DuplicateKey(format!("{table} {key}")));
                }
            }
        }
        self.charge_scatter(RpcKind::DnWrite, &shards, OP_MSG_BYTES)?;
        for &s in &shards {
            self.lock_key(s, table, &key)?;
            self.stage_write(s, table, key.clone(), Some(row.clone()), true);
        }
        self.overlay.insert((table, key), Some(row));
        Ok(())
    }

    fn update(&mut self, table: TableId, key: &RowKey, new_row: Row) -> GdbResult<()> {
        if self.ror {
            return Err(GdbError::Execution(
                "UPDATE in a read-only (ROR) transaction".into(),
            ));
        }
        let schema = self.schema(table)?;
        let mut new_row = new_row;
        schema.coerce_row(&mut new_row);
        schema.check_row(&new_row)?;
        let replicated = matches!(schema.distribution, DistributionKind::Replicated);
        let shards: Vec<usize> = if replicated {
            (0..self.db.shards.len()).collect()
        } else {
            vec![self.db.shard_of(&schema, key)]
        };
        for &s in &shards {
            self.route_to_shard(s, OP_MSG_BYTES)?;
        }
        self.charge_scatter(RpcKind::DnWrite, &shards, OP_MSG_BYTES)?;
        for &s in &shards {
            self.lock_key(s, table, key)?;
            self.stage_write(s, table, key.clone(), Some(new_row.clone()), false);
        }
        self.overlay.insert((table, key.clone()), Some(new_row));
        Ok(())
    }

    fn delete(&mut self, table: TableId, key: &RowKey) -> GdbResult<()> {
        if self.ror {
            return Err(GdbError::Execution(
                "DELETE in a read-only (ROR) transaction".into(),
            ));
        }
        let schema = self.schema(table)?;
        let replicated = matches!(schema.distribution, DistributionKind::Replicated);
        let shards: Vec<usize> = if replicated {
            (0..self.db.shards.len()).collect()
        } else {
            vec![self.db.shard_of(&schema, key)]
        };
        for &s in &shards {
            self.route_to_shard(s, OP_MSG_BYTES)?;
        }
        self.charge_scatter(RpcKind::DnWrite, &shards, OP_MSG_BYTES)?;
        for &s in &shards {
            self.lock_key(s, table, key)?;
            self.stage_write(s, table, key.clone(), None, false);
        }
        self.overlay.insert((table, key.clone()), None);
        Ok(())
    }

    fn apply_ddl(&mut self, _ddl: &BoundDdl) -> GdbResult<()> {
        Err(GdbError::Plan(
            "DDL cannot run inside a transaction; use Cluster::ddl".into(),
        ))
    }
}

impl<'a> TxnHandle<'a> {
    fn lock_key(&mut self, shard: usize, table: TableId, key: &RowKey) -> GdbResult<()> {
        loop {
            let outcome = self.db.shards[shard].storage.locks.acquire(
                table,
                key,
                self.txn,
                self.now,
                self.now + LOCK_LEASE,
            );
            match outcome {
                LockOutcome::Acquired => break,
                LockOutcome::WaitUntil(t) => {
                    self.db.stats.lock_waits += 1;
                    self.now = t;
                }
            }
        }
        self.locked.push((shard, table, key.clone()));
        Ok(())
    }

    fn stage_write(
        &mut self,
        shard: usize,
        table: TableId,
        key: RowKey,
        row: Option<Row>,
        is_insert: bool,
    ) {
        // PENDING_COMMIT is written before the transaction obtains its
        // invocation timestamp / first write lands (paper §IV-A).
        if !self.first_write.contains_key(&shard) {
            self.first_write.insert(shard, self.now);
            self.db.shards[shard]
                .log
                .append(self.now, self.txn, RedoPayload::PendingCommit);
        }
        let payload = match &row {
            Some(r) => {
                if is_insert {
                    RedoPayload::Insert {
                        table,
                        key: key.clone(),
                        row: r.clone(),
                    }
                } else {
                    RedoPayload::Update {
                        table,
                        key: key.clone(),
                        new_row: r.clone(),
                    }
                }
            }
            None => RedoPayload::Delete {
                table,
                key: key.clone(),
            },
        };
        self.db.shards[shard]
            .log
            .append(self.now, self.txn, payload);
        self.write_log.push(WriteOp {
            shard,
            table,
            key,
            row,
        });
        self.shards_written.insert(shard);
    }
}
