//! The chaos event trace: every fault application and every oracle
//! observation, in virtual-time order.
//!
//! Because the whole cluster runs on a deterministic discrete-event
//! engine, two runs from the same seed must produce *identical* traces —
//! the replayability guarantee `nemesis --seed N` rests on, and itself an
//! invariant the test suite asserts.

use globaldb::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

/// One trace line: what happened, when (virtual time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    pub at: SimTime,
    pub what: String,
}

/// An append-only log of fault applications and oracle observations.
#[derive(Debug, Default)]
pub struct Trace {
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    pub fn record(&mut self, at: SimTime, what: impl Into<String>) {
        self.entries.push(TraceEntry {
            at,
            what: what.into(),
        });
    }

    /// Render the trace as `t=<ms>ms <what>` lines (stable across runs).
    pub fn lines(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| format!("t={:>8.3}ms {}", e.at.as_nanos() as f64 / 1e6, e.what))
            .collect()
    }
}

/// Shared handle: fault events and probe events run inside `'static`
/// simulation closures, so they hold the trace behind `Rc<RefCell>`.
pub type TraceHandle = Rc<RefCell<Trace>>;

pub fn new_trace() -> TraceHandle {
    Rc::new(RefCell::new(Trace::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_renders() {
        let t = new_trace();
        t.borrow_mut().record(SimTime::from_millis(1), "a");
        t.borrow_mut().record(SimTime::from_millis(2), "b");
        let lines = t.borrow().lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("a"));
        assert!(lines[1].ends_with("b"));
    }
}
