//! Launch/run/shutdown a cluster on a chosen execution backend.
//!
//! [`RealCluster`] wraps the ordinary [`globaldb::Cluster`]: same
//! virtual-time driver, same workloads, same chaos plans — only the
//! transport behind [`globaldb::MessagePlane::charge`] differs. At
//! shutdown it collects each silo's tallies into a [`RealnetReport`]
//! and cross-checks them against the driver's message-plane accounting:
//! every message the plane charged must have been physically routed by
//! exactly one silo.

use crate::fault::FaultController;
use crate::membership::StaticMembership;
use crate::silo::{SharedSilo, NKINDS};
use crate::transport::{TcpTransport, ThreadTransport};
use gdb_simclock::WallClock;
use globaldb::{Cluster, ClusterConfig, MessagePlane, ALL_RPC_KINDS};

/// Which execution backend carries the cluster's messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Pure simulation (the default `SimTransport`): modeled delays,
    /// deterministic, trace-identical to the pre-realnet workspace.
    Sim,
    /// One OS thread per silo, in-process channel delivery.
    Thread,
    /// One OS thread + loopback-TCP listener per silo, framed sockets.
    Tcp,
}

impl Backend {
    pub fn label(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Thread => "thread",
            Backend::Tcp => "tcp",
        }
    }
}

/// What one silo physically saw during the run.
#[derive(Debug, Clone)]
pub struct SiloReport {
    pub host: u16,
    pub msgs: u64,
    pub bytes: u64,
    pub per_kind: [u64; NKINDS],
}

/// End-of-run physical accounting for a [`RealCluster`].
#[derive(Debug, Clone)]
pub struct RealnetReport {
    pub backend: Backend,
    pub silos: Vec<SiloReport>,
    pub msgs: u64,
    pub bytes: u64,
    pub per_kind: [u64; NKINDS],
    /// Plane message counts per kind at transport-install time; anything
    /// charged before the real transport existed is excluded from the
    /// cross-check.
    base_per_kind: [u64; NKINDS],
}

impl RealnetReport {
    /// Check that the driver's plane accounting and the silos' physical
    /// tallies agree per `RpcKind`. Trivially `Ok` for the sim backend
    /// (no silos exist).
    pub fn verify_against_plane(&self, plane: &MessagePlane) -> Result<(), String> {
        if self.backend == Backend::Sim {
            return Ok(());
        }
        let mut errors = Vec::new();
        for kind in ALL_RPC_KINDS {
            let i = kind.index();
            // `transport_msgs`, not `msgs`: statistically accounted fan-in
            // (e.g. RCP gather reports) is counted on the plane but never
            // rides the transport, so no silo ever sees it.
            let charged = plane
                .transport_msgs(kind)
                .saturating_sub(self.base_per_kind[i]);
            let routed = self.per_kind[i];
            if charged != routed {
                errors.push(format!(
                    "{}: plane charged {charged}, silos routed {routed}",
                    kind.name()
                ));
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "plane/silo accounting diverged on {} backend: {}",
                self.backend.label(),
                errors.join("; ")
            ))
        }
    }
}

/// A cluster bound to an execution backend, with silo handles retained
/// for end-of-run verification.
pub struct RealCluster {
    pub cluster: Cluster,
    backend: Backend,
    faults: FaultController,
    states: Vec<SharedSilo>,
    base_per_kind: [u64; NKINDS],
    report: Option<RealnetReport>,
}

impl RealCluster {
    /// Build the cluster and install the backend's transport *before*
    /// any traffic is charged.
    pub fn launch(config: ClusterConfig, backend: Backend) -> Self {
        let mut cluster = Cluster::new(config);
        let faults = FaultController::default();
        let clock = WallClock::new();
        let states = match backend {
            Backend::Sim => Vec::new(),
            Backend::Thread => {
                let membership = StaticMembership::from_topology(cluster.db.topo());
                let t = ThreadTransport::launch(membership, faults.clone(), clock);
                let states = t.states();
                cluster.db.set_transport(Box::new(t));
                states
            }
            Backend::Tcp => {
                let membership = StaticMembership::from_topology(cluster.db.topo());
                let t = TcpTransport::launch(membership, faults.clone(), clock)
                    .expect("bind loopback listeners");
                let states = t.states();
                cluster.db.set_transport(Box::new(t));
                states
            }
        };
        let mut base_per_kind = [0u64; NKINDS];
        for kind in ALL_RPC_KINDS {
            base_per_kind[kind.index()] = cluster.db.plane().transport_msgs(kind);
        }
        RealCluster {
            cluster,
            backend,
            faults,
            states,
            base_per_kind,
            report: None,
        }
    }

    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The link-fault controller shared with the running transport.
    pub fn faults(&self) -> FaultController {
        self.faults.clone()
    }

    /// Stop the transport (joining every silo thread) and collect the
    /// physical tallies. Idempotent: later calls return the same report.
    pub fn shutdown(&mut self) -> RealnetReport {
        if let Some(r) = &self.report {
            return r.clone();
        }
        self.cluster.db.shutdown_transport();
        let mut silos = Vec::new();
        let mut msgs = 0u64;
        let mut bytes = 0u64;
        let mut per_kind = [0u64; NKINDS];
        for silo in &self.states {
            let s = silo.lock().expect("silo lock");
            msgs += s.stats.msgs;
            bytes += s.stats.bytes;
            for (total, routed) in per_kind.iter_mut().zip(s.stats.per_kind.iter()) {
                *total += routed;
            }
            silos.push(SiloReport {
                host: s.spec.host,
                msgs: s.stats.msgs,
                bytes: s.stats.bytes,
                per_kind: s.stats.per_kind,
            });
        }
        let report = RealnetReport {
            backend: self.backend,
            silos,
            msgs,
            bytes,
            per_kind,
            base_per_kind: self.base_per_kind,
        };
        self.report = Some(report.clone());
        report
    }
}

impl Drop for RealCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdb_simnet::SimTime;

    fn run_one(backend: Backend) -> (RealnetReport, Result<(), String>, u64) {
        let mut rc = RealCluster::launch(ClusterConfig::globaldb_three_city(), backend);
        assert_eq!(rc.cluster.db.transport_name(), backend.label());
        rc.cluster.finish_load();
        rc.cluster.run_until(SimTime::from_millis(200));
        let commits = rc.cluster.db.stats().committed;
        let report = rc.shutdown();
        let verdict = report.verify_against_plane(rc.cluster.db.plane());
        (report, verdict, commits)
    }

    #[test]
    fn sim_backend_is_the_default_and_verifies_trivially() {
        let (report, verdict, _) = run_one(Backend::Sim);
        assert!(report.silos.is_empty());
        verdict.unwrap();
    }

    #[test]
    fn thread_backend_runs_the_cluster_and_accounts_exactly() {
        let (report, verdict, commits) = run_one(Backend::Thread);
        assert_eq!(report.silos.len(), 3);
        assert!(report.msgs > 0, "background activity must generate traffic");
        verdict.unwrap();
        let _ = commits;
    }

    #[test]
    fn tcp_backend_runs_the_cluster_and_accounts_exactly() {
        let (report, verdict, _) = run_one(Backend::Tcp);
        assert_eq!(report.silos.len(), 3);
        assert!(report.msgs > 0);
        verdict.unwrap();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut rc = RealCluster::launch(ClusterConfig::globaldb_three_city(), Backend::Thread);
        rc.cluster.run_until(SimTime::from_millis(50));
        let a = rc.shutdown();
        let b = rc.shutdown();
        assert_eq!(a.msgs, b.msgs);
        assert_eq!(a.per_kind, b.per_kind);
    }
}
