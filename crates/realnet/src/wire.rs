//! The length-prefixed wire format real transports speak.
//!
//! Hand-rolled little-endian framing (the workspace's serde is a no-op
//! facade, and the format is small enough that explicit bytes are
//! clearer anyway). Every frame is `u32 length || body`. Two body
//! shapes exist:
//!
//! * request — a serialized [`globaldb::Envelope`] plus delivery
//!   metadata: a sequence number, the *declared* payload size (what the
//!   cost model accounts), the fault-injected extra delay the receiving
//!   silo must physically sleep, and a capped filler payload so big
//!   logical messages do not actually ship megabytes over loopback;
//! * ack — sequence echo, status, and the role handler's reply value
//!   (a GTM timestamp, a DN applied-bytes cursor).

use gdb_simnet::NetNodeId;
use globaldb::{Envelope, RpcKind};
use std::io::{self, Read, Write};

/// Actual bytes shipped per request is capped here; the declared size in
/// the header keeps the accounting exact.
pub const PAYLOAD_CAP: u64 = 4096;

/// Frame-type tags (first body byte of a request-direction frame).
const TAG_RPC: u8 = 0;
const TAG_SHUTDOWN: u8 = 1;

/// A decoded request-direction frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    Rpc(Request),
    /// Graceful-teardown sentinel: the silo stops its loops, no ack.
    Shutdown,
}

/// One envelope on the wire, plus delivery metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    pub kind: RpcKind,
    pub from: NetNodeId,
    pub to: NetNodeId,
    pub seq: u64,
    /// Declared (accounted) payload size — may exceed [`PAYLOAD_CAP`].
    pub declared: u64,
    /// Fault-injected extra one-way delay the silo sleeps before acking.
    pub delay_ns: u64,
}

impl Request {
    pub fn envelope(&self) -> Envelope {
        Envelope {
            kind: self.kind,
            from: self.from,
            to: self.to,
            bytes: self.declared,
        }
    }
}

/// The reply to a request frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    pub seq: u64,
    pub ok: bool,
    /// Role handler's reply (GTM counter value, DN applied-bytes cursor,
    /// or a seq echo for plain reads).
    pub value: u64,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Prefix `body` with its length.
fn frame(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    out
}

/// Encode a request frame (length prefix included). The filler payload
/// is `min(declared, PAYLOAD_CAP)` zero bytes.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let filler = req.declared.min(PAYLOAD_CAP) as usize;
    let mut body = Vec::with_capacity(38 + filler);
    body.push(TAG_RPC);
    body.push(req.kind.index() as u8);
    put_u32(&mut body, req.from.0);
    put_u32(&mut body, req.to.0);
    put_u64(&mut body, req.seq);
    put_u64(&mut body, req.declared);
    put_u64(&mut body, req.delay_ns);
    put_u32(&mut body, filler as u32);
    body.resize(body.len() + filler, 0);
    frame(body)
}

/// Encode the shutdown sentinel frame.
pub fn encode_shutdown() -> Vec<u8> {
    frame(vec![TAG_SHUTDOWN])
}

/// Encode an ack frame (length prefix included).
pub fn encode_ack(ack: &Ack) -> Vec<u8> {
    let mut body = Vec::with_capacity(17);
    put_u64(&mut body, ack.seq);
    body.push(if ack.ok { 0 } else { 1 });
    put_u64(&mut body, ack.value);
    frame(body)
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.at + n > self.buf.len() {
            return Err(format!(
                "frame truncated: want {n} bytes at offset {}, have {}",
                self.at,
                self.buf.len()
            ));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Decode a request-direction frame body (without the length prefix).
pub fn decode_frame(body: &[u8]) -> Result<Frame, String> {
    let mut c = Cursor { buf: body, at: 0 };
    match c.u8()? {
        TAG_SHUTDOWN => Ok(Frame::Shutdown),
        TAG_RPC => {
            let kind = RpcKind::from_index(c.u8()? as usize)
                .ok_or_else(|| "unknown RpcKind discriminant".to_string())?;
            let from = NetNodeId(c.u32()?);
            let to = NetNodeId(c.u32()?);
            let seq = c.u64()?;
            let declared = c.u64()?;
            let delay_ns = c.u64()?;
            let filler = c.u32()? as usize;
            c.take(filler)?;
            Ok(Frame::Rpc(Request {
                kind,
                from,
                to,
                seq,
                declared,
                delay_ns,
            }))
        }
        t => Err(format!("unknown frame tag {t}")),
    }
}

/// Decode an ack frame body (without the length prefix).
pub fn decode_ack(body: &[u8]) -> Result<Ack, String> {
    let mut c = Cursor { buf: body, at: 0 };
    let seq = c.u64()?;
    let ok = c.u8()? == 0;
    let value = c.u64()?;
    Ok(Ack { seq, ok, value })
}

/// Read one length-prefixed frame body from a stream. Frames are small
/// (≤ [`PAYLOAD_CAP`] + header); anything claiming more is corrupt.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > (PAYLOAD_CAP as usize) + 256 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds protocol bound"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Write one already-encoded frame (length prefix included) to a stream.
pub fn write_frame(w: &mut impl Write, encoded: &[u8]) -> io::Result<()> {
    w.write_all(encoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use globaldb::ALL_RPC_KINDS;

    #[test]
    fn request_frames_round_trip_for_every_kind() {
        for (i, kind) in ALL_RPC_KINDS.iter().enumerate() {
            let req = Request {
                kind: *kind,
                from: NetNodeId(3),
                to: NetNodeId(14),
                seq: 1000 + i as u64,
                declared: 1 << (i as u64 + 2), // crosses PAYLOAD_CAP midway
                delay_ns: 77,
            };
            let encoded = encode_request(&req);
            let body = read_frame(&mut &encoded[..]).unwrap();
            assert_eq!(decode_frame(&body), Ok(Frame::Rpc(req)));
        }
    }

    #[test]
    fn payload_is_capped_but_declared_bytes_survive() {
        let req = Request {
            kind: RpcKind::MigrateSnapshot,
            from: NetNodeId(0),
            to: NetNodeId(1),
            seq: 1,
            declared: 50_000_000, // 50 MB logical snapshot
            delay_ns: 0,
        };
        let encoded = encode_request(&req);
        assert!(
            encoded.len() < PAYLOAD_CAP as usize + 256,
            "wire frame must stay capped, got {} bytes",
            encoded.len()
        );
        let body = read_frame(&mut &encoded[..]).unwrap();
        match decode_frame(&body).unwrap() {
            Frame::Rpc(r) => assert_eq!(r.declared, 50_000_000),
            f => panic!("unexpected frame {f:?}"),
        }
    }

    #[test]
    fn ack_and_shutdown_round_trip() {
        let ack = Ack {
            seq: 42,
            ok: true,
            value: 7,
        };
        let encoded = encode_ack(&ack);
        let body = read_frame(&mut &encoded[..]).unwrap();
        assert_eq!(decode_ack(&body), Ok(ack));

        let encoded = encode_shutdown();
        let body = read_frame(&mut &encoded[..]).unwrap();
        assert_eq!(decode_frame(&body), Ok(Frame::Shutdown));
    }

    #[test]
    fn oversized_frame_is_rejected_not_allocated() {
        let mut bogus = Vec::new();
        bogus.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut &bogus[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_bodies_error_cleanly() {
        let req = Request {
            kind: RpcKind::DnRead,
            from: NetNodeId(0),
            to: NetNodeId(1),
            seq: 9,
            declared: 100,
            delay_ns: 0,
        };
        let encoded = encode_request(&req);
        let body = read_frame(&mut &encoded[..]).unwrap();
        for cut in [0, 1, 5, body.len() - 1] {
            assert!(decode_frame(&body[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode_ack(&[1, 2, 3]).is_err());
    }
}
