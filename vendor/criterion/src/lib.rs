//! Offline in-tree stand-in for the `criterion` benchmark harness. It runs
//! each benchmark closure a fixed number of timed iterations and prints a
//! rough ns/iter figure — enough to compare hot paths locally without any
//! external dependency. The API mirrors the subset the workspace uses:
//! `Criterion::{bench_function, benchmark_group}`, `Bencher::iter`,
//! `black_box`, `criterion_group!`, and `criterion_main!`.

use std::time::Instant;

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-closure measurement state handed to benchmark functions.
pub struct Bencher {
    iters: u64,
    /// Total measured nanoseconds across all iterations.
    elapsed_ns: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up once so lazy initialization doesn't skew the timing.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// The benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 1_000 }
    }
}

impl Criterion {
    fn run_one(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.iters,
            elapsed_ns: 0,
        };
        f(&mut b);
        let per_iter = b.elapsed_ns / u128::from(self.iters.max(1));
        println!("bench {name:<44} {per_iter:>10} ns/iter");
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.run_one(&full, f);
        self
    }

    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
