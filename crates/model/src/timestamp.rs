//! The global timestamp ordering domain.
//!
//! All three transaction-management modes of the paper produce values in this
//! single domain:
//!
//! * **GTM** timestamps start at zero and increment by one per transaction
//!   (paper Eq. 2), so they are small integers.
//! * **GClock** timestamps are the node's synchronized clock reading in
//!   microseconds of (virtual) epoch time plus the error bound (paper Eq. 1),
//!   so they are large and grow even when the system is idle.
//! * **DUAL** timestamps are `max(TS_GTM, TS_GClock) + 1` (paper Eq. 3) and
//!   bridge the two during online transitions.
//!
//! The incompatibility between the first two (GTM grows much slower than wall
//! clock) is precisely what makes the paper's DUAL-mode migration necessary.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A commit / snapshot timestamp. One unit is one microsecond when produced
/// by GClock; GTM units are abstract counter ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp: nothing is visible at this snapshot.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The maximum representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// The successor timestamp (saturating).
    pub fn next(self) -> Timestamp {
        Timestamp(self.0.saturating_add(1))
    }

    /// The predecessor timestamp (saturating).
    pub fn prev(self) -> Timestamp {
        Timestamp(self.0.saturating_sub(1))
    }

    /// Construct from microseconds of epoch time (the GClock convention).
    pub fn from_micros(us: u64) -> Timestamp {
        Timestamp(us)
    }

    /// Interpret as microseconds of epoch time (the GClock convention).
    pub fn as_micros(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

/// An uncertainty interval around a clock reading, as returned by the GClock
/// time source: the true global time is guaranteed to lie within
/// `[earliest, latest]`.
///
/// This mirrors Spanner's TrueTime API; `latest - earliest == 2 * T_err`
/// where `T_err = T_sync + T_drift` (paper Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimestampBound {
    /// Lower bound on true time.
    pub earliest: Timestamp,
    /// Upper bound on true time. Commit timestamps are taken from here and
    /// the committer performs a commit wait until its clock passes it.
    pub latest: Timestamp,
}

impl TimestampBound {
    /// An exact bound with zero uncertainty (useful for tests and for the
    /// centralized GTM, whose counter has no uncertainty).
    pub fn exact(ts: Timestamp) -> Self {
        TimestampBound {
            earliest: ts,
            latest: ts,
        }
    }

    /// Width of the uncertainty interval (`2 * T_err` in paper terms).
    pub fn uncertainty(&self) -> u64 {
        self.latest.0 - self.earliest.0
    }

    /// True if `other` definitely happened before this reading.
    pub fn definitely_after(&self, other: Timestamp) -> bool {
        self.earliest > other
    }

    /// True if `other` definitely happened after this reading.
    pub fn definitely_before(&self, other: Timestamp) -> bool {
        self.latest < other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_numeric() {
        assert!(Timestamp(1) < Timestamp(2));
        assert_eq!(Timestamp(5).next(), Timestamp(6));
        assert_eq!(Timestamp(5).prev(), Timestamp(4));
        assert_eq!(Timestamp::ZERO.prev(), Timestamp::ZERO);
        assert_eq!(Timestamp::MAX.next(), Timestamp::MAX);
    }

    #[test]
    fn bound_uncertainty() {
        let b = TimestampBound {
            earliest: Timestamp(100),
            latest: Timestamp(140),
        };
        assert_eq!(b.uncertainty(), 40);
        assert!(b.definitely_after(Timestamp(99)));
        assert!(!b.definitely_after(Timestamp(100)));
        assert!(b.definitely_before(Timestamp(141)));
        assert!(!b.definitely_before(Timestamp(140)));
    }

    #[test]
    fn exact_bound_has_zero_uncertainty() {
        let b = TimestampBound::exact(Timestamp(7));
        assert_eq!(b.uncertainty(), 0);
        assert_eq!(b.earliest, b.latest);
    }
}
