//! A drifting hardware clock model.
//!
//! The clock runs at a constant rate `1 + drift_ppm · 10⁻⁶` relative to true
//! virtual time. Synchronizing against the regional time device resets the
//! clock to true time plus a residual error bounded by half the sync round
//! trip (the device's own GPS/atomic error is nanoseconds — negligible).

use gdb_simnet::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A simulated hardware clock with bounded drift.
#[derive(Debug, Clone)]
pub struct DriftClock {
    /// Actual drift of this crystal in parts per million (signed). The
    /// *bound* the system assumes is [`DriftClock::max_drift_ppm`]; the
    /// actual value must stay within it for correctness to hold.
    drift_ppm: f64,
    /// Assumed drift bound (paper: 200 PPM).
    max_drift_ppm: f64,
    /// True time of the last synchronization.
    last_sync_true: SimTime,
    /// This clock's reading at `last_sync_true`, in nanoseconds.
    reading_at_sync_ns: i128,
    /// Error bound contributed by the last sync (T_sync), nanoseconds.
    sync_err_ns: u64,
    rng: SmallRng,
}

impl DriftClock {
    /// A clock with the given actual drift and assumed bound. Panics if the
    /// actual drift exceeds the bound (that would be a broken deployment —
    /// modelled separately via [`DriftClock::force_offset`]).
    pub fn new(seed: u64, drift_ppm: f64, max_drift_ppm: f64) -> Self {
        assert!(
            drift_ppm.abs() <= max_drift_ppm,
            "actual drift must be within the assumed bound"
        );
        DriftClock {
            drift_ppm,
            max_drift_ppm,
            last_sync_true: SimTime::ZERO,
            reading_at_sync_ns: 0,
            sync_err_ns: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// A perfectly synchronized, drift-free clock (tests / the time device).
    pub fn ideal() -> Self {
        DriftClock::new(0, 0.0, 0.0)
    }

    /// The clock's reading at true time `true_now`, in nanoseconds.
    ///
    /// The clock is a linear function of true time anchored at the last
    /// sync, valid in both directions: the simulation sometimes evaluates
    /// the clock at instants *before* the anchor (a transaction's commit
    /// may fast-forward the sync to its future cursor time while later
    /// events run at earlier virtual times), and extrapolating backwards
    /// keeps all readings consistent.
    pub fn read_ns(&self, true_now: SimTime) -> u64 {
        let elapsed = true_now.as_nanos() as i128 - self.last_sync_true.as_nanos() as i128;
        let advanced = elapsed as f64 * (1.0 + self.drift_ppm * 1e-6);
        let r = self.reading_at_sync_ns + advanced as i128;
        r.max(0) as u64
    }

    /// The clock's reading as a `SimTime` (what the node believes now is).
    pub fn read(&self, true_now: SimTime) -> SimTime {
        SimTime::from_nanos(self.read_ns(true_now))
    }

    /// Error bound at `true_now`: `T_err = T_sync + T_drift` (paper Eq. 1),
    /// where `T_drift = max_drift_ppm · elapsed_since_sync`.
    pub fn error_bound(&self, true_now: SimTime) -> SimDuration {
        let elapsed = true_now.since(self.last_sync_true).as_nanos() as f64;
        let t_drift = elapsed * self.max_drift_ppm * 1e-6;
        SimDuration::from_nanos(self.sync_err_ns + t_drift.ceil() as u64)
    }

    /// Synchronize against the regional time device. `sync_rtt` is the
    /// observed TCP round trip; the residual offset after sync is uniform in
    /// `±rtt/2` and the error bound charged is the full round trip
    /// (conservative, as in the paper's 60 µs figure).
    pub fn sync(&mut self, true_now: SimTime, sync_rtt: SimDuration) {
        let half = (sync_rtt.as_nanos() / 2) as i128;
        let residual: i128 = if half == 0 {
            0
        } else {
            self.rng.gen_range(-half..=half)
        };
        self.last_sync_true = true_now;
        self.reading_at_sync_ns = true_now.as_nanos() as i128 + residual;
        self.sync_err_ns = sync_rtt.as_nanos();
    }

    /// Inject a gross offset fault (e.g. a mis-stepped clock) — used to test
    /// the GClock→GTM fallback path. After this the clock's *actual* error
    /// may exceed its advertised bound.
    pub fn force_offset(&mut self, offset: i64) {
        self.reading_at_sync_ns += offset as i128;
    }

    /// True error (reading − true time) at `true_now`, in nanoseconds.
    /// Testing hook: verifies the advertised bound actually covers reality.
    pub fn true_error_ns(&self, true_now: SimTime) -> i128 {
        self.read_ns(true_now) as i128 - true_now.as_nanos() as i128
    }

    /// How long (in true time) until this clock's reading exceeds
    /// `target_ns`. Used for invocation / commit waits: the caller sleeps
    /// this long, after which `read_ns > target_ns` is guaranteed.
    pub fn wait_until_after(&self, true_now: SimTime, target_ns: u64) -> SimDuration {
        let current = self.read_ns(true_now);
        if current > target_ns {
            return SimDuration::ZERO;
        }
        let deficit = (target_ns - current + 1) as f64;
        let rate = 1.0 + self.drift_ppm * 1e-6;
        SimDuration::from_nanos((deficit / rate).ceil() as u64)
    }

    pub fn max_drift_ppm(&self) -> f64 {
        self.max_drift_ppm
    }

    pub fn last_sync(&self) -> SimTime {
        self.last_sync_true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_clock_tracks_true_time() {
        let c = DriftClock::ideal();
        let t = SimTime::from_secs(10);
        assert_eq!(c.read(t), t);
        assert_eq!(c.error_bound(t), SimDuration::ZERO);
    }

    #[test]
    fn fast_clock_runs_ahead() {
        let c = DriftClock::new(1, 200.0, 200.0);
        let t = SimTime::from_secs(1);
        // +200 PPM over 1 s = +200 µs.
        let err = c.true_error_ns(t);
        assert!((err - 200_000).abs() < 1_000, "err={err}");
    }

    #[test]
    fn error_bound_grows_with_time_since_sync() {
        let mut c = DriftClock::new(2, -150.0, 200.0);
        c.sync(SimTime::from_secs(1), SimDuration::from_micros(60));
        let b1 = c.error_bound(SimTime::from_secs(1));
        let b2 = c.error_bound(SimTime::from_secs(2));
        assert_eq!(b1, SimDuration::from_micros(60));
        // +200 PPM * 1 s = 200 µs drift allowance.
        assert_eq!(b2, SimDuration::from_micros(260));
    }

    #[test]
    fn advertised_bound_covers_true_error() {
        let mut c = DriftClock::new(3, 180.0, 200.0);
        for i in 0..1000 {
            let now = SimTime::from_millis(i);
            if i % 10 == 0 {
                c.sync(now, SimDuration::from_micros(60));
            }
            let bound = c.error_bound(now).as_nanos() as i128;
            let err = c.true_error_ns(now).abs();
            assert!(err <= bound, "at {now}: |err|={err} > bound={bound}");
        }
    }

    #[test]
    fn wait_until_after_is_sufficient() {
        let mut c = DriftClock::new(4, -120.0, 200.0);
        c.sync(SimTime::from_secs(5), SimDuration::from_micros(60));
        let now = SimTime::from_secs(6);
        let target = c.read_ns(now) + 40_000; // 40 µs ahead of the reading
        let wait = c.wait_until_after(now, target);
        assert!(c.read_ns(now + wait) > target);
        // And the wait is not wildly longer than needed (≤ 2× deficit).
        assert!(wait.as_nanos() < 90_000);
    }

    #[test]
    fn wait_is_zero_when_already_past() {
        let c = DriftClock::ideal();
        assert_eq!(
            c.wait_until_after(SimTime::from_secs(1), 500),
            SimDuration::ZERO
        );
    }

    #[test]
    fn forced_offset_breaks_the_bound() {
        let mut c = DriftClock::new(5, 0.0, 200.0);
        c.sync(SimTime::from_secs(1), SimDuration::from_micros(60));
        c.force_offset(5_000_000); // +5 ms step fault
        let now = SimTime::from_secs(1) + SimDuration::from_millis(1);
        assert!(c.true_error_ns(now) > c.error_bound(now).as_nanos() as i128);
    }

    #[test]
    #[should_panic(expected = "within the assumed bound")]
    fn constructor_rejects_out_of_bound_drift() {
        let _ = DriftClock::new(0, 300.0, 200.0);
    }
}
