//! Deterministic discrete-event simulator for the GaussDB-Global
//! reproduction.
//!
//! The paper's evaluation runs on physical clusters — a single-rack
//! "One-Region" cluster with `tc`-injected delays, and a "Three-City" WAN
//! deployment (Xi'an / Langzhong / Dongguan, 25/35/55 ms RTT triangle).
//! This crate substitutes that hardware with a virtual-time event engine:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`Sim`] — the event queue: schedule closures at virtual times, run them
//!   in deterministic order.
//! * [`Topology`] — regions, nodes, and links with latency / bandwidth /
//!   jitter, a `tc`-style injected extra delay, partitions, and node
//!   failures. Message cost accounts for Nagle's algorithm and a
//!   Reno-vs-BBR congestion model, the two network knobs the paper tunes
//!   (§V-A).
//! * [`stats`] — small statistics helpers (histograms, percentiles) used by
//!   the workload drivers and benches.

pub mod event;
pub mod metrics;
pub mod reference;
pub mod stats;
pub mod time;
pub mod topology;

pub use event::{NoEvent, Sim, TypedEvent};
pub use time::{SimDuration, SimTime};
pub use topology::{
    CongestionModel, LinkParams, NetNodeId, NodeKind, RegionId, Topology, TopologyBuilder,
};
