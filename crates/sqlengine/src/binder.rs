//! Name resolution and access-path planning.

use crate::ast::{self, BinOp, PExpr, SelectItem, Statement};
use crate::plan::*;
use gdb_model::{ColumnDef, DataType, Datum, DistributionKind, GdbError, GdbResult, TableSchema};
use gdb_storage::Catalog;

/// Bind a parsed statement against the catalog.
pub fn bind_statement(stmt: &Statement, catalog: &Catalog) -> GdbResult<BoundStatement> {
    match stmt {
        Statement::CreateTable(ct) => bind_create_table(ct),
        Statement::DropTable(name) => {
            let t = catalog.table_by_name(name)?;
            Ok(BoundStatement::Ddl(BoundDdl::DropTable(t.id)))
        }
        Statement::CreateIndex {
            name,
            table,
            columns,
        } => {
            let schema = catalog.table_by_name(table)?;
            let cols = columns
                .iter()
                .map(|c| {
                    schema
                        .column_index(c)
                        .ok_or_else(|| GdbError::Plan(format!("unknown column {c}")))
                })
                .collect::<GdbResult<Vec<_>>>()?;
            Ok(BoundStatement::Ddl(BoundDdl::CreateIndex {
                table: schema.id,
                name: name.clone(),
                columns: cols,
            }))
        }
        Statement::DropIndex { name } => {
            let def = catalog.index_by_name(name)?;
            Ok(BoundStatement::Ddl(BoundDdl::DropIndex {
                name: name.clone(),
                table: def.table,
            }))
        }
        Statement::Insert {
            table,
            columns,
            values,
        } => bind_insert(table, columns.as_deref(), values, catalog),
        Statement::Update {
            table,
            sets,
            filter,
        } => bind_update(table, sets, filter.as_ref(), catalog),
        Statement::Delete { table, filter } => bind_delete(table, filter.as_ref(), catalog),
        Statement::Select(sel) => bind_select(sel, catalog).map(BoundStatement::Select),
    }
}

fn bind_create_table(ct: &ast::CreateTable) -> GdbResult<BoundStatement> {
    if ct.primary_key.is_empty() {
        return Err(GdbError::Plan(format!(
            "table {} needs a primary key",
            ct.name
        )));
    }
    let columns: Vec<ColumnDef> = ct
        .columns
        .iter()
        .map(|c| ColumnDef {
            name: c.name.clone(),
            data_type: match c.data_type {
                ast::ParsedType::Int => DataType::Int,
                ast::ParsedType::Decimal => DataType::Decimal,
                ast::ParsedType::Text => DataType::Text,
                ast::ParsedType::Bool => DataType::Bool,
            },
            nullable: !c.not_null,
            scale: if c.data_type == ast::ParsedType::Decimal {
                2
            } else {
                0
            },
        })
        .collect();
    let resolve = |names: &[String]| -> GdbResult<Vec<usize>> {
        names
            .iter()
            .map(|n| {
                columns
                    .iter()
                    .position(|c| &c.name == n)
                    .ok_or_else(|| GdbError::Plan(format!("unknown column {n}")))
            })
            .collect()
    };
    let primary_key = resolve(&ct.primary_key)?;
    let (distribution_key, distribution) = match &ct.distribute {
        None => (primary_key.clone(), DistributionKind::Hash),
        Some(ast::DistSpec::Hash(cols)) => (resolve(cols)?, DistributionKind::Hash),
        Some(ast::DistSpec::Range {
            columns: cols,
            split_points,
        }) => (
            resolve(cols)?,
            DistributionKind::Range {
                split_points: split_points.clone(),
            },
        ),
        Some(ast::DistSpec::Replication) => (primary_key.clone(), DistributionKind::Replicated),
    };
    // Shard routing extracts the distribution key from primary keys, so it
    // must be a subset of the primary key (mirrors SchemaBuilder's rule).
    if !matches!(distribution, DistributionKind::Replicated) {
        for dc in &distribution_key {
            if !primary_key.contains(dc) {
                return Err(GdbError::Plan(format!(
                    "table {}: distribution key column {} must be part of the primary key",
                    ct.name, columns[*dc].name
                )));
            }
        }
    }
    Ok(BoundStatement::Ddl(BoundDdl::CreateTable {
        name: ct.name.clone(),
        columns,
        primary_key,
        distribution_key,
        distribution,
    }))
}

fn bind_insert(
    table: &str,
    columns: Option<&[String]>,
    values: &[Vec<PExpr>],
    catalog: &Catalog,
) -> GdbResult<BoundStatement> {
    let schema = catalog.table_by_name(table)?;
    let width = schema.columns.len();
    // Map the provided column list (or the full schema order) to positions.
    let positions: Vec<usize> = match columns {
        Some(cols) => cols
            .iter()
            .map(|c| {
                schema
                    .column_index(c)
                    .ok_or_else(|| GdbError::Plan(format!("unknown column {c}")))
            })
            .collect::<GdbResult<Vec<_>>>()?,
        None => (0..width).collect(),
    };
    let binder = ExprBinder {
        tables: vec![schema],
    };
    let mut rows = Vec::with_capacity(values.len());
    for tuple in values {
        if tuple.len() != positions.len() {
            return Err(GdbError::Plan(format!(
                "INSERT arity mismatch: {} values for {} columns",
                tuple.len(),
                positions.len()
            )));
        }
        let mut row: Vec<Expr> = vec![Expr::Lit(Datum::Null); width];
        for (pos, pe) in positions.iter().zip(tuple) {
            let e = binder.bind(pe)?;
            if e.max_slot().is_some() {
                return Err(GdbError::Plan(
                    "INSERT values cannot reference columns".into(),
                ));
            }
            row[*pos] = e;
        }
        rows.push(row);
    }
    Ok(BoundStatement::Insert {
        table: schema.id,
        rows,
    })
}

fn bind_update(
    table: &str,
    sets: &[(String, PExpr)],
    filter: Option<&PExpr>,
    catalog: &Catalog,
) -> GdbResult<BoundStatement> {
    let schema = catalog.table_by_name(table)?;
    let binder = ExprBinder {
        tables: vec![schema],
    };
    let bound_sets = sets
        .iter()
        .map(|(col, pe)| {
            let idx = schema
                .column_index(col)
                .ok_or_else(|| GdbError::Plan(format!("unknown column {col}")))?;
            if schema.primary_key.contains(&idx) {
                return Err(GdbError::Plan(format!(
                    "cannot update primary-key column {col}"
                )));
            }
            Ok((idx, binder.bind(pe)?))
        })
        .collect::<GdbResult<Vec<_>>>()?;
    let bound_filter = filter.map(|f| binder.bind(f)).transpose()?;
    let (access, residual) = plan_access(schema, catalog, bound_filter, 0)?;
    Ok(BoundStatement::Update {
        table: schema.id,
        sets: bound_sets,
        access,
        residual,
    })
}

fn bind_delete(
    table: &str,
    filter: Option<&PExpr>,
    catalog: &Catalog,
) -> GdbResult<BoundStatement> {
    let schema = catalog.table_by_name(table)?;
    let binder = ExprBinder {
        tables: vec![schema],
    };
    let bound_filter = filter.map(|f| binder.bind(f)).transpose()?;
    let (access, residual) = plan_access(schema, catalog, bound_filter, 0)?;
    Ok(BoundStatement::Delete {
        table: schema.id,
        access,
        residual,
    })
}

fn bind_select(sel: &ast::SelectStmt, catalog: &Catalog) -> GdbResult<SelectPlan> {
    if sel.from.is_empty() || sel.from.len() > 2 {
        return Err(GdbError::Plan("FROM must list one or two tables".into()));
    }
    let tables: Vec<&TableSchema> = sel
        .from
        .iter()
        .map(|n| catalog.table_by_name(n))
        .collect::<GdbResult<Vec<_>>>()?;
    let binder = ExprBinder {
        tables: tables.clone(),
    };

    // Projection: all aggregates or all plain expressions.
    let mut agg_specs = Vec::new();
    let mut col_exprs = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Star => {
                for (slot, t) in tables.iter().enumerate() {
                    for idx in 0..t.columns.len() {
                        col_exprs.push(Expr::ColRef { slot, idx });
                    }
                }
            }
            SelectItem::Expr(PExpr::Agg(func, arg, distinct)) => {
                let bound_arg = arg.as_ref().map(|a| binder.bind(a)).transpose()?;
                agg_specs.push(AggSpec {
                    func: *func,
                    arg: bound_arg,
                    distinct: *distinct,
                });
            }
            SelectItem::Expr(pe) => col_exprs.push(binder.bind(pe)?),
        }
    }
    if !agg_specs.is_empty() && !col_exprs.is_empty() {
        return Err(GdbError::Plan(
            "mixing aggregates and plain columns is not supported".into(),
        ));
    }
    let projection = if agg_specs.is_empty() {
        Projection::Columns(col_exprs)
    } else {
        Projection::Aggregates(agg_specs)
    };

    let bound_filter = sel.filter.as_ref().map(|f| binder.bind(f)).transpose()?;

    // Split conjuncts by the highest slot they reference.
    let mut outer_conjuncts = Vec::new();
    let mut inner_conjuncts = Vec::new();
    if let Some(f) = bound_filter {
        for c in split_conjuncts(f) {
            match c.max_slot() {
                Some(1) => inner_conjuncts.push(c),
                _ => outer_conjuncts.push(c),
            }
        }
    }

    let (outer_access, outer_residual) =
        plan_access_from_conjuncts(tables[0], catalog, outer_conjuncts, 0)?;

    let join = if tables.len() == 2 {
        let (access, residual) =
            plan_access_from_conjuncts(tables[1], catalog, inner_conjuncts, 1)?;
        Some(JoinPlan {
            table: tables[1].id,
            access,
            residual,
        })
    } else if !inner_conjuncts.is_empty() {
        return Err(GdbError::Internal("slot-1 conjuncts without a join".into()));
    } else {
        None
    };

    let order_by = sel
        .order_by
        .as_ref()
        .map(|(col, desc)| {
            let (slot, idx) = binder.resolve_column(None, col)?;
            Ok::<_, GdbError>((slot, idx, *desc))
        })
        .transpose()?;

    Ok(SelectPlan {
        tables: tables.iter().map(|t| t.id).collect(),
        outer_access,
        outer_residual,
        join,
        projection,
        order_by,
        limit: sel.limit.map(|l| l as usize),
        for_update: sel.for_update,
    })
}

// ---- Expression binding ------------------------------------------------

struct ExprBinder<'a> {
    tables: Vec<&'a TableSchema>,
}

impl<'a> ExprBinder<'a> {
    fn resolve_column(&self, qual: Option<&str>, name: &str) -> GdbResult<(usize, usize)> {
        let mut found = None;
        for (slot, t) in self.tables.iter().enumerate() {
            if let Some(q) = qual {
                if t.name != q {
                    continue;
                }
            }
            if let Some(idx) = t.column_index(name) {
                if found.is_some() {
                    return Err(GdbError::Plan(format!("ambiguous column {name}")));
                }
                found = Some((slot, idx));
            }
        }
        found.ok_or_else(|| GdbError::Plan(format!("unknown column {name}")))
    }

    fn bind(&self, pe: &PExpr) -> GdbResult<Expr> {
        Ok(match pe {
            PExpr::Lit(d) => Expr::Lit(d.clone()),
            PExpr::Param(i) => Expr::Param(*i),
            PExpr::Col(qual, name) => {
                let (slot, idx) = self.resolve_column(qual.as_deref(), name)?;
                Expr::ColRef { slot, idx }
            }
            PExpr::Bin(l, op, r) => {
                Expr::Bin(Box::new(self.bind(l)?), *op, Box::new(self.bind(r)?))
            }
            PExpr::Not(e) => Expr::Not(Box::new(self.bind(e)?)),
            PExpr::Between { expr, lo, hi } => Expr::Between {
                expr: Box::new(self.bind(expr)?),
                lo: Box::new(self.bind(lo)?),
                hi: Box::new(self.bind(hi)?),
            },
            PExpr::InList { expr, list } => Expr::InList {
                expr: Box::new(self.bind(expr)?),
                list: list
                    .iter()
                    .map(|e| self.bind(e))
                    .collect::<GdbResult<_>>()?,
            },
            PExpr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.bind(expr)?),
                negated: *negated,
            },
            PExpr::Agg(..) => {
                return Err(GdbError::Plan(
                    "aggregate not allowed in this position".into(),
                ))
            }
        })
    }
}

// ---- Access-path planning ----------------------------------------------

fn split_conjuncts(e: Expr) -> Vec<Expr> {
    match e {
        Expr::Bin(l, BinOp::And, r) => {
            let mut out = split_conjuncts(*l);
            out.extend(split_conjuncts(*r));
            out
        }
        other => vec![other],
    }
}

fn conjoin(conjuncts: Vec<Expr>) -> Option<Expr> {
    conjuncts
        .into_iter()
        .reduce(|acc, c| Expr::Bin(Box::new(acc), BinOp::And, Box::new(c)))
}

fn plan_access(
    schema: &TableSchema,
    catalog: &Catalog,
    filter: Option<Expr>,
    slot: usize,
) -> GdbResult<(AccessPath, Option<Expr>)> {
    let conjuncts = filter.map(split_conjuncts).unwrap_or_default();
    plan_access_from_conjuncts(schema, catalog, conjuncts, slot)
}

/// Pick the best access path for `slot`'s table from its conjuncts.
///
/// Preference order: full-PK point lookup, PK prefix + range, secondary
/// index prefix, full scan. Equality/range values may reference *lower*
/// slots (join keys) but never the table's own slot.
fn plan_access_from_conjuncts(
    schema: &TableSchema,
    catalog: &Catalog,
    conjuncts: Vec<Expr>,
    slot: usize,
) -> GdbResult<(AccessPath, Option<Expr>)> {
    // For each column of this table: the equality expression, if any.
    let mut eq: Vec<Option<(usize, Expr)>> = vec![None; schema.columns.len()]; // (conjunct idx, value)
    let mut used = vec![false; conjuncts.len()];

    for (ci, c) in conjuncts.iter().enumerate() {
        if let Some((col, val)) = as_column_equality(c, slot) {
            if eq[col].is_none() {
                eq[col] = Some((ci, val));
            }
        }
    }

    // 1. Full primary-key equality → point lookup.
    if schema.primary_key.iter().all(|&k| eq[k].is_some()) {
        let key = schema
            .primary_key
            .iter()
            .map(|&k| {
                let (ci, val) = eq[k].clone().expect("checked");
                used[ci] = true;
                val
            })
            .collect();
        let residual = conjoin(
            conjuncts
                .into_iter()
                .enumerate()
                .filter(|(i, _)| !used[*i])
                .map(|(_, c)| c)
                .collect(),
        );
        return Ok((AccessPath::PointLookup { key }, residual));
    }

    // 2. PK prefix equality (+ optional inclusive range on the next col) —
    // unless a secondary index covers strictly more equality columns
    // (e.g. TPC-C's customer-by-last-name lookup: PK prefix (w, d) loses
    // to the (w, d, last) index).
    let mut prefix_len = 0;
    while prefix_len < schema.primary_key.len() && eq[schema.primary_key[prefix_len]].is_some() {
        prefix_len += 1;
    }
    let best_index = best_index_match(schema, catalog, &eq);
    let index_beats_pk = best_index
        .as_ref()
        .is_some_and(|(_, cols)| cols.len() > prefix_len);
    if prefix_len > 0 && !index_beats_pk {
        let mut prefix = Vec::with_capacity(prefix_len);
        for &k in &schema.primary_key[..prefix_len] {
            let (ci, val) = eq[k].clone().expect("checked");
            used[ci] = true;
            prefix.push(val);
        }
        // Range on the next PK column?
        let (mut low, mut high) = (None, None);
        if prefix_len < schema.primary_key.len() {
            let next_col = schema.primary_key[prefix_len];
            for (ci, c) in conjuncts.iter().enumerate() {
                if used[ci] {
                    continue;
                }
                if let Some((lo, hi)) = as_column_range(c, slot, next_col) {
                    if let Some(l) = lo {
                        if low.is_none() {
                            low = Some(l);
                            used[ci] = true;
                        }
                    }
                    if let Some(h) = hi {
                        if high.is_none() {
                            high = Some(h);
                            // Note: if the same conjunct (BETWEEN) provided
                            // both bounds, it is already marked used.
                            used[ci] = true;
                        }
                    }
                }
            }
        }
        let residual = conjoin(
            conjuncts
                .into_iter()
                .enumerate()
                .filter(|(i, _)| !used[*i])
                .map(|(_, c)| c)
                .collect(),
        );
        return Ok((AccessPath::PkRange { prefix, low, high }, residual));
    }

    // 3. Longest secondary-index full-prefix equality.
    if let Some((index, cols)) = best_index {
        let mut prefix = Vec::with_capacity(cols.len());
        for col in cols {
            let (ci, val) = eq[col].clone().expect("checked");
            used[ci] = true;
            prefix.push(val);
        }
        let residual = conjoin(
            conjuncts
                .into_iter()
                .enumerate()
                .filter(|(i, _)| !used[*i])
                .map(|(_, c)| c)
                .collect(),
        );
        return Ok((AccessPath::IndexPrefix { index, prefix }, residual));
    }

    // 4. Full scan.
    Ok((AccessPath::FullScan, conjoin(conjuncts)))
}

/// The longest secondary index whose columns are all matched by
/// equalities.
fn best_index_match(
    schema: &TableSchema,
    catalog: &Catalog,
    eq: &[Option<(usize, Expr)>],
) -> Option<(gdb_model::IndexId, Vec<usize>)> {
    let mut best: Option<(gdb_model::IndexId, Vec<usize>)> = None;
    for ix in catalog.indexes_on(schema.id) {
        let mut covered = 0;
        while covered < ix.columns.len() && eq[ix.columns[covered]].is_some() {
            covered += 1;
        }
        if covered == ix.columns.len() && covered > 0 {
            let better = match &best {
                Some((_, cols)) => covered > cols.len(),
                None => true,
            };
            if better {
                best = Some((ix.id, ix.columns.clone()));
            }
        }
    }
    best
}

/// If `e` is `col = value` (or `value = col`) where `col` belongs to `slot`
/// and `value` does not reference `slot`, return `(column, value)`.
fn as_column_equality(e: &Expr, slot: usize) -> Option<(usize, Expr)> {
    if let Expr::Bin(l, BinOp::Eq, r) = e {
        match (l.as_ref(), r.as_ref()) {
            (Expr::ColRef { slot: s, idx }, val) if *s == slot && !val.references_slot(slot) => {
                return Some((*idx, val.clone()))
            }
            (val, Expr::ColRef { slot: s, idx }) if *s == slot && !val.references_slot(slot) => {
                return Some((*idx, val.clone()))
            }
            _ => {}
        }
    }
    None
}

/// If `e` constrains `col` (of `slot`) with an *inclusive* bound usable by
/// the range path, return `(low, high)` (either side may be None).
/// `BETWEEN lo AND hi` yields both; `>=`/`<=` yield one.
fn as_column_range(e: &Expr, slot: usize, col: usize) -> Option<(Option<Expr>, Option<Expr>)> {
    match e {
        Expr::Between { expr, lo, hi } => {
            if let Expr::ColRef { slot: s, idx } = expr.as_ref() {
                if *s == slot
                    && *idx == col
                    && !lo.references_slot(slot)
                    && !hi.references_slot(slot)
                {
                    return Some((Some((**lo).clone()), Some((**hi).clone())));
                }
            }
            None
        }
        Expr::Bin(l, op, r) => {
            let (colref, val, op_towards_col) = match (l.as_ref(), r.as_ref()) {
                (Expr::ColRef { slot: s, idx }, v)
                    if *s == slot && *idx == col && !v.references_slot(slot) =>
                {
                    (true, v.clone(), *op)
                }
                (v, Expr::ColRef { slot: s, idx })
                    if *s == slot && *idx == col && !v.references_slot(slot) =>
                {
                    // Flip: `v <= col` is `col >= v`.
                    let flipped = match op {
                        BinOp::Lte => BinOp::Gte,
                        BinOp::Gte => BinOp::Lte,
                        BinOp::Lt => BinOp::Gt,
                        BinOp::Gt => BinOp::Lt,
                        other => *other,
                    };
                    (true, v.clone(), flipped)
                }
                _ => return None,
            };
            if !colref {
                return None;
            }
            match op_towards_col {
                BinOp::Gte => Some((Some(val), None)),
                BinOp::Lte => Some((None, Some(val))),
                // Strict bounds still narrow the scan inclusively; the
                // original conjunct must stay in the residual, so we do
                // NOT claim them here.
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use gdb_model::{SchemaBuilder, TableId};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            SchemaBuilder::new("customer")
                .column(ColumnDef::new("c_w_id", DataType::Int).not_null())
                .column(ColumnDef::new("c_d_id", DataType::Int).not_null())
                .column(ColumnDef::new("c_id", DataType::Int).not_null())
                .column(ColumnDef::new("c_last", DataType::Text))
                .column(ColumnDef::new("c_first", DataType::Text))
                .column(ColumnDef::new("c_balance", DataType::Decimal))
                .primary_key(&["c_w_id", "c_d_id", "c_id"])
                .distribute_by(&["c_w_id"], DistributionKind::Hash)
                .build(TableId(0))
                .unwrap(),
        )
        .unwrap();
        c.create_index(TableId(0), "cust_by_last", vec![0, 1, 3])
            .unwrap();
        c.create_table(
            SchemaBuilder::new("order_line")
                .column(ColumnDef::new("ol_w_id", DataType::Int).not_null())
                .column(ColumnDef::new("ol_d_id", DataType::Int).not_null())
                .column(ColumnDef::new("ol_o_id", DataType::Int).not_null())
                .column(ColumnDef::new("ol_number", DataType::Int).not_null())
                .column(ColumnDef::new("ol_i_id", DataType::Int))
                .primary_key(&["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"])
                .distribute_by(&["ol_w_id"], DistributionKind::Hash)
                .build(TableId(1))
                .unwrap(),
        )
        .unwrap();
        c.create_table(
            SchemaBuilder::new("stock")
                .column(ColumnDef::new("s_w_id", DataType::Int).not_null())
                .column(ColumnDef::new("s_i_id", DataType::Int).not_null())
                .column(ColumnDef::new("s_quantity", DataType::Int))
                .primary_key(&["s_w_id", "s_i_id"])
                .distribute_by(&["s_w_id"], DistributionKind::Hash)
                .build(TableId(2))
                .unwrap(),
        )
        .unwrap();
        c
    }

    fn bind(sql: &str) -> BoundStatement {
        bind_statement(&parse(sql).unwrap(), &catalog()).unwrap()
    }

    #[test]
    fn full_pk_equality_becomes_point_lookup() {
        let b = bind("SELECT c_first FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?");
        match b {
            BoundStatement::Select(s) => {
                assert!(s.outer_access.is_point());
                assert!(s.outer_residual.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pk_prefix_with_between_becomes_range() {
        let b = bind(
            "SELECT ol_i_id FROM order_line WHERE ol_w_id = 1 AND ol_d_id = 2 \
             AND ol_o_id BETWEEN 100 AND 120",
        );
        match b {
            BoundStatement::Select(s) => match s.outer_access {
                AccessPath::PkRange { prefix, low, high } => {
                    assert_eq!(prefix.len(), 2);
                    assert!(low.is_some());
                    assert!(high.is_some());
                    assert!(s.outer_residual.is_none());
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn secondary_index_prefix_used() {
        let b = bind("SELECT c_first FROM customer WHERE c_w_id = ? AND c_d_id = ? AND c_last = ?");
        match b {
            BoundStatement::Select(s) => match s.outer_access {
                AccessPath::IndexPrefix { prefix, .. } => {
                    assert_eq!(prefix.len(), 3);
                    assert!(s.outer_residual.is_none());
                }
                other => panic!("expected index path, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unindexed_predicate_full_scans_with_residual() {
        let b = bind("SELECT c_id FROM customer WHERE c_balance > 100");
        match b {
            BoundStatement::Select(s) => {
                assert_eq!(s.outer_access, AccessPath::FullScan);
                assert!(s.outer_residual.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn join_inner_side_uses_outer_columns_as_keys() {
        let b = bind(
            "SELECT COUNT(DISTINCT s_i_id) FROM order_line, stock \
             WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id BETWEEN ? AND ? \
             AND s_w_id = ? AND s_i_id = ol_i_id AND s_quantity < ?",
        );
        match b {
            BoundStatement::Select(s) => {
                let join = s.join.expect("join");
                // stock's full PK (s_w_id, s_i_id) is matched: point lookup
                // whose second key references the outer slot.
                match &join.access {
                    AccessPath::PointLookup { key } => {
                        assert_eq!(key.len(), 2);
                        assert!(key[1].references_slot(0), "join key from outer row");
                    }
                    other => panic!("{other:?}"),
                }
                // s_quantity < ? stays residual on the inner side.
                assert!(join.residual.is_some());
                assert!(matches!(s.projection, Projection::Aggregates(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_cannot_touch_pk() {
        let err = bind_statement(
            &parse("UPDATE customer SET c_id = 5 WHERE c_w_id = 1").unwrap(),
            &catalog(),
        )
        .unwrap_err();
        assert!(matches!(err, GdbError::Plan(_)));
    }

    #[test]
    fn update_plans_access_path() {
        let b = bind(
            "UPDATE customer SET c_balance = c_balance + ? \
             WHERE c_w_id = ? AND c_d_id = ? AND c_id = ?",
        );
        match b {
            BoundStatement::Update { access, sets, .. } => {
                assert!(access.is_point());
                assert_eq!(sets.len(), 1);
                assert!(sets[0].1.references_slot(0), "SET references current row");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_maps_columns_and_pads_nulls() {
        let b = bind("INSERT INTO customer (c_w_id, c_d_id, c_id) VALUES (1, 2, 3)");
        match b {
            BoundStatement::Insert { rows, .. } => {
                assert_eq!(rows[0].len(), 6, "full schema width");
                assert_eq!(rows[0][5], Expr::Lit(Datum::Null));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn star_expands_all_columns() {
        let b = bind("SELECT * FROM stock WHERE s_w_id = 1 AND s_i_id = 2");
        match b {
            BoundStatement::Select(s) => match s.projection {
                Projection::Columns(cols) => assert_eq!(cols.len(), 3),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_names_error() {
        let c = catalog();
        assert!(bind_statement(&parse("SELECT x FROM customer").unwrap(), &c).is_err());
        assert!(bind_statement(&parse("SELECT c_id FROM nope").unwrap(), &c).is_err());
        assert!(
            bind_statement(&parse("INSERT INTO customer (zzz) VALUES (1)").unwrap(), &c).is_err()
        );
    }

    #[test]
    fn read_only_detection() {
        assert!(bind("SELECT c_id FROM customer WHERE c_w_id = 1").is_read_only());
        assert!(!bind("SELECT c_id FROM customer WHERE c_w_id = 1 FOR UPDATE").is_read_only());
        assert!(!bind("DELETE FROM customer WHERE c_w_id = 1").is_read_only());
    }

    #[test]
    fn order_by_binds_column() {
        let b = bind("SELECT c_first FROM customer WHERE c_w_id = 1 ORDER BY c_first");
        match b {
            BoundStatement::Select(s) => {
                assert_eq!(s.order_by, Some((0, 4, false)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn create_table_binds_distribution() {
        let b = bind(
            "CREATE TABLE t2 (a INT NOT NULL, b TEXT, PRIMARY KEY(a)) \
             DISTRIBUTE BY RANGE(a) SPLIT AT (10)",
        );
        match b {
            BoundStatement::Ddl(BoundDdl::CreateTable {
                distribution,
                primary_key,
                ..
            }) => {
                assert_eq!(
                    distribution,
                    DistributionKind::Range {
                        split_points: vec![10]
                    }
                );
                assert_eq!(primary_key, vec![0]);
            }
            other => panic!("{other:?}"),
        }
    }
}
