//! Workload run reports.

use gdb_simnet::stats::LatencyHistogram;
use gdb_simnet::SimDuration;
use std::collections::BTreeMap;

/// Aggregated results of one workload run.
#[derive(Debug, Default)]
pub struct WorkloadReport {
    /// Virtual duration of the measured window.
    pub duration: SimDuration,
    /// Commits per transaction type.
    pub commits: BTreeMap<&'static str, u64>,
    /// Aborts (including intentional TPC-C rollbacks) per type.
    pub aborts: BTreeMap<&'static str, u64>,
    /// Latency distribution per type.
    pub latency: BTreeMap<&'static str, LatencyHistogram>,
    /// Reads served by replicas / primaries.
    pub reads_on_replica: u64,
    pub reads_on_primary: u64,
}

impl WorkloadReport {
    pub fn record_commit(&mut self, kind: &'static str, latency: SimDuration) {
        *self.commits.entry(kind).or_default() += 1;
        self.latency.entry(kind).or_default().record(latency);
    }

    pub fn record_abort(&mut self, kind: &'static str) {
        *self.aborts.entry(kind).or_default() += 1;
    }

    pub fn total_commits(&self) -> u64 {
        self.commits.values().sum()
    }

    pub fn total_aborts(&self) -> u64 {
        self.aborts.values().sum()
    }

    /// Total committed transactions per virtual second.
    pub fn throughput_per_sec(&self) -> f64 {
        let s = self.duration.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.total_commits() as f64 / s
        }
    }

    /// TPC-C tpmC: New-Order commits per virtual minute.
    pub fn tpmc(&self) -> f64 {
        let s = self.duration.as_secs_f64();
        if s <= 0.0 {
            return 0.0;
        }
        *self.commits.get("new_order").unwrap_or(&0) as f64 / s * 60.0
    }

    /// Mean latency across one type (ZERO if absent).
    pub fn mean_latency(&self, kind: &'static str) -> SimDuration {
        self.latency
            .get(kind)
            .map(|h| h.mean())
            .unwrap_or(SimDuration::ZERO)
    }

    /// p99 latency for one type.
    pub fn p99_latency(&mut self, kind: &'static str) -> SimDuration {
        self.latency
            .get_mut(kind)
            .map(|h| h.percentile(99.0))
            .unwrap_or(SimDuration::ZERO)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let mut parts = vec![format!(
            "{:.1} txn/s ({} commits, {} aborts in {})",
            self.throughput_per_sec(),
            self.total_commits(),
            self.total_aborts(),
            self.duration
        )];
        for (kind, count) in &self.commits {
            parts.push(format!(
                "{kind}: {count} (mean {})",
                self.mean_latency(kind)
            ));
        }
        parts.join("; ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let mut r = WorkloadReport {
            duration: SimDuration::from_secs(10),
            ..Default::default()
        };
        for _ in 0..50 {
            r.record_commit("new_order", SimDuration::from_millis(5));
        }
        for _ in 0..50 {
            r.record_commit("payment", SimDuration::from_millis(2));
        }
        r.record_abort("new_order");
        assert_eq!(r.total_commits(), 100);
        assert_eq!(r.total_aborts(), 1);
        assert!((r.throughput_per_sec() - 10.0).abs() < 1e-9);
        assert!((r.tpmc() - 300.0).abs() < 1e-9);
        assert_eq!(r.mean_latency("payment"), SimDuration::from_millis(2));
    }
}
