//! Read-On-Replica node selection glue (paper §IV-B, Fig. 5).
//!
//! Builds per-shard candidate metrics (staleness, latency, load, health)
//! from live cluster state and runs the skyline selection from
//! `gdb-router`. Replicas that have not yet applied up to the requested
//! snapshot are excluded — the RCP guarantees *some* replica set has, and
//! the primary always qualifies.

use crate::cluster::GlobalDb;
use crate::net::RpcKind;
use gdb_model::Timestamp;
use gdb_router::{estimate_staleness_gclock, estimate_staleness_gtm, NodeMetrics, Skyline};
use gdb_simnet::{SimDuration, SimTime};
use gdb_txnmgr::TmMode;

/// Where a shard read should go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadTarget {
    Primary,
    /// Index into the shard's replica list.
    Replica(usize),
}

/// Diagnostic view over the ROR machinery.
pub struct RorService<'a> {
    pub db: &'a mut GlobalDb,
}

impl<'a> RorService<'a> {
    /// The skyline a CN would compute for one shard right now.
    pub fn skyline(
        &mut self,
        cn: usize,
        shard: usize,
        snapshot: Timestamp,
        now: SimTime,
    ) -> Skyline {
        let (sky, _) = self.db.shard_candidates(cn, shard, snapshot, now);
        sky
    }
}

impl GlobalDb {
    /// Candidate metrics for a shard: the primary plus every replica that
    /// has applied at least up to `snapshot`.
    pub(crate) fn shard_candidates(
        &mut self,
        cn: usize,
        shard: usize,
        snapshot: Timestamp,
        now: SimTime,
    ) -> (Skyline, Vec<ReadTarget>) {
        let cn_node = self.cns[cn].node;
        let cn_region = self.cns[cn].region;
        let mode = self.cns[cn].tm.mode;
        let gtm_head = self.gtm.current();
        let gtm_rate = self.gtm_rate.per_sec;
        let mut metrics = Vec::new();
        let mut targets = Vec::new();

        let shard_ref = &self.shards[shard];
        // Primary: staleness zero by definition.
        let primary_ok = !self.topo.is_node_down(shard_ref.primary)
            && !self
                .topo
                .is_partitioned(cn_region, self.topo.node_region(shard_ref.primary));
        metrics.push(NodeMetrics {
            node: shard_ref.primary,
            staleness: SimDuration::ZERO,
            latency: self.topo.nominal_rtt(cn_node, shard_ref.primary),
            load: 0.0,
            healthy: primary_ok,
        });
        targets.push(ReadTarget::Primary);
        // Probing a candidate's freshness/health is piggybacked state in
        // this model (no extra latency), but the probe traffic is real.
        self.plane.account(
            RpcKind::SkylineProbe,
            cn_region,
            self.topo.node_region(shard_ref.primary),
            16,
        );

        for (ri, replica) in shard_ref.replicas.iter().enumerate() {
            let caught_up = replica.applier.max_commit_ts() >= snapshot;
            let up = !self.topo.is_node_down(replica.node)
                && !self.topo.is_partitioned(cn_region, replica.region);
            let staleness = match mode {
                TmMode::GClock => estimate_staleness_gclock(now, replica.applier.max_commit_ts()),
                TmMode::Gtm | TmMode::Dual => {
                    estimate_staleness_gtm(replica.applier.max_commit_ts(), gtm_head, gtm_rate)
                }
            };
            // Replay backlog inflates the load axis.
            let backlog = replica.busy_until.since(now).as_secs_f64();
            metrics.push(NodeMetrics {
                node: replica.node,
                staleness,
                latency: self.topo.nominal_rtt(cn_node, replica.node),
                load: backlog * 100.0,
                healthy: up && caught_up,
            });
            targets.push(ReadTarget::Replica(ri));
            self.plane
                .account(RpcKind::SkylineProbe, cn_region, replica.region, 16);
        }

        (Skyline::compute(&metrics), targets)
    }

    /// Pick the read target for one shard access (skyline + bounded
    /// staleness, falling back to the primary).
    pub(crate) fn select_read_node(
        &mut self,
        cn: usize,
        shard: usize,
        snapshot: Timestamp,
        now: SimTime,
        freshness_bound: Option<SimDuration>,
    ) -> ReadTarget {
        let (sky, targets) = self.shard_candidates(cn, shard, snapshot, now);
        let target = 'pick: {
            let Some(pick) = sky.select(freshness_bound) else {
                // Nothing on the skyline satisfies the bound (the primary
                // is normally a zero-staleness candidate, so this means it
                // is down too): fall back to the primary path and count it.
                self.stats.ror_rejected_freshness += 1;
                break 'pick ReadTarget::Primary;
            };
            // Map the picked node id back to its target.
            let shard_ref = &self.shards[shard];
            if pick.node == shard_ref.primary {
                break 'pick ReadTarget::Primary;
            }
            for (ri, replica) in shard_ref.replicas.iter().enumerate() {
                if replica.node == pick.node {
                    let _ = &targets;
                    break 'pick ReadTarget::Replica(ri);
                }
            }
            ReadTarget::Primary
        };
        self.note_skyline_pick(cn, shard, target, now);
        target
    }

    /// Count every skyline evaluation; a pick that differs from the last
    /// one for the same (CN, shard) is a re-selection (the router moved
    /// the read traffic) and is recorded as a `skyline_reselect` span.
    fn note_skyline_pick(&mut self, cn: usize, shard: usize, target: ReadTarget, now: SimTime) {
        self.obs.metrics.bump(self.hot.router.skyline_selections);
        // Flat-indexed slot (cn * shard_count + shard): O(1), no hashing
        // on a per-read path that runs once per ROR-eligible statement.
        let prev = self.last_skyline_pick[cn * self.shards.len() + shard].replace(target);
        if prev.is_some_and(|p| p != target) {
            self.obs.metrics.bump(self.hot.router.skyline_reselections);
            self.obs.tracer.record(
                gdb_obs::SpanKind::SkylineReselect,
                ((cn as u64) << 32) | shard as u64,
                now,
                now,
            );
        }
    }
}
