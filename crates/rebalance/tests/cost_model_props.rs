//! Property tests for the Placement v2 cost model: every accepted
//! proposal strictly reduces the modeled cost, the greedy batch never
//! touches a shard twice (or a busy one at all), and on static traffic
//! the propose/apply loop converges without ever revisiting a placement
//! — the A→B→A ping-pong the old policy chain exhibited is impossible.

use gdb_rebalance::{
    apply_move, ClusterView, CostPolicy, HostSlot, Hysteresis, PlacementCost, ReplicaStat,
    ShardStat,
};
use gdb_simnet::{NetNodeId, RegionId};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Deterministically assemble a valid view from raw generator output:
/// replicas land on hosts distinct from the primary's and from each
/// other (the invariant the real cluster maintains).
fn build_view(
    region_count: usize,
    hosts_per_region: usize,
    shard_seeds: Vec<(usize, u64, Vec<u64>, usize)>,
) -> ClusterView {
    let mut hosts = Vec::new();
    for r in 0..region_count {
        for h in 0..hosts_per_region {
            hosts.push(HostSlot {
                region: RegionId(r as u16),
                host: h as u16,
            });
        }
    }
    let mut shards = Vec::new();
    for (idx, (slot_pick, ops, mut by_region, replica_count)) in shard_seeds.into_iter().enumerate()
    {
        let p = slot_pick % hosts.len();
        let primary = hosts[p];
        by_region.resize(region_count, 0);
        let n_rep = replica_count.min(2).min(hosts.len() - 1);
        let replicas = (1..=n_rep)
            .map(|i| ReplicaStat {
                node: NetNodeId((1000 + idx * 10 + i) as u32),
                slot: hosts[(p + i) % hosts.len()],
            })
            .collect();
        shards.push(ShardStat {
            shard: idx,
            region: primary.region,
            host: primary.host,
            ops,
            bytes: ops * 128,
            by_region,
            replicas,
        });
    }
    ClusterView {
        shards,
        hosts,
        regions: (0..region_count as u16).map(RegionId).collect(),
        draining: Vec::new(),
    }
}

fn arb_view() -> impl Strategy<Value = ClusterView> {
    (
        1usize..=3, // regions
        1usize..=3, // hosts per region
        proptest::collection::vec(
            (
                0usize..9,
                0u64..2000,
                // Always draw 3 per-region figures; build_view truncates
                // to the actual region count.
                proptest::collection::vec(0u64..1000, 3..=3),
                0usize..=2,
            ),
            1..=8,
        ),
    )
        .prop_map(|(regions, hpr, seeds)| build_view(regions, hpr, seeds))
}

/// Canonical fingerprint of a placement (primaries + replica slots).
fn config_key(v: &ClusterView) -> String {
    let mut parts: Vec<String> = v
        .shards
        .iter()
        .map(|s| {
            let mut reps: Vec<String> = s
                .replicas
                .iter()
                .map(|r| format!("{}:{}-{}", r.node.0, r.slot.region.0, r.slot.host))
                .collect();
            reps.sort();
            format!("s{}@{}-{}[{}]", s.shard, s.region.0, s.host, reps.join(","))
        })
        .collect();
    parts.sort();
    parts.join(";")
}

proptest! {
    /// Every proposal in a batch strictly reduces the modeled cost, and
    /// the recorded before/after figures match an actual replay of the
    /// moves on the view.
    #[test]
    fn accepted_proposals_strictly_reduce_cost(view in arb_view()) {
        let model = PlacementCost::default();
        let policy = CostPolicy::default();
        let batch = model.propose_batch(&view, &policy, &Hysteresis::new(), &BTreeSet::new());
        let mut rolled = view.clone();
        let mut last = model.cost(&rolled);
        for p in &batch {
            prop_assert!(p.cost_after < p.cost_before, "{}", p.reason);
            prop_assert!((p.cost_before - last).abs() < 1e-9, "stale cost_before");
            apply_move(&mut rolled, p);
            let now = model.cost(&rolled);
            prop_assert!((now - p.cost_after).abs() < 1e-9, "cost_after mismatch");
            prop_assert!(now < last, "replayed move failed to reduce cost");
            last = now;
        }
    }

    /// A batch never moves the same shard twice and never touches a
    /// busy (already-migrating) shard.
    #[test]
    fn batched_plans_never_double_move_a_shard(view in arb_view(), busy_bits in 0u32..256) {
        let busy: BTreeSet<usize> = (0..8usize).filter(|i| busy_bits & (1 << i) != 0).collect();
        let model = PlacementCost::default();
        let policy = CostPolicy::default();
        let batch = model.propose_batch(&view, &policy, &Hysteresis::new(), &busy);
        let mut seen = BTreeSet::new();
        for p in &batch {
            prop_assert!(!busy.contains(&p.shard), "moved busy shard {}", p.shard);
            prop_assert!(seen.insert(p.shard), "double-moved shard {}", p.shard);
        }
    }

    /// Simulate the controller loop on static traffic: decay, propose,
    /// apply, charge hysteresis — like the real tick. The walk must
    /// reach a fixed point without ever revisiting a placement (no
    /// A→B→A), and the fixed point must be stable even after every
    /// hysteresis penalty has decayed away.
    #[test]
    fn static_traffic_converges_without_revisiting(view in arb_view()) {
        let model = PlacementCost::default();
        let policy = CostPolicy::default();
        let mut hysteresis = Hysteresis::new();
        let mut v = view.clone();
        let mut seen = BTreeSet::new();
        seen.insert(config_key(&v));
        let mut converged = false;
        for _round in 0..300 {
            hysteresis.decay(&policy);
            let batch = model.propose_batch(&v, &policy, &hysteresis, &BTreeSet::new());
            if batch.is_empty() {
                // Quiet — but maybe only because of lingering penalties.
                // Flush them; converged only if still nothing to do.
                for _ in 0..10 {
                    hysteresis.decay(&policy);
                }
                if model
                    .propose_batch(&v, &policy, &hysteresis, &BTreeSet::new())
                    .is_empty()
                {
                    converged = true;
                    break;
                }
                continue;
            }
            for p in &batch {
                apply_move(&mut v, p);
                prop_assert!(
                    seen.insert(config_key(&v)),
                    "revisited a placement (ping-pong): {}",
                    p.reason
                );
                hysteresis.note_move(p.shard, &policy);
            }
        }
        prop_assert!(converged, "no fixed point within 300 rounds");
    }
}
