//! Criterion microbenchmarks for the hot paths of the reproduction:
//! timestamp oracles, RCP computation, skyline selection, redo
//! encode/compress, MVCC visibility, and SQL parse/bind.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gdb_compress::Codec;
use gdb_consistency::RcpCalculator;
use gdb_model::{
    ColumnDef, DataType, Datum, Row, RowKey, SchemaBuilder, TableId, Timestamp, TxnId,
};
use gdb_router::{NodeMetrics, Skyline};
use gdb_simclock::{GClock, GClockConfig};
use gdb_simnet::{NetNodeId, SimDuration, SimTime};
use gdb_sqlengine::DataAccess;
use gdb_storage::Table;
use gdb_txnmgr::GtmServer;
use gdb_wal::{record::decode_all, RedoBuffer, RedoPayload};

fn bench_timestamp_oracles(c: &mut Criterion) {
    let mut group = c.benchmark_group("timestamps");
    group.bench_function("gtm_commit", |b| {
        let mut gtm = GtmServer::new();
        b.iter(|| black_box(gtm.commit_gtm().unwrap()));
    });
    group.bench_function("gclock_commit", |b| {
        let mut g = GClock::new(1, 120.0, GClockConfig::default());
        g.sync(SimTime::from_secs(1));
        let now = SimTime::from_secs(1) + SimDuration::from_micros(500);
        b.iter(|| black_box(g.commit_timestamp(now)));
    });
    group.bench_function("dual_commit", |b| {
        let mut gtm = GtmServer::new();
        b.iter(|| black_box(gtm.commit_dual(Timestamp(1_000_000))));
    });
    group.bench_function("hlc_tick", |b| {
        let mut hlc = gdb_simclock::Hlc::new();
        let mut us = 1_000_000u64;
        b.iter(|| {
            us += 1; // physical time advances between events
            black_box(hlc.tick(SimTime::from_micros(us)))
        });
    });
    group.bench_function("hlc_update", |b| {
        let mut hlc = gdb_simclock::Hlc::new();
        let mut us = 1_000_000u64;
        b.iter(|| {
            us += 1;
            black_box(hlc.update(SimTime::from_micros(us), Timestamp(us << 16)))
        });
    });
    group.finish();
}

fn bench_rcp(c: &mut Criterion) {
    c.bench_function("rcp_compute_12_replicas", |b| {
        let mut rcp = RcpCalculator::new((0..12).collect());
        for i in 0..12 {
            rcp.report(i, Timestamp(1000 + i as u64));
        }
        b.iter(|| {
            rcp.report(5, Timestamp(2000));
            black_box(rcp.compute())
        });
    });
}

fn bench_skyline(c: &mut Criterion) {
    let nodes: Vec<NodeMetrics> = (0..12)
        .map(|i| NodeMetrics {
            node: NetNodeId(i),
            staleness: SimDuration::from_millis((i as u64 * 13) % 80),
            latency: SimDuration::from_millis(1 + (i as u64 * 7) % 50),
            load: (i as f64) / 12.0,
            healthy: i % 7 != 3,
        })
        .collect();
    c.bench_function("skyline_compute_select_12_nodes", |b| {
        b.iter(|| {
            let sky = Skyline::compute(black_box(&nodes));
            black_box(sky.select(Some(SimDuration::from_millis(60))))
        });
    });
}

fn redo_batch() -> Vec<u8> {
    let mut buf = RedoBuffer::new();
    for i in 0..256u64 {
        buf.append(
            TxnId(i),
            RedoPayload::Insert {
                table: TableId(3),
                key: RowKey(vec![Datum::Int(i as i64 % 32), Datum::Int(i as i64)]),
                row: Row(vec![
                    Datum::Int(i as i64),
                    Datum::Text(format!("warehouse-{} payload item", i % 600)),
                    Datum::Decimal(i as i64 * 100),
                ]),
            },
        );
        buf.append(
            TxnId(i),
            RedoPayload::Commit {
                commit_ts: Timestamp(i + 1),
            },
        );
    }
    buf.batch_from(gdb_wal::Lsn(0), 10_000).encode()
}

fn bench_redo(c: &mut Criterion) {
    let wire = redo_batch();
    let mut group = c.benchmark_group("redo");
    group.bench_function("decode_512_records", |b| {
        b.iter(|| black_box(decode_all(&wire).unwrap()));
    });
    group.bench_function("lz4_compress_batch", |b| {
        b.iter(|| black_box(Codec::Lz4.encode(&wire)));
    });
    let compressed = Codec::Lz4.encode(&wire);
    group.bench_function("lz4_decompress_batch", |b| {
        b.iter(|| black_box(Codec::Lz4.decode(&compressed).unwrap()));
    });
    group.finish();
}

fn bench_mvcc(c: &mut Criterion) {
    let mut table = Table::new();
    for key in 0..1_000i64 {
        for v in 0..8u64 {
            table
                .install_version(
                    RowKey::single(key),
                    Some(Row(vec![Datum::Int(key), Datum::Int(v as i64)])),
                    Timestamp(10 + v * 10),
                    SimTime::ZERO,
                )
                .unwrap();
        }
    }
    let mut group = c.benchmark_group("mvcc");
    group.bench_function("point_read_mid_snapshot", |b| {
        let key = RowKey::single(500i64);
        b.iter(|| black_box(table.read(&key, Timestamp(45))));
    });
    group.bench_function("range_100_keys", |b| {
        let lo = RowKey::single(400i64);
        let hi = RowKey::single(499i64);
        b.iter(|| black_box(table.range(Some(&lo), Some(&hi), Timestamp(45)).len()));
    });
    group.finish();
}

fn bench_sql(c: &mut Criterion) {
    let mut catalog = gdb_storage::Catalog::new();
    catalog
        .create_table(
            SchemaBuilder::new("stock")
                .column(ColumnDef::new("s_w_id", DataType::Int).not_null())
                .column(ColumnDef::new("s_i_id", DataType::Int).not_null())
                .column(ColumnDef::new("s_quantity", DataType::Int))
                .primary_key(&["s_w_id", "s_i_id"])
                .build(TableId(0))
                .unwrap(),
        )
        .unwrap();
    let sql = "SELECT s_quantity FROM stock WHERE s_w_id = ? AND s_i_id = ? FOR UPDATE";
    let mut group = c.benchmark_group("sql");
    group.bench_function("parse_bind_point_select", |b| {
        b.iter(|| black_box(gdb_sqlengine::prepare(sql, &catalog).unwrap()));
    });
    let prepared = gdb_sqlengine::prepare(sql, &catalog).unwrap();
    group.bench_function("execute_prepared_on_mem", |b| {
        let mut da = gdb_sqlengine::access::MemAccess::new();
        gdb_sqlengine::execute(
            &gdb_sqlengine::prepare(
                "CREATE TABLE stock (s_w_id INT NOT NULL, s_i_id INT NOT NULL, \
                 s_quantity INT, PRIMARY KEY (s_w_id, s_i_id))",
                da.catalog(),
            )
            .unwrap()
            .bound,
            &[],
            &mut da,
        )
        .unwrap();
        let ins =
            gdb_sqlengine::prepare("INSERT INTO stock VALUES (?, ?, ?)", da.catalog()).unwrap();
        for i in 0..1_000i64 {
            gdb_sqlengine::execute(
                &ins.bound,
                &[Datum::Int(1), Datum::Int(i), Datum::Int(50)],
                &mut da,
            )
            .unwrap();
        }
        // The MemAccess catalog allocates its own ids, matching `prepared`.
        b.iter(|| {
            black_box(
                gdb_sqlengine::execute(&prepared.bound, &[Datum::Int(1), Datum::Int(500)], &mut da)
                    .unwrap(),
            )
        });
    });
    group.finish();
}

/// The event-engine hot path: schedule-and-drain mixes on the timing
/// wheel vs the frozen heap engine (`gdb_simnet::reference::HeapSim`),
/// closure and typed-event flavors. Delays are short (bucket-ring hits)
/// with a sprinkle of sub-slot and far-future inserts, matching the
/// cluster's flush/deliver/RCP cadence.
fn bench_scheduler(c: &mut Criterion) {
    use gdb_simnet::reference::HeapSim;
    use gdb_simnet::{Sim, TypedEvent};

    const N: u64 = 64;
    fn delay(i: u64) -> SimDuration {
        // 0..~8ms mix with every 16th event far-future (> wheel window).
        if i % 16 == 15 {
            SimDuration::from_millis(200 + i)
        } else {
            SimDuration::from_nanos((i * 127_001) % 8_000_000)
        }
    }

    enum Tick {
        Bump,
    }
    impl TypedEvent<u64> for Tick {
        fn fire(self, w: &mut u64, _sim: &mut Sim<u64, Tick>) {
            *w += 1;
        }
    }

    let mut group = c.benchmark_group("scheduler");
    group.bench_function("wheel_typed_push_pop_64", |b| {
        let mut sim: Sim<u64, Tick> = Sim::new();
        let mut w = 0u64;
        b.iter(|| {
            for i in 0..N {
                sim.schedule_event_after(delay(i), Tick::Bump);
            }
            while sim.step(&mut w) {}
            black_box(w)
        });
    });
    group.bench_function("wheel_closure_push_pop_64", |b| {
        let mut sim: Sim<u64> = Sim::new();
        let mut w = 0u64;
        b.iter(|| {
            for i in 0..N {
                sim.schedule_after(delay(i), |w, _| *w += 1);
            }
            while sim.step(&mut w) {}
            black_box(w)
        });
    });
    group.bench_function("heap_closure_push_pop_64", |b| {
        let mut sim: HeapSim<u64> = HeapSim::new();
        let mut w = 0u64;
        b.iter(|| {
            for i in 0..N {
                sim.schedule_after(delay(i), |w, _| *w += 1);
            }
            while sim.step(&mut w) {}
            black_box(w)
        });
    });
    group.finish();
}

/// Per-event metrics recording: pre-registered handles (array index)
/// vs the string path (hash each name per call).
fn bench_metrics(c: &mut Criterion) {
    use gdb_obs::MetricsRegistry;

    let mut group = c.benchmark_group("metrics");
    group.bench_function("record_handle", |b| {
        let mut m = MetricsRegistry::default();
        let ticks = m.register_counter("txnmgr.commits");
        let lat = m.register_histogram("txnmgr.latency_us");
        let d = SimDuration::from_micros(850);
        b.iter(|| {
            m.bump(ticks);
            m.record(lat, d);
        });
    });
    group.bench_function("record_string", |b| {
        let mut m = MetricsRegistry::default();
        let d = SimDuration::from_micros(850);
        b.iter(|| {
            m.count("txnmgr.commits", 1);
            m.observe("txnmgr.latency_us", d);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_timestamp_oracles,
    bench_rcp,
    bench_skyline,
    bench_redo,
    bench_mvcc,
    bench_sql,
    bench_scheduler,
    bench_metrics
);
criterion_main!(benches);
