//! The skyline (Pareto front) over candidate read nodes.

use gdb_simnet::{NetNodeId, SimDuration};

/// Metrics a CN tracks for one candidate node (refreshed periodically in
/// the background).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeMetrics {
    pub node: NetNodeId,
    /// Estimated data staleness (how far behind the primary it has
    /// replayed).
    pub staleness: SimDuration,
    /// Observed query response latency (network + queueing).
    pub latency: SimDuration,
    /// Load factor ≥ 0 (0 = idle); inflates the effective cost.
    pub load: f64,
    pub healthy: bool,
}

impl NodeMetrics {
    /// The "latency and load" axis of Fig. 5: response latency inflated by
    /// the node's load.
    pub fn cost(&self) -> f64 {
        self.latency.as_micros() as f64 * (1.0 + self.load.max(0.0))
    }
}

/// The Pareto front of candidates: no member is dominated (strictly worse
/// on one axis, no better on the other) by another healthy candidate.
#[derive(Debug, Clone, Default)]
pub struct Skyline {
    candidates: Vec<NodeMetrics>,
}

impl Skyline {
    /// Compute the skyline over the given nodes (unhealthy ones excluded).
    pub fn compute(nodes: &[NodeMetrics]) -> Self {
        let healthy: Vec<NodeMetrics> = nodes.iter().filter(|n| n.healthy).copied().collect();
        let mut candidates: Vec<NodeMetrics> = healthy
            .iter()
            .filter(|a| !healthy.iter().any(|b| b.node != a.node && dominates(b, a)))
            .copied()
            .collect();
        // Sort by staleness so selection scans cheapest-fresh first.
        candidates.sort_by(|a, b| {
            a.staleness.cmp(&b.staleness).then(
                a.cost()
                    .partial_cmp(&b.cost())
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        Skyline { candidates }
    }

    /// The skyline members, staleness-ascending.
    pub fn candidates(&self) -> &[NodeMetrics] {
        &self.candidates
    }

    /// Pick the minimum-cost candidate whose staleness is within
    /// `freshness_bound` (`None` = any staleness acceptable).
    pub fn select(&self, freshness_bound: Option<SimDuration>) -> Option<NodeMetrics> {
        self.candidates
            .iter()
            .filter(|c| freshness_bound.is_none_or(|b| c.staleness <= b))
            .min_by(|a, b| {
                a.cost()
                    .partial_cmp(&b.cost())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied()
    }

    /// Pick the freshest candidate regardless of cost (strict freshness).
    pub fn select_freshest(&self) -> Option<NodeMetrics> {
        self.candidates.first().copied()
    }

    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    pub fn len(&self) -> usize {
        self.candidates.len()
    }
}

/// `a` dominates `b` if it is no worse on both axes and strictly better on
/// at least one.
fn dominates(a: &NodeMetrics, b: &NodeMetrics) -> bool {
    let (ca, cb) = (a.cost(), b.cost());
    (a.staleness <= b.staleness && ca < cb) || (a.staleness < b.staleness && ca <= cb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u32, staleness_ms: u64, latency_ms: u64, load: f64, healthy: bool) -> NodeMetrics {
        NodeMetrics {
            node: NetNodeId(id),
            staleness: SimDuration::from_millis(staleness_ms),
            latency: SimDuration::from_millis(latency_ms),
            load,
            healthy,
        }
    }

    /// Fig. 5's shape: fresh-but-slow and stale-but-fast nodes both stay
    /// on the skyline; a node worse on both axes is dominated away.
    #[test]
    fn skyline_keeps_pareto_front_only() {
        let nodes = [
            node(1, 10, 50, 0.0, true),  // fresh, slow — skyline
            node(2, 100, 5, 0.0, true),  // stale, fast — skyline
            node(3, 120, 60, 0.0, true), // worse than 1 and 2 — dominated
            node(4, 50, 20, 0.0, true),  // middle — skyline
        ];
        let sky = Skyline::compute(&nodes);
        let ids: Vec<u32> = sky.candidates().iter().map(|c| c.node.0).collect();
        assert_eq!(ids, vec![1, 4, 2], "staleness-ascending pareto front");
    }

    #[test]
    fn unhealthy_nodes_excluded() {
        let nodes = [node(1, 10, 10, 0.0, false), node(2, 99, 99, 0.0, true)];
        let sky = Skyline::compute(&nodes);
        assert_eq!(sky.len(), 1);
        assert_eq!(sky.candidates()[0].node, NetNodeId(2));
    }

    #[test]
    fn bounded_staleness_selection() {
        let nodes = [
            node(1, 10, 50, 0.0, true),
            node(2, 100, 5, 0.0, true),
            node(3, 50, 20, 0.0, true),
        ];
        let sky = Skyline::compute(&nodes);
        // Bound 60 ms: node 2 (stale 100) excluded; cheapest of {1,3} is 3.
        let pick = sky.select(Some(SimDuration::from_millis(60))).unwrap();
        assert_eq!(pick.node, NetNodeId(3));
        // No bound: overall cheapest is node 2.
        assert_eq!(sky.select(None).unwrap().node, NetNodeId(2));
        // Impossible bound: nothing qualifies (caller falls back to
        // the primary).
        assert!(sky.select(Some(SimDuration::from_millis(5))).is_none());
        // Freshest-first.
        assert_eq!(sky.select_freshest().unwrap().node, NetNodeId(1));
    }

    #[test]
    fn load_inflates_cost() {
        // Same latency; the loaded node must lose.
        let nodes = [node(1, 10, 10, 3.0, true), node(2, 10, 10, 0.0, true)];
        let sky = Skyline::compute(&nodes);
        assert_eq!(sky.select(None).unwrap().node, NetNodeId(2));
        // The loaded node is dominated (equal staleness, higher cost).
        assert_eq!(sky.len(), 1);
    }

    #[test]
    fn crashed_node_falls_off_between_refreshes() {
        let mut nodes = vec![node(1, 10, 10, 0.0, true), node(2, 20, 20, 0.0, true)];
        let before = Skyline::compute(&nodes);
        assert_eq!(before.select(None).unwrap().node, NetNodeId(1));
        nodes[0].healthy = false; // crash detected
        let after = Skyline::compute(&nodes);
        assert_eq!(after.select(None).unwrap().node, NetNodeId(2));
    }

    #[test]
    fn empty_input_is_empty_skyline() {
        let sky = Skyline::compute(&[]);
        assert!(sky.is_empty());
        assert!(sky.select(None).is_none());
        assert!(sky.select_freshest().is_none());
    }

    #[test]
    fn identical_nodes_all_survive() {
        // Neither strictly dominates the other — both stay, selection is
        // deterministic (first by sort order).
        let nodes = [node(1, 10, 10, 0.0, true), node(2, 10, 10, 0.0, true)];
        let sky = Skyline::compute(&nodes);
        assert_eq!(sky.len(), 2);
        assert!(sky.select(None).is_some());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_node(id: u32) -> impl Strategy<Value = NodeMetrics> {
        (0u64..200, 1u64..200, 0.0f64..4.0, any::<bool>()).prop_map(move |(s, l, load, healthy)| {
            NodeMetrics {
                node: NetNodeId(id),
                staleness: SimDuration::from_millis(s),
                latency: SimDuration::from_millis(l),
                load,
                healthy,
            }
        })
    }

    proptest! {
        /// The selected node is never dominated by any healthy node and
        /// always meets the freshness bound.
        #[test]
        fn selection_is_pareto_optimal(
            n0 in arb_node(0), n1 in arb_node(1), n2 in arb_node(2),
            n3 in arb_node(3), n4 in arb_node(4),
            bound_ms in proptest::option::of(0u64..250),
        ) {
            let nodes = [n0, n1, n2, n3, n4];
            let sky = Skyline::compute(&nodes);
            let bound = bound_ms.map(SimDuration::from_millis);
            if let Some(pick) = sky.select(bound) {
                prop_assert!(pick.healthy);
                if let Some(b) = bound {
                    prop_assert!(pick.staleness <= b);
                }
                // No healthy in-bound node has strictly lower cost.
                for n in nodes.iter().filter(|n| n.healthy) {
                    if bound.is_none_or(|b| n.staleness <= b) {
                        prop_assert!(n.cost() >= pick.cost() - 1e-9);
                    }
                }
            } else {
                // Only valid if nothing healthy meets the bound.
                for n in nodes.iter().filter(|n| n.healthy) {
                    if let Some(b) = bound {
                        prop_assert!(n.staleness > b);
                    } else {
                        prop_assert!(false, "unbounded select on nonempty healthy set failed");
                    }
                }
            }
        }
    }
}
