//! Fig. 6a — TPC-C throughput (100% local transactions):
//! * baseline GaussDB loses ~2/3 of its throughput moving from One-Region
//!   to Three-City (GTM round trips + synchronous WAN replication +
//!   untuned log shipping);
//! * GlobalDB recovers to ~91% of the One-Region figure (GClock + async
//!   replication + LZ4 + BBR + Nagle-off);
//! * GlobalDB shows no regression when deployed on One-Region.
//!
//! Regenerate with: `cargo run -p gdb-bench --release --bin fig6a`
//! (add `--json BENCH_fig6a.json` to also write the machine-readable
//! artifact, and `--trace trace.json` to export a Chrome trace-event
//! span timeline of the GlobalDB three-city run).

use gdb_bench::{
    artifact, emit_artifact, print_table, ratio, series_from_run, tpcc_run_with, trace_out_path,
    BenchParams,
};
use gdb_workloads::tpcc::TpccMix;
use globaldb::ClusterConfig;

fn main() {
    let params = BenchParams::from_env();
    let trace_path = trace_out_path();
    let mut art = artifact("fig6a", &params);

    let configs = [
        (
            "baseline @ one-region",
            ClusterConfig::baseline_one_region(),
        ),
        (
            "baseline @ three-city",
            ClusterConfig::baseline_three_city(),
        ),
        (
            "GlobalDB @ one-region",
            ClusterConfig::globaldb_one_region(),
        ),
        (
            "GlobalDB @ three-city",
            ClusterConfig::globaldb_three_city(),
        ),
    ];

    let mut results = Vec::new();
    for (label, config) in configs {
        // The trace export follows the paper's headline configuration.
        let traced = trace_path.is_some() && label == "GlobalDB @ three-city";
        // 100% local transactions (§V-A).
        let (mut cluster, report) = tpcc_run_with(
            config,
            &params,
            TpccMix::standard(),
            |wl| {
                wl.set_all_local();
            },
            |c| {
                if traced {
                    c.db.obs_mut().tracer.enable(1_000_000);
                }
            },
        );
        if traced {
            let path = trace_path.as_ref().unwrap();
            let doc = gdb_obs::to_chrome_trace(&cluster.db.obs().tracer);
            std::fs::write(path, doc).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            eprintln!(
                "wrote {} ({} spans, {} dropped)",
                path.display(),
                cluster.db.obs().tracer.spans().len(),
                cluster.db.obs().tracer.dropped()
            );
        }
        art.series
            .push(series_from_run(label, &mut cluster, &report));
        results.push((label, report.tpmc(), report.mean_latency("new_order")));
    }

    let baseline_one = results[0].1;
    let globaldb_one = results[2].1;
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(label, tpmc, lat)| {
            vec![
                label.to_string(),
                format!("{:.0}", tpmc),
                ratio(*tpmc, baseline_one),
                format!("{lat}"),
            ]
        })
        .collect();
    print_table(
        "Fig. 6a — TPC-C throughput, One-Region vs Three-City",
        &[
            "system",
            "tpmC (sim)",
            "vs baseline@one-region",
            "NewOrder mean",
        ],
        &rows,
    );

    println!(
        "baseline three-city retains {:.0}% of one-region (paper: ~33%)",
        100.0 * results[1].1 / baseline_one
    );
    println!(
        "GlobalDB three-city retains {:.0}% of GlobalDB one-region (paper: ~91%)",
        100.0 * results[3].1 / globaldb_one
    );
    println!(
        "GlobalDB one-region vs baseline one-region: {} (paper: no regression)",
        gdb_bench::ratio(globaldb_one, baseline_one)
    );
    emit_artifact(&art);
}
