//! Low-level binary encoding helpers: LEB128 varints, length-prefixed
//! strings, and datum/row/key encoding shared by all redo record types.

use gdb_model::{DataType, Datum, Row, RowKey};

/// Decode failure: the byte stream is malformed or truncated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

pub type DecodeResult<T> = Result<T, DecodeError>;

pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

pub fn put_varint_i64(out: &mut Vec<u8>, v: i64) {
    // ZigZag encoding.
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

pub fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    put_varint(out, data.len() as u64);
    out.extend_from_slice(data);
}

pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A cursor over encoded bytes.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub fn u8(&mut self) -> DecodeResult<u8> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| DecodeError("truncated u8".into()))?;
        self.pos += 1;
        Ok(b)
    }

    pub fn varint(&mut self) -> DecodeResult<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(DecodeError("varint overflow".into()));
            }
        }
    }

    pub fn varint_i64(&mut self) -> DecodeResult<i64> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    pub fn bytes(&mut self) -> DecodeResult<&'a [u8]> {
        let len = self.varint()? as usize;
        if self.pos + len > self.data.len() {
            return Err(DecodeError(format!(
                "truncated bytes: want {len}, have {}",
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    pub fn str(&mut self) -> DecodeResult<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError("invalid utf8".into()))
    }
}

// Datum tags.
const T_NULL: u8 = 0;
const T_INT: u8 = 1;
const T_DECIMAL: u8 = 2;
const T_TEXT: u8 = 3;
const T_BOOL_F: u8 = 4;
const T_BOOL_T: u8 = 5;

pub fn put_datum(out: &mut Vec<u8>, d: &Datum) {
    match d {
        Datum::Null => out.push(T_NULL),
        Datum::Int(v) => {
            out.push(T_INT);
            put_varint_i64(out, *v);
        }
        Datum::Decimal(v) => {
            out.push(T_DECIMAL);
            put_varint_i64(out, *v);
        }
        Datum::Text(s) => {
            out.push(T_TEXT);
            put_str(out, s);
        }
        Datum::Bool(false) => out.push(T_BOOL_F),
        Datum::Bool(true) => out.push(T_BOOL_T),
    }
}

pub fn get_datum(r: &mut Reader) -> DecodeResult<Datum> {
    Ok(match r.u8()? {
        T_NULL => Datum::Null,
        T_INT => Datum::Int(r.varint_i64()?),
        T_DECIMAL => Datum::Decimal(r.varint_i64()?),
        T_TEXT => Datum::Text(r.str()?),
        T_BOOL_F => Datum::Bool(false),
        T_BOOL_T => Datum::Bool(true),
        t => return Err(DecodeError(format!("unknown datum tag {t}"))),
    })
}

pub fn put_row(out: &mut Vec<u8>, row: &Row) {
    put_varint(out, row.0.len() as u64);
    for d in &row.0 {
        put_datum(out, d);
    }
}

pub fn get_row(r: &mut Reader) -> DecodeResult<Row> {
    let n = r.varint()? as usize;
    let mut vals = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        vals.push(get_datum(r)?);
    }
    Ok(Row(vals))
}

pub fn put_key(out: &mut Vec<u8>, key: &RowKey) {
    put_varint(out, key.0.len() as u64);
    for d in &key.0 {
        put_datum(out, d);
    }
}

pub fn get_key(r: &mut Reader) -> DecodeResult<RowKey> {
    let n = r.varint()? as usize;
    let mut vals = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        vals.push(get_datum(r)?);
    }
    Ok(RowKey(vals))
}

pub fn put_data_type(out: &mut Vec<u8>, dt: DataType) {
    out.push(match dt {
        DataType::Int => 0,
        DataType::Decimal => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
    });
}

pub fn get_data_type(r: &mut Reader) -> DecodeResult<DataType> {
    Ok(match r.u8()? {
        0 => DataType::Int,
        1 => DataType::Decimal,
        2 => DataType::Text,
        3 => DataType::Bool,
        t => return Err(DecodeError(format!("unknown data type tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            assert_eq!(Reader::new(&out).varint().unwrap(), v);
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX] {
            let mut out = Vec::new();
            put_varint_i64(&mut out, v);
            assert_eq!(Reader::new(&out).varint_i64().unwrap(), v);
        }
    }

    #[test]
    fn datum_roundtrip_all_variants() {
        let datums = [
            Datum::Null,
            Datum::Int(-42),
            Datum::Decimal(999_999),
            Datum::Text("héllo".into()),
            Datum::Bool(true),
            Datum::Bool(false),
        ];
        let mut out = Vec::new();
        for d in &datums {
            put_datum(&mut out, d);
        }
        let mut r = Reader::new(&out);
        for d in &datums {
            assert_eq!(&get_datum(&mut r).unwrap(), d);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn row_and_key_roundtrip() {
        let row = Row(vec![Datum::Int(1), Datum::Text("x".into()), Datum::Null]);
        let key = RowKey(vec![Datum::Int(7), Datum::Int(8)]);
        let mut out = Vec::new();
        put_row(&mut out, &row);
        put_key(&mut out, &key);
        let mut r = Reader::new(&out);
        assert_eq!(get_row(&mut r).unwrap(), row);
        assert_eq!(get_key(&mut r).unwrap(), key);
    }

    #[test]
    fn truncation_errors_not_panics() {
        let mut out = Vec::new();
        put_str(&mut out, "hello world");
        let mut r = Reader::new(&out[..3]);
        assert!(r.str().is_err());
        let mut r2 = Reader::new(&[0x80, 0x80]);
        assert!(r2.varint().is_err());
    }

    #[test]
    fn invalid_utf8_is_error() {
        let mut out = Vec::new();
        put_bytes(&mut out, &[0xff, 0xfe]);
        assert!(Reader::new(&out).str().is_err());
    }
}
