//! The replication driver: redo log shipping from primaries to replicas.
//!
//! Owns the [`Replica`] / [`Shard`] state and the batch pipeline — seal,
//! drain, FIFO stream transmission, propagation, replay, apply. Shipping
//! is asynchronous by default (paper §IV): a recurring flush event seals
//! each shard's staged redo and ships whatever the channels drained,
//! modelling TCP stream serialization (a saturated link queues batches
//! behind each other) and replica replay backlog explicitly.
//!
//! The propagation leg of each batch goes through the message plane
//! ([`RpcKind::LogShipBatch`]) with a minimal payload; transmission time
//! is computed from link bandwidth separately, and the remaining batch
//! bytes are accounted on the link without a second latency draw.

use crate::cluster::{Cluster, GlobalDb};
use crate::event::{CoreEvent, CoreSim};
use crate::net::RpcKind;
use crate::shardlog::ShardLog;
use gdb_obs::SpanKind;
use gdb_replication::{ReplicaApplier, ShippingChannel};
use gdb_simnet::{NetNodeId, RegionId, SimDuration, SimTime};
use gdb_storage::DataNodeStorage;
use gdb_wal::RedoRecord;

/// One replica data node of a shard.
pub struct Replica {
    pub node: NetNodeId,
    pub region: RegionId,
    pub applier: ReplicaApplier,
    pub channel: ShippingChannel,
    /// Virtual time at which the replica finishes its current replay
    /// backlog (load / freshness modelling).
    pub busy_until: SimTime,
    /// When the shipping stream finishes transmitting its current backlog
    /// — TCP serializes batches, so a saturated link queues them (FIFO)
    /// and replica freshness degrades accordingly.
    pub stream_free: SimTime,
    /// Arrival time of the previous batch (jitter on the propagation leg
    /// must not reorder a FIFO stream).
    pub last_arrival: SimTime,
    /// Incarnation counter: bumped when the replica is rebuilt (failover
    /// resync), so in-flight delivery events from the old stream are
    /// dropped instead of corrupting the new one.
    pub epoch: u64,
}

/// One shard: primary data node plus replicas.
pub struct Shard {
    pub primary: NetNodeId,
    pub region: RegionId,
    pub storage: DataNodeStorage,
    pub log: ShardLog,
    pub replicas: Vec<Replica>,
    /// Routing epoch at which the current primary took ownership (0 =
    /// initial placement). Requests carrying an older epoch are rejected
    /// with [`gdb_model::GdbError::StaleRoute`] and re-routed.
    pub owner_epoch: u64,
}

impl GlobalDb {
    /// Seal and ship one shard's redo to its replicas. Returns the
    /// deliveries to schedule: `(replica node, epoch, deliver_at, records)`
    /// — replicas are addressed by node id + incarnation so failover never
    /// misroutes in-flight batches.
    pub(crate) fn flush_shard(
        &mut self,
        shard_idx: usize,
        now: SimTime,
    ) -> Vec<(NetNodeId, u64, SimTime, Vec<RedoRecord>)> {
        let codec = self.config.codec;
        let shard_region = self.shards[shard_idx].region;
        let shard = &mut self.shards[shard_idx];
        shard.log.seal_upto(now);
        let mut deliveries = Vec::new();
        let mut shipped: Vec<(NetNodeId, u64, u64, u64, SimTime)> = Vec::new();
        for replica in shard.replicas.iter_mut() {
            loop {
                // Refresh the channel's codec if the config changed.
                let _ = codec;
                let Some(wire) = replica.channel.drain(shard.log.sealed()) else {
                    break;
                };
                // Propagation (latency + jitter + injected delay) with a
                // minimal payload; transmission is modelled separately so
                // a saturated stream queues batches behind each other.
                let Some(propagation) = self.plane.send(
                    &mut self.topo,
                    RpcKind::LogShipBatch,
                    shard.primary,
                    replica.node,
                    1,
                ) else {
                    // Replica unreachable: rewind so we retry later.
                    replica.channel.rewind(wire.batch.first_lsn);
                    break;
                };
                let link = self
                    .topo
                    .link(shard_region, self.topo.node_region(replica.node));
                let tx = SimDuration::from_secs_f64(
                    wire.wire_bytes as f64 / link.effective_bandwidth().max(1) as f64,
                );
                let start = now.max(replica.stream_free);
                replica.stream_free = start + tx;
                let arrive = (replica.stream_free + propagation).max(replica.last_arrival);
                replica.last_arrival = arrive;
                shipped.push((
                    replica.node,
                    wire.batch.records.len() as u64,
                    wire.raw_bytes as u64,
                    wire.wire_bytes as u64,
                    arrive,
                ));
                deliveries.push((replica.node, replica.epoch, arrive, wire.batch.records));
            }
        }
        // Shipping totals are recorded here, not derived from channel
        // stats: channels are replaced on promote/rejoin and would lose
        // their counters.
        let primary = self.shards[shard_idx].primary;
        let ship = self.hot.ship;
        for (node, records, raw, wire, arrive) in shipped {
            let m = &mut self.obs.metrics;
            m.bump(ship.batches);
            m.add(ship.records, records);
            m.add(ship.raw_bytes, raw);
            m.add(ship.wire_bytes, wire);
            m.record(ship.batch_us, arrive.since(now));
            // The propagation probe above carried 1 byte; account the rest
            // of the batch on the link so traffic totals reflect shipping.
            self.plane.charge_bytes(
                &mut self.topo,
                RpcKind::LogShipBatch,
                primary,
                node,
                wire.saturating_sub(1),
            );
            self.obs
                .tracer
                .record(SpanKind::LogShip, shard_idx as u64, now, arrive);
        }
        deliveries
    }

    fn replica_mut(
        &mut self,
        shard_idx: usize,
        node: NetNodeId,
        epoch: u64,
    ) -> Option<&mut Replica> {
        self.shards[shard_idx]
            .replicas
            .iter_mut()
            .find(|r| r.node == node && r.epoch == epoch)
    }

    /// Deliver a shipped batch at a replica: model replay time, then
    /// apply. Returns `None` if the replica incarnation is gone (failover).
    pub(crate) fn deliver_batch(
        &mut self,
        shard_idx: usize,
        node: NetNodeId,
        epoch: u64,
        record_count: usize,
        arrived: SimTime,
    ) -> Option<SimTime> {
        let replay = self.config.replay;
        let replica = self.replica_mut(shard_idx, node, epoch)?;
        let start = replica.busy_until.max(arrived);
        let done = start + replay.batch_delay(record_count);
        replica.busy_until = done;
        Some(done)
    }

    pub(crate) fn apply_batch(
        &mut self,
        shard_idx: usize,
        node: NetNodeId,
        epoch: u64,
        records: &[RedoRecord],
        at: SimTime,
    ) {
        let Some(replica) = self.replica_mut(shard_idx, node, epoch) else {
            return; // stale incarnation: the replica was rebuilt/promoted
        };
        if let Err(e) = replica.applier.apply_batch(records, at) {
            panic!("replica replay failed (shard {shard_idx}, node {node:?}): {e}");
        }
    }
}

impl Cluster {
    /// Ship and apply everything sealed so far without network delay
    /// (setup helper).
    pub(crate) fn sync_replicas_now(&mut self) {
        let now = self.sim.now();
        for s in 0..self.db.shards.len() {
            self.db.shards[s].log.seal_upto(now);
            let deliveries = self.db.flush_shard(s, now);
            for (node, epoch, _at, records) in deliveries {
                self.db.apply_batch(s, node, epoch, &records, now);
            }
        }
    }
}

/// Recurring flush event: ship one shard's sealed redo, schedule the
/// deliveries and replays (typed, allocation-free), and re-arm.
pub(crate) fn flush_event(w: &mut GlobalDb, sim: &mut CoreSim, shard: usize) {
    let now = sim.now();
    let deliveries = w.flush_shard(shard, now);
    for (node, epoch, deliver_at, records) in deliveries {
        sim.schedule_event_at(
            deliver_at,
            CoreEvent::DeliverBatch {
                shard,
                node,
                epoch,
                records,
            },
        );
    }
    let interval = w.config.flush_interval;
    sim.schedule_event_after(interval, CoreEvent::FlushShard { shard });
}
