//! The per-silo event loop: decode a frame, apply injected delay,
//! route, ack.
//!
//! One [`SiloState`] per silo, shared (`Arc<Mutex>`) between the loop
//! threads that serve it and the harness that reads its tallies at
//! shutdown. The frame-handling core is transport-agnostic: the channel
//! loop and each TCP connection handler both feed [`handle_frame`].

use crate::membership::SiloSpec;
use crate::router::MessageRouter;
use crate::wire::{self, Frame};
use gdb_simclock::{TimeSource, WallClock};
use gdb_simnet::SimTime;
use globaldb::ALL_RPC_KINDS;
use std::sync::{Arc, Mutex};

/// Number of `RpcKind`s (array size of the per-kind tallies).
pub const NKINDS: usize = ALL_RPC_KINDS.len();

/// What one silo saw: message/byte totals and a per-kind split, plus the
/// real-clock instant of the last frame (receive timestamps come from
/// the silo's own [`WallClock`], not the driver's virtual time).
#[derive(Debug, Clone)]
pub struct SiloStats {
    pub msgs: u64,
    pub bytes: u64,
    pub per_kind: [u64; NKINDS],
    pub last_recv: SimTime,
}

impl Default for SiloStats {
    fn default() -> Self {
        SiloStats {
            msgs: 0,
            bytes: 0,
            per_kind: [0; NKINDS],
            last_recv: SimTime::ZERO,
        }
    }
}

/// The mutable half of a running silo.
#[derive(Debug)]
pub struct SiloState {
    pub spec: SiloSpec,
    pub router: MessageRouter,
    pub stats: SiloStats,
    clock: WallClock,
}

/// A silo shared between its serving threads and the harness.
pub type SharedSilo = Arc<Mutex<SiloState>>;

impl SiloState {
    /// Build a silo hosting every node of `spec`, stamping received
    /// frames with `clock` (all silos of a cluster share one origin).
    pub fn new(spec: SiloSpec, clock: WallClock) -> SharedSilo {
        let mut router = MessageRouter::default();
        for &(node, kind) in &spec.nodes {
            router.host(node, kind);
        }
        Arc::new(Mutex::new(SiloState {
            spec,
            router,
            stats: SiloStats::default(),
            clock,
        }))
    }
}

/// Handle one request-direction frame body: decode, physically sleep any
/// fault-injected delay, route, and return the encoded ack. `None`
/// means the shutdown sentinel (or an undecodable frame) — the serving
/// loop should exit (resp. drop the connection).
pub fn handle_frame(silo: &SharedSilo, body: &[u8]) -> Option<Vec<u8>> {
    let frame = decode(body)?;
    let Frame::Rpc(req) = frame else {
        return None;
    };
    if req.delay_ns > 0 {
        // The fault-injected one-way delay is served *here*, at the
        // destination, like tc's netem on the receive path — the sender's
        // measured round trip includes it physically.
        std::thread::sleep(std::time::Duration::from_nanos(req.delay_ns));
    }
    let mut s = silo.lock().expect("silo lock");
    s.stats.msgs += 1;
    s.stats.bytes += req.declared;
    s.stats.per_kind[req.kind.index()] += 1;
    s.stats.last_recv = s.clock.now();
    let ack = s.router.route(&req);
    Some(wire::encode_ack(&ack))
}

fn decode(body: &[u8]) -> Option<Frame> {
    match wire::decode_frame(body) {
        Ok(f) => Some(f),
        Err(e) => {
            // A corrupt frame on loopback is a bug, not line noise; be
            // loud but keep the silo alive for the other connections.
            eprintln!("silo: dropping undecodable frame: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_ack, encode_request, encode_shutdown, read_frame, Request};
    use gdb_simnet::{NetNodeId, NodeKind};
    use globaldb::RpcKind;

    fn test_silo() -> SharedSilo {
        SiloState::new(
            SiloSpec {
                host: 0,
                nodes: vec![
                    (NetNodeId(0), NodeKind::GtmServer),
                    (NetNodeId(1), NodeKind::DataNodePrimary),
                ],
            },
            WallClock::new(),
        )
    }

    fn body_of(encoded: &[u8]) -> Vec<u8> {
        read_frame(&mut &encoded[..]).unwrap()
    }

    #[test]
    fn frames_are_routed_and_tallied() {
        let silo = test_silo();
        let req = Request {
            kind: RpcKind::GtmBeginTs,
            from: NetNodeId(9),
            to: NetNodeId(0),
            seq: 5,
            declared: 128,
            delay_ns: 0,
        };
        let ack_bytes = handle_frame(&silo, &body_of(&encode_request(&req))).unwrap();
        let ack = decode_ack(&body_of(&ack_bytes)).unwrap();
        assert!(ack.ok);
        assert_eq!(ack.seq, 5);
        assert_eq!(ack.value, 1, "first GTM tick");
        let s = silo.lock().unwrap();
        assert_eq!(s.stats.msgs, 1);
        assert_eq!(s.stats.bytes, 128);
        assert_eq!(s.stats.per_kind[RpcKind::GtmBeginTs.index()], 1);
        assert!(s.stats.last_recv > SimTime::ZERO);
    }

    #[test]
    fn injected_delay_is_physically_served() {
        let silo = test_silo();
        let req = Request {
            kind: RpcKind::DnRead,
            from: NetNodeId(9),
            to: NetNodeId(1),
            seq: 1,
            declared: 64,
            delay_ns: 3_000_000, // 3 ms
        };
        let start = std::time::Instant::now();
        handle_frame(&silo, &body_of(&encode_request(&req))).unwrap();
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(3),
            "delay_ns must be slept, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn shutdown_sentinel_ends_the_loop() {
        let silo = test_silo();
        assert!(handle_frame(&silo, &body_of(&encode_shutdown())).is_none());
        assert!(handle_frame(&silo, b"garbage").is_none());
        assert_eq!(silo.lock().unwrap().stats.msgs, 0);
    }
}
