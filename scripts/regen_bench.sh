#!/usr/bin/env bash
# Regenerate and bless the committed bench baselines:
#
#   BENCH_smoke.json  - tiny-scale bundle of all five figures + one
#                       nemesis run; the CI perf gate compares every
#                       push against it (scripts/ci.sh bench-smoke).
#   BENCH_fig6a.json  - the small-scale Fig. 6a artifact, with the
#                       per-phase commit-wait vs execute breakdown.
#   BENCH_engine.json - wall-clock engine benchmark (timing wheel vs the
#                       frozen heap engine). Absolute events/sec are
#                       machine-local; the CI gate only checks the
#                       fast-over-legacy speedup ratio, so regenerating
#                       on a different machine is safe.
#   BENCH_realnet.json - 3-node loopback TPC-C smoke on the real
#                       backends. Also wall_clock=true: the gate checks
#                       only the tcp-over-thread throughput ratio.
#   BENCH_scale.json  - scale-out routing + terminal-state benchmark at
#                       the reduced CI shape (the full 256-shard /
#                       10^5-terminal default is a manual run). Also
#                       wall_clock=true: the gate checks the fast-over-
#                       legacy routing speedup and the bytes-per-terminal
#                       reduction, both in-run ratios. The parameters
#                       here must match stage_scale in scripts/ci.sh.
#   BENCH_txn.json    - transaction hot-path benchmark (live pipeline vs
#                       the frozen pre-pass reference). wall_clock=true:
#                       the gate checks the fast-over-legacy speedup and
#                       the allocations-per-txn reduction, both in-run
#                       ratios, so cross-machine re-blessing is safe.
#
# Run this after an intended performance change, eyeball the diff
# (throughput should move the way you expect, nothing else), and commit
# the updated files.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "==> tiny-scale smoke bundle -> BENCH_smoke.json"
for fig in fig1a fig6a fig6b fig6c fig6d ablation_rebalance; do
    GDB_BENCH_SCALE=tiny GDB_BENCH_SECS=2 GDB_BENCH_TERMINALS=8 \
        cargo run --release -q -p gdb-bench --bin "$fig" -- \
        --json "$tmp/$fig.json" >/dev/null
done
cargo run --release -q -p gdb-chaos --bin nemesis -- \
    --seed 1 --duration 2s --json "$tmp/nemesis.json" >/dev/null
cargo run --release -q -p gdb-bench --bin benchcmp -- merge \
    BENCH_smoke.json \
    "$tmp"/fig1a.json "$tmp"/fig6a.json "$tmp"/fig6b.json \
    "$tmp"/fig6c.json "$tmp"/fig6d.json "$tmp"/ablation_rebalance.json \
    "$tmp"/nemesis.json

echo "==> small-scale Fig. 6a -> BENCH_fig6a.json"
GDB_BENCH_SCALE=small GDB_BENCH_SECS=10 GDB_BENCH_TERMINALS=24 \
    cargo run --release -q -p gdb-bench --bin fig6a -- --json BENCH_fig6a.json

echo "==> wall-clock engine benchmark -> BENCH_engine.json"
cargo run --release -q -p gdb-bench --bin engine_bench -- --json BENCH_engine.json

echo "==> wall-clock txn hot-path benchmark -> BENCH_txn.json"
cargo run --release -q -p gdb-bench --bin txn_bench -- --json BENCH_txn.json

echo "==> scale-out reduced-shape benchmark -> BENCH_scale.json"
GDB_SCALE_SHARDS=64 GDB_SCALE_REGIONS=5 GDB_SCALE_TERMINALS=5000 \
    GDB_SCALE_KEYS=1024 GDB_SCALE_EPOCHS=4 GDB_SCALE_OPS=8 GDB_SCALE_MOVES=8 \
    GDB_SCALE_CLUSTER_MS=500 GDB_SCALE_THINK_MS=100 \
    cargo run --release -q -p gdb-bench --bin scale_bench -- --json BENCH_scale.json

echo "==> realnet loopback smoke -> BENCH_realnet.json"
GDB_BENCH_SCALE=tiny GDB_BENCH_SECS=2 GDB_BENCH_TERMINALS=8 \
    cargo run --release -q -p gdb-realnet --bin realnet_smoke -- --json BENCH_realnet.json

echo "baselines regenerated; review the diff and commit"
