//! Acceptance tests for the typed RPC message plane.
//!
//! The refactor's contract is that *every* wire charge in the core crate
//! flows through `MessagePlane`, so per-`RpcKind` counters are complete
//! and the cost model has a single chokepoint. Two things enforce that
//! here: a source-level scan that no direct `Topology` charging call
//! survives outside `net.rs`, and a live-cluster check that every
//! `RpcKind` shows up in `metrics_snapshot()` with a per-region label.

use globaldb::{Cluster, ClusterConfig, Datum, SimTime, ALL_RPC_KINDS};
use std::path::{Path, PathBuf};

fn core_src() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/core/src")
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read core src") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// No direct `topo.one_way` / `topo.rtt` / `topo.ship_rtt` /
/// `topo.charge_bytes` call sites outside the message plane. Everything
/// must go through `MessagePlane` so the per-kind accounting is complete.
#[test]
fn no_direct_topology_charges_outside_the_plane() {
    let banned = [
        "topo.one_way(",
        "topo.rtt(",
        "topo.ship_rtt(",
        "topo.charge_bytes(",
    ];
    let mut files = Vec::new();
    rust_sources(&core_src(), &mut files);
    assert!(files.len() > 10, "unexpectedly few core sources");
    let mut offenders = Vec::new();
    for path in &files {
        if path.file_name().is_some_and(|n| n == "net.rs") {
            continue; // the plane itself wraps the Topology primitives
        }
        let text = std::fs::read_to_string(path).expect("read source");
        // Whitespace-stripped so `topo\n  .one_way(` can't slip through.
        let squeezed: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        for pat in banned {
            if squeezed.contains(pat) {
                offenders.push(format!("{}: {pat}", path.display()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "direct topology charge sites outside MessagePlane:\n{}",
        offenders.join("\n")
    );
}

/// Transport-generic crates stay transport-generic: no wall-clock or
/// socket primitive may appear outside the crates whose *job* is real
/// time — `simclock` (hosts the `WallClock` time source), `realnet`
/// (the real transports), and `bench` (wall-clock measurement
/// binaries). A `thread::sleep` or `Instant::now` in core, txnmgr, or
/// replication would silently couple transaction logic to the machine
/// clock and break both sim determinism and the sim/real split.
#[test]
fn no_wall_clock_or_sockets_in_transport_generic_crates() {
    let banned = [
        "Instant::now(",
        "SystemTime",
        "thread::sleep(",
        "TcpStream",
        "TcpListener",
        "UdpSocket",
        "WallClock",
    ];
    let exempt = ["simclock", "realnet", "bench"];
    let crates_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates");
    let mut offenders = Vec::new();
    let mut scanned = 0usize;
    for entry in std::fs::read_dir(&crates_dir).expect("read crates dir") {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if !path.is_dir() || exempt.contains(&name.as_str()) {
            continue;
        }
        let src = path.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_sources(&src, &mut files);
        for file in files {
            scanned += 1;
            let text = std::fs::read_to_string(&file).expect("read source");
            let squeezed: String = text.chars().filter(|c| !c.is_whitespace()).collect();
            for pat in banned {
                let pat_squeezed: String = pat.chars().filter(|c| !c.is_whitespace()).collect();
                if squeezed.contains(pat_squeezed.as_str()) {
                    offenders.push(format!("{}: {pat}", file.display()));
                }
            }
        }
    }
    assert!(scanned > 40, "unexpectedly few sources scanned ({scanned})");
    assert!(
        offenders.is_empty(),
        "wall-clock/socket primitives in transport-generic crates:\n{}",
        offenders.join("\n")
    );
}

/// Every `RpcKind` has a live counter in `metrics_snapshot()` — both the
/// total (`rpc.<kind>.msgs`) and at least one per-region-pair labelled
/// variant (`rpc.<kind>.msgs.<from>-<to>`) — even for kinds this
/// particular run never exercised (they pre-register at zero).
#[test]
fn every_rpc_kind_has_a_live_region_labelled_counter() {
    let mut c = Cluster::new(ClusterConfig::globaldb_three_city());
    c.ddl("CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k)) DISTRIBUTE BY HASH(k)")
        .unwrap();
    let table = c.db.catalog().table_by_name("kv").unwrap().id;
    c.bulk_load(
        table,
        (0..16i64)
            .map(|k| gdb_model::Row(vec![Datum::Int(k), Datum::Int(k * 10)]))
            .collect(),
    )
    .unwrap();
    c.finish_load();
    c.run_until(SimTime::from_millis(1500));
    for k in 0..8i64 {
        c.execute_sql(
            0,
            SimTime::from_millis(1500 + k as u64 * 10),
            "UPDATE kv SET v = ? WHERE k = ?",
            &[Datum::Int(k * 100), Datum::Int(k)],
        )
        .unwrap();
    }
    // A full-table update crosses shards, forcing a real 2PC prepare round.
    c.execute_sql(0, SimTime::from_millis(1650), "UPDATE kv SET v = 0", &[])
        .unwrap();
    let (_, _) = c
        .execute_sql(
            1,
            SimTime::from_millis(1700),
            "SELECT v FROM kv WHERE k = ?",
            &[Datum::Int(3)],
        )
        .unwrap();
    let snap = c.db.metrics_snapshot();
    for kind in ALL_RPC_KINDS {
        let total = format!("rpc.{}.msgs", kind.name());
        assert!(
            snap.counter(&total).is_some(),
            "no live counter for {total}"
        );
        let prefix = format!("rpc.{}.msgs.", kind.name());
        let labelled = snap.metrics.keys().any(|n| n.starts_with(prefix.as_str()));
        assert!(
            labelled,
            "no region-labelled counter rpc.{}.msgs.<from>-<to>",
            kind.name()
        );
    }
    // And the plumbing is not write-only: the kinds this workload surely
    // exercised carry non-zero traffic.
    for name in [
        "rpc.dn_read.msgs",
        "rpc.dn_write.msgs",
        "rpc.two_pc_prepare.msgs",
    ] {
        assert!(
            snap.counter(name).unwrap_or(0) > 0,
            "{name} stayed zero over a read/write workload"
        );
    }
    // The migration kinds pre-register at zero on an idle cluster (no
    // migration was scheduled here).
    for name in [
        "rpc.migrate_snapshot.msgs",
        "rpc.migrate_catchup.msgs",
        "rpc.migrate_cutover.msgs",
    ] {
        assert_eq!(
            snap.counter(name),
            Some(0),
            "{name} must pre-register at zero without a migration"
        );
    }
}

/// An online shard migration exercises all three migration `RpcKind`s:
/// the snapshot copy, at least one catch-up batch, and the cutover
/// barrier + announce fan-out.
#[test]
fn migration_rpc_kinds_carry_traffic_during_a_migration() {
    let mut c = Cluster::new(ClusterConfig::globaldb_one_region());
    c.ddl("CREATE TABLE kv (k INT NOT NULL, v INT, PRIMARY KEY (k)) DISTRIBUTE BY HASH(k)")
        .unwrap();
    let table = c.db.catalog().table_by_name("kv").unwrap().id;
    c.bulk_load(
        table,
        (0..32i64)
            .map(|k| gdb_model::Row(vec![Datum::Int(k), Datum::Int(0)]))
            .collect(),
    )
    .unwrap();
    c.finish_load();
    c.run_until(SimTime::from_millis(300));

    let schema = c.db.catalog().table(table).unwrap().clone();
    let key = (0..32i64)
        .find(|&k| {
            schema
                .shard_of_pk(&gdb_model::RowKey::single(k), c.db.shards().len() as u16)
                .0
                == 0
        })
        .expect("a key on shard 0");
    let source_host = c.db.topo().node_host(c.db.shards()[0].primary);
    c.start_migration(0, c.db.regions()[0], (source_host + 1) % 3)
        .unwrap();
    // Write into the shard while the migration catches up so at least
    // one catch-up batch ships.
    for i in 0..4u64 {
        c.execute_sql(
            0,
            SimTime::from_millis(301 + i),
            "UPDATE kv SET v = ? WHERE k = ?",
            &[Datum::Int(i as i64), Datum::Int(key)],
        )
        .unwrap();
    }
    c.run_until(SimTime::from_secs(3));
    assert_eq!(c.db.last_migration_completed(), Some(0));

    let snap = c.db.metrics_snapshot();
    for name in [
        "rpc.migrate_snapshot.msgs",
        "rpc.migrate_catchup.msgs",
        "rpc.migrate_cutover.msgs",
    ] {
        assert!(
            snap.counter(name).unwrap_or(0) > 0,
            "{name} stayed zero across a completed migration"
        );
    }
}
