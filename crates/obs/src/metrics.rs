//! The metrics registry: named counters, gauges, and bounded-quantile
//! histograms.
//!
//! Names are usually `&'static str` constants owned by the subsystem
//! crates (`gdb_txnmgr::metrics`, `gdb_replication::metrics`, …) in a
//! `subsystem.noun[_unit]` scheme — e.g. `txnmgr.phase.commit_wait_us`,
//! `replication.ship.wire_bytes`, `rcp.rounds`. Labelled instruments
//! (per-`RpcKind`, per-region-pair) pass an owned `String`; keys are
//! `Cow<'static, str>` so the static-name hot path stays allocation-free.
//! Registration is implicit: the first record of a name creates the
//! instrument. Storage is `BTreeMap`-backed so snapshots iterate in
//! deterministic name order.
//!
//! # Handles
//!
//! Per-transaction and per-message call sites should not pay a string
//! `BTreeMap` lookup per record. [`MetricsRegistry::register_counter`] /
//! [`MetricsRegistry::register_histogram`] resolve a name once to a
//! [`CounterId`] / [`HistId`] — a plain `Vec` slot index — and the hot
//! methods ([`MetricsRegistry::add`], [`MetricsRegistry::bump`],
//! [`MetricsRegistry::record`]) are direct indexed writes. The name→id
//! map is consulted only at registration and by the string-path methods,
//! which transparently forward to the slot when a name is registered (so
//! mixed usage stays consistent). A slot appears in [`snapshot`] only
//! once touched, keeping snapshots bit-identical with the old implicit
//! registration no matter how many instruments are pre-registered.
//!
//! Histograms use [`LatencyHistogram::bounded`] — O(1) memory streaming
//! summaries — so per-transaction hot paths never accumulate per-sample
//! storage.
//!
//! [`snapshot`]: MetricsRegistry::snapshot

use gdb_simnet::stats::LatencyHistogram;
use gdb_simnet::SimDuration;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Instrument name: a static constant or an owned labelled name.
pub type MetricName = Cow<'static, str>;

/// Handle to a pre-registered counter: a direct `Vec` slot index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterId(u32);

/// Handle to a pre-registered histogram: a direct `Vec` slot index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistId(u32);

/// Live instrument storage.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricName, u64>,
    gauges: BTreeMap<MetricName, f64>,
    histograms: BTreeMap<MetricName, LatencyHistogram>,
    /// Slot storage for handle-based counters, parallel to
    /// `counter_touched` / `counter_names`.
    counter_slots: Vec<u64>,
    /// Whether the slot has ever been written — untouched pre-registered
    /// slots are excluded from snapshots, so registration alone never
    /// changes a report.
    counter_touched: Vec<bool>,
    counter_names: Vec<MetricName>,
    counter_ids: BTreeMap<MetricName, u32>,
    hist_slots: Vec<LatencyHistogram>,
    hist_names: Vec<MetricName>,
    hist_ids: BTreeMap<MetricName, u32>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve `name` to a counter slot, creating it on first call. Any
    /// value the string path already accumulated is adopted by the slot.
    pub fn register_counter(&mut self, name: impl Into<MetricName>) -> CounterId {
        let name = name.into();
        if let Some(&id) = self.counter_ids.get(&name) {
            return CounterId(id);
        }
        let id = self.counter_slots.len() as u32;
        let existing = self.counters.remove(&name);
        self.counter_touched.push(existing.is_some());
        self.counter_slots.push(existing.unwrap_or(0));
        self.counter_names.push(name.clone());
        self.counter_ids.insert(name, id);
        CounterId(id)
    }

    /// Resolve `name` to a histogram slot, creating it on first call.
    pub fn register_histogram(&mut self, name: impl Into<MetricName>) -> HistId {
        let name = name.into();
        if let Some(&id) = self.hist_ids.get(&name) {
            return HistId(id);
        }
        let id = self.hist_slots.len() as u32;
        let existing = self.histograms.remove(&name);
        self.hist_slots
            .push(existing.unwrap_or_else(LatencyHistogram::bounded));
        self.hist_names.push(name.clone());
        self.hist_ids.insert(name, id);
        HistId(id)
    }

    /// Add `delta` to a registered counter — one indexed write, no lookup.
    #[inline]
    pub fn add(&mut self, id: CounterId, delta: u64) {
        let i = id.0 as usize;
        self.counter_slots[i] += delta;
        self.counter_touched[i] = true;
    }

    /// Increment a registered counter by one.
    #[inline]
    pub fn bump(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Record one latency observation into a registered histogram — one
    /// indexed write, no lookup.
    #[inline]
    pub fn record(&mut self, id: HistId, d: SimDuration) {
        self.hist_slots[id.0 as usize].record(d);
    }

    /// Add `delta` to counter `name` (created at zero on first use).
    /// Forwards to the slot if `name` was registered.
    pub fn count(&mut self, name: impl Into<MetricName>, delta: u64) {
        let name = name.into();
        if let Some(&id) = self.counter_ids.get(&name) {
            self.add(CounterId(id), delta);
        } else {
            *self.counters.entry(name).or_insert(0) += delta;
        }
    }

    pub fn incr(&mut self, name: impl Into<MetricName>) {
        self.count(name, 1);
    }

    /// Set counter `name` to an absolute value (for mirroring externally
    /// maintained totals into the registry at snapshot time).
    pub fn set_counter(&mut self, name: impl Into<MetricName>, value: u64) {
        let name = name.into();
        if let Some(&id) = self.counter_ids.get(&name) {
            let i = id as usize;
            self.counter_slots[i] = value;
            self.counter_touched[i] = true;
        } else {
            self.counters.insert(name, value);
        }
    }

    pub fn gauge(&mut self, name: impl Into<MetricName>, value: f64) {
        self.gauges.insert(name.into(), value);
    }

    /// Record one latency observation into bounded histogram `name`.
    /// Forwards to the slot if `name` was registered.
    pub fn observe(&mut self, name: impl Into<MetricName>, d: SimDuration) {
        let name = name.into();
        if let Some(&id) = self.hist_ids.get(&name) {
            self.record(HistId(id), d);
        } else {
            self.histograms
                .entry(name)
                .or_insert_with(LatencyHistogram::bounded)
                .record(d);
        }
    }

    /// Replace histogram `name` wholesale (for mirroring histograms
    /// maintained outside the registry into a snapshot).
    pub fn set_histogram(&mut self, name: impl Into<MetricName>, h: LatencyHistogram) {
        let name = name.into();
        if let Some(&id) = self.hist_ids.get(&name) {
            self.hist_slots[id as usize] = h;
        } else {
            self.histograms.insert(name, h);
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        if let Some(&id) = self.counter_ids.get(name) {
            return self.counter_slots[id as usize];
        }
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        if let Some(&id) = self.hist_ids.get(name) {
            let h = &self.hist_slots[id as usize];
            return if h.is_empty() { None } else { Some(h) };
        }
        self.histograms.get(name)
    }

    /// Freeze the registry into a comparable, serializable report.
    /// Registered slots are included only once touched (counters) or
    /// non-empty (histograms), so the report is identical whether an
    /// instrument went through the handle or the string path.
    pub fn snapshot(&self) -> MetricsReport {
        let mut metrics = BTreeMap::new();
        for (name, &v) in &self.counters {
            metrics.insert(name.to_string(), Metric::Counter(v));
        }
        for (i, &v) in self.counter_slots.iter().enumerate() {
            if self.counter_touched[i] {
                metrics.insert(self.counter_names[i].to_string(), Metric::Counter(v));
            }
        }
        for (name, &v) in &self.gauges {
            metrics.insert(name.to_string(), Metric::Gauge(v));
        }
        for (name, h) in &self.histograms {
            metrics.insert(name.to_string(), Metric::Histogram(HistSummary::of(h)));
        }
        for (i, h) in self.hist_slots.iter().enumerate() {
            if !h.is_empty() {
                metrics.insert(
                    self.hist_names[i].to_string(),
                    Metric::Histogram(HistSummary::of(h)),
                );
            }
        }
        MetricsReport { metrics }
    }
}

/// One snapshotted instrument.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(HistSummary),
}

/// Quantile summary of a histogram at snapshot time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistSummary {
    pub count: u64,
    pub sum_us: u64,
    pub min_us: u64,
    pub max_us: u64,
    pub mean_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    pub p999_us: u64,
}

impl HistSummary {
    /// Encode as a JSON object (member order is the schema order).
    pub fn to_json(&self) -> crate::Json {
        use crate::Json;
        Json::obj(vec![
            ("count", Json::u64(self.count)),
            ("sum_us", Json::u64(self.sum_us)),
            ("min_us", Json::u64(self.min_us)),
            ("max_us", Json::u64(self.max_us)),
            ("mean_us", Json::u64(self.mean_us)),
            ("p50_us", Json::u64(self.p50_us)),
            ("p95_us", Json::u64(self.p95_us)),
            ("p99_us", Json::u64(self.p99_us)),
            ("p999_us", Json::u64(self.p999_us)),
        ])
    }

    /// Decode a summary encoded by [`HistSummary::to_json`]. `ctx` names
    /// the field in error messages.
    pub fn from_json(v: &crate::Json, ctx: &str) -> Result<Self, String> {
        use crate::Json;
        let f = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{ctx}: missing {k}"))
        };
        Ok(HistSummary {
            count: f("count")?,
            sum_us: f("sum_us")?,
            min_us: f("min_us")?,
            max_us: f("max_us")?,
            mean_us: f("mean_us")?,
            p50_us: f("p50_us")?,
            p95_us: f("p95_us")?,
            p99_us: f("p99_us")?,
            p999_us: f("p999_us")?,
        })
    }

    pub fn of(h: &LatencyHistogram) -> Self {
        let b = h.to_summary();
        HistSummary {
            count: b.count(),
            sum_us: b.sum_us(),
            min_us: b.min_us(),
            max_us: b.max_us(),
            mean_us: if b.count() == 0 {
                0
            } else {
                b.sum_us() / b.count()
            },
            p50_us: b.percentile_us(50.0),
            p95_us: b.percentile_us(95.0),
            p99_us: b.percentile_us(99.0),
            p999_us: b.percentile_us(99.9),
        }
    }
}

/// A frozen, ordered view of every instrument. `PartialEq` lets tests
/// assert determinism across identical seeds directly.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsReport {
    pub metrics: BTreeMap<String, Metric>,
}

impl MetricsReport {
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn histogram(&self, name: &str) -> Option<&HistSummary> {
        match self.metrics.get(name) {
            Some(Metric::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Encode as a JSON object, one member per metric, in name order.
    /// Counters encode as bare numbers; gauges are tagged
    /// (`{"gauge": v}`) so an integral gauge value survives the round
    /// trip as a gauge instead of decoding as a counter.
    pub fn to_json(&self) -> crate::Json {
        use crate::Json;
        let mut pairs = Vec::with_capacity(self.metrics.len());
        for (name, m) in &self.metrics {
            let v = match m {
                Metric::Counter(c) => Json::u64(*c),
                Metric::Gauge(g) => Json::obj(vec![("gauge", Json::Num(*g))]),
                Metric::Histogram(h) => h.to_json(),
            };
            pairs.push((name.clone(), v));
        }
        Json::Obj(pairs)
    }

    /// Decode a report encoded by [`MetricsReport::to_json`]. A bare JSON
    /// number is a counter if integral; a `{"gauge": v}` object is a
    /// gauge; any other object is a histogram summary. A bare
    /// non-integral number still decodes as a gauge for artifacts written
    /// before gauges were tagged.
    pub fn from_json(v: &crate::Json) -> Result<Self, String> {
        use crate::Json;
        let pairs = v.as_obj().ok_or("metrics: expected object")?;
        let mut metrics = BTreeMap::new();
        for (name, val) in pairs {
            let m = match val {
                Json::Num(n) if *n == n.trunc() && *n >= 0.0 => Metric::Counter(*n as u64),
                Json::Num(n) => Metric::Gauge(*n),
                Json::Obj(members) if members.len() == 1 && members[0].0 == "gauge" => {
                    let g = members[0]
                        .1
                        .as_f64()
                        .ok_or_else(|| format!("metrics.{name}: gauge must be a number"))?;
                    Metric::Gauge(g)
                }
                Json::Obj(_) => {
                    Metric::Histogram(HistSummary::from_json(val, &format!("metrics.{name}"))?)
                }
                other => return Err(format!("metrics.{name}: unexpected {other:?}")),
            };
            metrics.insert(name.clone(), m);
        }
        Ok(MetricsReport { metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut r = MetricsRegistry::new();
        r.incr("a.events");
        r.count("a.events", 4);
        r.gauge("a.load", 0.5);
        assert_eq!(r.counter("a.events"), 5);
        assert_eq!(r.counter("missing"), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.events"), Some(5));
        assert_eq!(snap.gauge("a.load"), Some(0.5));
        assert_eq!(snap.counter("a.load"), None);
    }

    #[test]
    fn histograms_are_bounded() {
        let mut r = MetricsRegistry::new();
        for i in 0..10_000u64 {
            r.observe("x.lat_us", SimDuration::from_micros(100 + i % 50));
        }
        assert!(r.histogram("x.lat_us").unwrap().is_bounded());
        let snap = r.snapshot();
        let h = snap.histogram("x.lat_us").unwrap();
        assert_eq!(h.count, 10_000);
        assert!(h.p50_us >= 100 && h.p99_us <= 150);
        assert!(h.min_us == 100 && h.max_us == 149);
    }

    #[test]
    fn snapshot_equality_and_order() {
        let build = |n: u64| {
            let mut r = MetricsRegistry::new();
            r.count("z.last", n);
            r.count("a.first", 1);
            r.observe("m.lat_us", SimDuration::from_micros(n));
            r.snapshot()
        };
        assert_eq!(build(9), build(9));
        assert_ne!(build(9), build(10));
        let names: Vec<_> = build(1).metrics.keys().cloned().collect();
        assert_eq!(names, vec!["a.first", "m.lat_us", "z.last"]);
    }

    #[test]
    fn json_round_trip() {
        let mut r = MetricsRegistry::new();
        r.count("c.n", 3);
        r.gauge("g.v", 1.25);
        r.observe("h.lat_us", SimDuration::from_micros(42));
        let snap = r.snapshot();
        let text = snap.to_json().to_pretty();
        let back = MetricsReport::from_json(&crate::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn integral_gauge_round_trips_as_gauge() {
        // Regression: `gauge("a.load", 2.0)` used to decode as
        // `Metric::Counter(2)` because counters and gauges shared the
        // bare-number encoding.
        let mut r = MetricsRegistry::new();
        r.gauge("a.load", 2.0);
        r.count("a.n", 2);
        let snap = r.snapshot();
        let text = snap.to_json().to_pretty();
        let back = MetricsReport::from_json(&crate::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.gauge("a.load"), Some(2.0));
        assert_eq!(back.counter("a.load"), None);
        assert_eq!(back.counter("a.n"), Some(2));
    }

    #[test]
    fn legacy_untagged_gauges_still_decode() {
        // Artifacts written before gauges were tagged carry them as bare
        // non-integral numbers.
        let back =
            MetricsReport::from_json(&crate::Json::parse(r#"{"a.load": 0.5, "a.n": 3}"#).unwrap())
                .unwrap();
        assert_eq!(back.gauge("a.load"), Some(0.5));
        assert_eq!(back.counter("a.n"), Some(3));
    }

    #[test]
    fn handles_resolve_to_slots_and_interop_with_strings() {
        let mut r = MetricsRegistry::new();
        // Registration adopts a value the string path already recorded.
        r.count("a.events", 2);
        let c = r.register_counter("a.events");
        assert_eq!(r.register_counter("a.events"), c);
        r.add(c, 3);
        r.bump(c);
        // The string path forwards to the slot after registration.
        r.incr("a.events");
        assert_eq!(r.counter("a.events"), 7);

        let h = r.register_histogram("a.lat_us");
        r.record(h, SimDuration::from_micros(10));
        r.observe("a.lat_us", SimDuration::from_micros(30));
        assert_eq!(r.histogram("a.lat_us").unwrap().len(), 2);

        let snap = r.snapshot();
        assert_eq!(snap.counter("a.events"), Some(7));
        assert_eq!(snap.histogram("a.lat_us").unwrap().count, 2);
    }

    #[test]
    fn untouched_registered_instruments_stay_out_of_snapshots() {
        // Pre-registering a fleet of instruments at startup must not
        // change any snapshot until they are actually used — committed
        // baselines rely on snapshot-identical behavior.
        let mut with_handles = MetricsRegistry::new();
        let c = with_handles.register_counter("x.used");
        with_handles.register_counter("x.never");
        with_handles.register_histogram("x.lat_never_us");
        let h = with_handles.register_histogram("x.lat_us");
        with_handles.add(c, 5);
        with_handles.record(h, SimDuration::from_micros(7));

        let mut plain = MetricsRegistry::new();
        plain.count("x.used", 5);
        plain.observe("x.lat_us", SimDuration::from_micros(7));

        assert_eq!(with_handles.snapshot(), plain.snapshot());
    }
}
