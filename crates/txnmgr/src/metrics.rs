//! Metric names owned by the transaction-management subsystem.
//!
//! Naming scheme: `subsystem.noun[_unit]` (see DESIGN.md "Observability").
//! The constants live here so recorders in `globaldb` and readers in
//! benches agree on spelling; the registry itself is in `gdb-obs`.

/// Transactions committed.
pub const COMMITTED: &str = "txnmgr.committed";
/// Transactions aborted.
pub const ABORTED: &str = "txnmgr.aborted";
/// Lock-wait events observed during execution.
pub const LOCK_WAITS: &str = "txnmgr.lock_waits";
/// Total virtual time spent in commit wait, microseconds.
pub const COMMIT_WAIT_TOTAL_US: &str = "txnmgr.commit_wait_total_us";

/// End-to-end committed-transaction latency histogram.
pub const LATENCY_US: &str = "txnmgr.latency_us";

/// Per-phase latency histograms. The five phases tile a transaction:
/// begin → snapshot acquire → execute → prepare → commit wait →
/// replication ack. Prepare / commit-wait / replication-ack are recorded
/// for write transactions only.
pub const PHASE_SNAPSHOT_US: &str = "txnmgr.phase.snapshot_acquire_us";
pub const PHASE_EXECUTE_US: &str = "txnmgr.phase.execute_us";
pub const PHASE_PREPARE_US: &str = "txnmgr.phase.prepare_us";
pub const PHASE_COMMIT_WAIT_US: &str = "txnmgr.phase.commit_wait_us";
pub const PHASE_REPLICATION_ACK_US: &str = "txnmgr.phase.replication_ack_us";

/// The prefix shared by all phase histograms; benches strip it to build
/// the `phases_us` artifact section.
pub const PHASE_PREFIX: &str = "txnmgr.phase.";

use gdb_obs::{HistId, MetricsRegistry};

/// Pre-registered handles for the per-transaction hot path: the
/// end-to-end latency histogram and the five phase histograms recorded on
/// every commit. Resolved once at cluster construction; recording through
/// them is a direct slot write (see `gdb_obs::metrics`).
#[derive(Debug, Clone, Copy)]
pub struct TxnHandles {
    pub latency_us: HistId,
    pub phase_snapshot_us: HistId,
    pub phase_execute_us: HistId,
    pub phase_prepare_us: HistId,
    pub phase_commit_wait_us: HistId,
    pub phase_replication_ack_us: HistId,
}

impl TxnHandles {
    pub fn register(m: &mut MetricsRegistry) -> Self {
        TxnHandles {
            latency_us: m.register_histogram(LATENCY_US),
            phase_snapshot_us: m.register_histogram(PHASE_SNAPSHOT_US),
            phase_execute_us: m.register_histogram(PHASE_EXECUTE_US),
            phase_prepare_us: m.register_histogram(PHASE_PREPARE_US),
            phase_commit_wait_us: m.register_histogram(PHASE_COMMIT_WAIT_US),
            phase_replication_ack_us: m.register_histogram(PHASE_REPLICATION_ACK_US),
        }
    }
}
