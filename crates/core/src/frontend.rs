//! The cluster's SQL frontend: statement preparation, DDL execution, and
//! bulk loading — everything that turns SQL text into cluster state
//! changes outside the per-transaction path in [`crate::txn`].

use crate::cluster::Cluster;
use crate::stats::TxnOutcome;
use gdb_model::{GdbError, GdbResult, TableId, TableSchema, Timestamp};
use gdb_simnet::{SimDuration, SimTime};
use gdb_sqlengine::plan::BoundDdl;
use gdb_sqlengine::{prepare, ExecOutput, Prepared};
use gdb_txnmgr::TmMode;
use gdb_wal::RedoPayload;

impl Cluster {
    /// Prepare a SQL statement against the cluster catalog.
    pub fn prepare(&self, sql: &str) -> GdbResult<Prepared> {
        prepare(sql, &self.db.catalog)
    }

    /// Execute a DDL statement cluster-wide at the current virtual time.
    /// DDL replicates to every shard's redo stream and is tracked for the
    /// ROR visibility conditions (§IV-A).
    pub fn ddl(&mut self, sql: &str) -> GdbResult<()> {
        let now = self.sim.now();
        let prepared = prepare(sql, &self.db.catalog)?;
        let bound = match prepared.bound {
            gdb_sqlengine::BoundStatement::Ddl(d) => d,
            _ => return Err(GdbError::Plan("not a DDL statement".into())),
        };
        // DDL commits through the transaction manager like any write.
        let cn_idx = 0;
        self.db.sync_cn_clock(cn_idx, now);
        let ts = match self.db.cns[cn_idx].tm.mode {
            TmMode::GClock => {
                let ts = self.db.cns[cn_idx].tm.gclock.assign_timestamp(now);
                self.db.gtm.observe_commit(ts);
                ts
            }
            TmMode::Gtm => self.db.gtm.commit_gtm()?.0,
            TmMode::Dual => {
                let g = self.db.cns[cn_idx].tm.gclock.assign_timestamp(now);
                self.db.gtm.commit_dual(g)
            }
        };
        let txn = self.db.next_txn_id(cn_idx);

        let (kind, table_for_ddl) = match &bound {
            BoundDdl::CreateTable {
                name,
                columns,
                primary_key,
                distribution_key,
                distribution,
            } => {
                let id = self.db.catalog.allocate_table_id();
                let schema = TableSchema {
                    id,
                    name: name.clone(),
                    columns: columns.clone(),
                    primary_key: primary_key.clone(),
                    distribution_key: distribution_key.clone(),
                    distribution: distribution.clone(),
                };
                self.db.catalog.create_table(schema.clone())?;
                for shard in &mut self.db.shards {
                    shard.storage.create_table(schema.clone())?;
                }
                (gdb_wal::DdlKind::CreateTable(schema), id)
            }
            BoundDdl::DropTable(id) => {
                self.db.catalog.drop_table(*id)?;
                for shard in &mut self.db.shards {
                    shard.storage.drop_table(*id)?;
                }
                (gdb_wal::DdlKind::DropTable(*id), *id)
            }
            BoundDdl::CreateIndex {
                table,
                name,
                columns,
            } => {
                self.db
                    .catalog
                    .create_index(*table, name.clone(), columns.clone())?;
                for shard in &mut self.db.shards {
                    shard
                        .storage
                        .create_index(*table, name.clone(), columns.clone())?;
                }
                (
                    gdb_wal::DdlKind::CreateIndex {
                        table: *table,
                        index_name: name.clone(),
                        columns: columns.clone(),
                    },
                    *table,
                )
            }
            BoundDdl::DropIndex { name, table } => {
                self.db.catalog.drop_index(name)?;
                for shard in &mut self.db.shards {
                    shard.storage.drop_index(name)?;
                }
                (
                    gdb_wal::DdlKind::DropIndex {
                        table: *table,
                        index_name: name.clone(),
                    },
                    *table,
                )
            }
        };
        for shard in &mut self.db.shards {
            shard.log.append(
                now,
                txn,
                RedoPayload::Ddl {
                    commit_ts: ts,
                    kind: kind.clone(),
                },
            );
        }
        self.db.ddl.record(table_for_ddl, ts);
        self.db.cns[cn_idx].tm.finish_commit(ts);
        Ok(())
    }

    /// Bulk-load rows directly into primaries *and* replicas at timestamp
    /// 1 (benchmark setup: start from a fully synchronized state without
    /// paying per-row transaction costs).
    pub fn bulk_load(&mut self, table: TableId, rows: Vec<gdb_model::Row>) -> GdbResult<usize> {
        // Replicas learn about tables through DDL replay; make sure any
        // pending DDL has reached them before installing rows directly.
        self.sync_replicas_now();
        let schema = self.db.catalog.table(table)?.clone();
        let shard_count = self.db.shards.len() as u16;
        let ts = Timestamp(1);
        let mut n = 0;
        for mut row in rows {
            schema.coerce_row(&mut row);
            schema.check_row(&row)?;
            let key = schema.primary_key_of(&row);
            let targets: Vec<usize> = match schema.distribution {
                gdb_model::DistributionKind::Replicated => (0..self.db.shards.len()).collect(),
                _ => vec![schema.shard_of_pk(&key, shard_count).0 as usize],
            };
            for s in targets {
                let shard = &mut self.db.shards[s];
                shard
                    .storage
                    .apply_put(table, key.clone(), row.clone(), ts, SimTime::ZERO)?;
                for replica in &mut shard.replicas {
                    replica.applier.storage.apply_put(
                        table,
                        key.clone(),
                        row.clone(),
                        ts,
                        SimTime::ZERO,
                    )?;
                }
            }
            n += 1;
        }
        Ok(n)
    }

    /// Convenience: run one SQL statement as its own transaction.
    pub fn execute_sql(
        &mut self,
        cn: usize,
        at: SimTime,
        sql: &str,
        params: &[gdb_model::Datum],
    ) -> GdbResult<(ExecOutput, TxnOutcome)> {
        let prepared = self.prepare(sql)?;
        self.execute_prepared(cn, at, &prepared, params)
    }

    /// Convenience: run one prepared statement as its own transaction.
    pub fn execute_prepared(
        &mut self,
        cn: usize,
        at: SimTime,
        prepared: &Prepared,
        params: &[gdb_model::Datum],
    ) -> GdbResult<(ExecOutput, TxnOutcome)> {
        if matches!(prepared.bound, gdb_sqlengine::BoundStatement::Ddl(_)) {
            self.run_until(at);
            self.ddl(&prepared.sql)?;
            return Ok((
                ExecOutput::Count(0),
                TxnOutcome {
                    commit_ts: None,
                    snapshot: Timestamp::ZERO,
                    completed_at: self.sim.now(),
                    latency: SimDuration::ZERO,
                    shards_written: vec![],
                    used_replica: false,
                    aborted: false,
                },
            ));
        }
        let read_only = prepared.bound.is_read_only();
        self.run_transaction(cn, at, read_only, false, |txn| {
            txn.execute(prepared, params)
        })
    }

    /// Override the replication mode of one table (paper future work:
    /// "synchronous replicated tables that co-exist with asynchronous
    /// tables"). Commits touching the table pay the synchronous quorum
    /// wait; other tables keep the cluster-wide default.
    pub fn set_table_replication(
        &mut self,
        table_name: &str,
        mode: gdb_replication::ReplicationMode,
    ) -> GdbResult<()> {
        let id = self.db.catalog.table_by_name(table_name)?.id;
        self.db.table_replication.insert(id, mode);
        Ok(())
    }
}
