//! Fig. 6b — TPC-C throughput under injected network delay (Linux `tc`
//! style) on the One-Region cluster, measured at a CN that is NOT
//! co-located with the GTM server. Baseline GaussDB degrades by up to
//! ~90% at 100 ms; GlobalDB is flat (no timestamp round trips).
//!
//! Regenerate with: `cargo run -p gdb-bench --release --bin fig6b`

use gdb_bench::{artifact, emit_artifact, print_table, series_from_run, tpcc_run, BenchParams};
use gdb_workloads::tpcc::TpccMix;
use globaldb::{ClusterConfig, Geometry, ReplicationMode, SimDuration, TmMode};

fn main() {
    let params = BenchParams::from_env();
    let mut art = artifact("fig6b", &params);
    let delays_ms = [0u64, 10, 25, 50, 100];

    let mk = |mode: TmMode, delay_ms: u64| ClusterConfig {
        geometry: Geometry::OneRegion {
            injected_delay: SimDuration::from_millis(delay_ms),
        },
        tm_mode: mode,
        // Async replication for both so the isolated effect is the
        // transaction-management network overhead (§V-A).
        replication: ReplicationMode::Async,
        ..ClusterConfig::baseline_one_region()
    };

    let mut rows = Vec::new();
    let mut base_gtm = 0.0;
    let mut base_gclock = 0.0;
    for &delay in &delays_ms {
        // CN 1 is on a different host than the GTM (which lives on host 0).
        let localize = |wl: &mut gdb_workloads::tpcc::TpccWorkload| {
            wl.set_all_local();
            wl.pin_cn = Some(1);
            wl.local_warehouses_only = true;
        };
        let (mut c_gtm, r_gtm) = tpcc_run(
            mk(TmMode::Gtm, delay),
            &params,
            TpccMix::standard(),
            localize,
        );
        let (mut c_gclock, r_gclock) = tpcc_run(
            mk(TmMode::GClock, delay),
            &params,
            TpccMix::standard(),
            localize,
        );
        art.series.push(series_from_run(
            format!("gtm @ {delay}ms"),
            &mut c_gtm,
            &r_gtm,
        ));
        art.series.push(series_from_run(
            format!("gclock @ {delay}ms"),
            &mut c_gclock,
            &r_gclock,
        ));
        if delay == 0 {
            base_gtm = r_gtm.tpmc();
            base_gclock = r_gclock.tpmc();
        }
        rows.push(vec![
            format!("{delay} ms"),
            format!("{:.0}", r_gtm.tpmc()),
            format!("{:.0}%", 100.0 * r_gtm.tpmc() / base_gtm.max(1e-9)),
            format!("{:.0}", r_gclock.tpmc()),
            format!("{:.0}%", 100.0 * r_gclock.tpmc() / base_gclock.max(1e-9)),
        ]);
    }
    print_table(
        "Fig. 6b — TPC-C throughput vs injected delay (CN not co-located with GTM)",
        &[
            "injected delay",
            "baseline tpmC",
            "baseline vs 0ms",
            "GlobalDB tpmC",
            "GlobalDB vs 0ms",
        ],
        &rows,
    );
    println!(
        "Paper shape: baseline loses up to ~90% at 100 ms; GlobalDB holds \
         its throughput regardless of delay."
    );
    emit_artifact(&art);
}
