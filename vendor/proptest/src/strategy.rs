//! The [`Strategy`] trait and the combinators the workspace uses.

use core::ops::{Range, RangeInclusive};
use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: f,
        }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        (**self).generate(rng)
    }
}

/// Uniform choice among boxed strategies (the engine of `prop_oneof!`).
pub struct Union<T> {
    variants: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(variants: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        let idx = rng.gen_range(0..self.variants.len());
        self.variants[idx].generate(rng)
    }
}

macro_rules! numeric_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategies!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
