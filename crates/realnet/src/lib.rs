//! Real-cluster execution mode: run the GlobalDB reproduction over real
//! threads and loopback TCP instead of purely simulated delivery.
//!
//! The paper's system is an actual geo-distributed deployment; this
//! workspace reproduces it on `simnet` virtual time. Every wire
//! interaction already funnels through one seam —
//! [`globaldb::MessagePlane::charge`] → [`globaldb::Transport::deliver`]
//! — so this crate swaps what "deliver" means without touching
//! transaction, replication, or consistency logic:
//!
//! * [`transport::ThreadTransport`] — each silo (host) is a real OS
//!   thread; envelopes travel over in-process channels. The stepping
//!   stone: real scheduling and real measured delays, no sockets.
//! * [`transport::TcpTransport`] — each silo additionally runs a
//!   loopback-TCP accept loop and envelopes travel as length-prefixed
//!   frames ([`wire`]) over real sockets, Nagle disabled.
//!
//! The split follows the silo / message-router / membership layout of
//! actor-style cluster runtimes:
//!
//! ```text
//!              Cluster (driver thread, virtual time)
//!                 │  MessagePlane::charge(env)
//!                 ▼
//!         Transport::deliver ── topo.deliverable()? ── faults?
//!                 │ frame                        ▲
//!                 ▼                              │ measured delay
//!   ┌─────────┐  ┌─────────┐  ┌─────────┐       │
//!   │ silo 0  │  │ silo 1  │  │ silo 2  │  (thread per host:
//!   │ router  │  │ router  │  │ router  │   GTM / CN / DN roles)
//!   └─────────┘  └─────────┘  └─────────┘
//! ```
//!
//! Virtual time still orders the run — the driver charges each message
//! the *measured* wall-clock delay of its physical round trip, so the
//! whole deterministic machinery (event wheel, MVCC timestamps, RCP
//! rounds) operates unchanged on real latencies. Fault state lives in
//! the shared [`gdb_simnet::Topology`]: a chaos nemesis that partitions
//! regions or injects `tc`-style delay is consulted by the real
//! transports per message, so the same fault plans run physically.

pub mod fault;
pub mod harness;
pub mod membership;
pub mod router;
pub mod silo;
pub mod transport;
pub mod wire;

pub use fault::FaultController;
pub use harness::{Backend, RealCluster, RealnetReport, SiloReport};
pub use membership::{SiloSpec, StaticMembership};
pub use router::MessageRouter;
pub use silo::{SiloState, SiloStats, NKINDS};
pub use transport::{TcpTransport, ThreadTransport};
