//! Offline stand-in for `serde`. The workspace derives `Serialize` /
//! `Deserialize` on its model types as forward-looking markers but performs
//! no actual serialization, so marker traits plus no-op derives are enough.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
