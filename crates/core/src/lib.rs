//! GaussDB-Global ("GlobalDB") — the assembled geo-distributed database
//! cluster, reproducing the system of the ICDE 2024 paper.
//!
//! A [`Cluster`] wires together every substrate in this workspace on a
//! deterministic virtual-time engine:
//!
//! * stateless **computing nodes** (CNs) that parse/plan/execute SQL and
//!   carry per-node transaction-management state ([`gdb_txnmgr::CnTm`]);
//! * hash/range-sharded **data nodes** with MVCC storage and redo logs,
//!   each with replica DNs in other regions;
//! * a **GTM server** for centralized mode, **GClock** for decentralized
//!   mode, and the online **DUAL-mode transition** between them (§III);
//! * **asynchronous (or quorum-synchronous) redo shipping** with optional
//!   LZ4 compression, parallel replay, per-replica freshness tracking,
//!   the **RCP** service with heartbeats, and **skyline-based
//!   Read-On-Replica** routing (§IV).
//!
//! ## Simulation semantics
//!
//! Transactions execute their logic at their start event against real MVCC
//! state while their *latency* accumulates from the message sequence they
//! would incur (GTM round trips, shard RTTs, 2PC rounds, commit waits,
//! lock waits, quorum waits). Transactions therefore serialize in start
//! order; a reader that encounters a version whose commit is still in
//! flight at its own virtual time waits until that commit's completion
//! instant — the same blocking a real in-doubt transaction causes.
//! Redo records are staged with the virtual time of the operation that
//! produced them and sealed into the shipping log in virtual-time order,
//! so the log interleaving (including the out-of-timestamp-order commit
//! records that motivate the paper's PENDING_COMMIT safeguard) matches
//! what a real primary would emit.

pub mod cluster;
pub mod config;
pub mod event;
pub mod frontend;
pub(crate) mod hot;
pub mod lifecycle;
pub mod migrate;
pub mod net;
pub mod rcp_driver;
pub mod repl_driver;
pub mod ror;
pub mod shardlog;
pub mod stats;
pub mod transition;
pub mod txn;

pub use cluster::{Cluster, Cn, GlobalDb};
pub use config::{ClusterConfig, Geometry, RoutingPolicy};
pub use event::{CoreEvent, CoreSim};
pub use migrate::{Migration, MigrationKind, MigrationPhase, MigrationSpec, ShardLoad};
pub use net::{Envelope, MessagePlane, RpcKind, SimTransport, Transport, ALL_RPC_KINDS};
pub use repl_driver::{Replica, Shard};
pub use stats::{ClusterStats, TxnOutcome};

// Re-export the pieces callers commonly need.
pub use gdb_compress::Codec;
pub use gdb_model::{Datum, GdbError, GdbResult, Row, Timestamp};
pub use gdb_obs::{
    BenchArtifact, BenchSeries, HistSummary, Json, Metric, MetricsReport, Obs, Span, SpanKind,
    Tracer,
};
pub use gdb_replication::ReplicationMode;
pub use gdb_simnet::{SimDuration, SimTime};
pub use gdb_sqlengine::{ExecOutput, Prepared};
pub use gdb_txnmgr::{TmMode, TransitionDirection};
