//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{lex, Token};
use gdb_model::{Datum, GdbError, GdbResult};

/// Parse one SQL statement.
pub fn parse(sql: &str) -> GdbResult<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    // Optional trailing semicolon, then end of input.
    let _ = p.eat(&Token::Semicolon);
    if !p.at_end() {
        return Err(GdbError::Parse(format!(
            "unexpected trailing tokens at {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn next(&mut self) -> GdbResult<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| GdbError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) && {
            self.pos += 1;
            true
        }
    }

    fn expect_kw(&mut self, kw: &str) -> GdbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(GdbError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect(&mut self, t: Token) -> GdbResult<()> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(GdbError::Parse(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> GdbResult<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(GdbError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> GdbResult<Statement> {
        match self.peek() {
            Some(Token::Keyword(k)) => match k.as_str() {
                "SELECT" => self.select_stmt().map(Statement::Select),
                "INSERT" => self.insert_stmt(),
                "UPDATE" => self.update_stmt(),
                "DELETE" => self.delete_stmt(),
                "CREATE" => self.create_stmt(),
                "DROP" => self.drop_stmt(),
                other => Err(GdbError::Parse(format!("unsupported statement {other}"))),
            },
            other => Err(GdbError::Parse(format!(
                "expected statement, found {other:?}"
            ))),
        }
    }

    // ---- DDL ----------------------------------------------------------

    fn create_stmt(&mut self) -> GdbResult<Statement> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("TABLE") {
            return self.create_table();
        }
        // CREATE [UNIQUE] INDEX name ON table (cols)
        let _ = self.eat_kw("UNIQUE");
        self.expect_kw("INDEX")?;
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect(Token::LParen)?;
        let mut columns = vec![self.ident()?];
        while self.eat(&Token::Comma) {
            columns.push(self.ident()?);
        }
        self.expect(Token::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            columns,
        })
    }

    fn create_table(&mut self) -> GdbResult<Statement> {
        let name = self.ident()?;
        self.expect(Token::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                self.expect(Token::LParen)?;
                primary_key.push(self.ident()?);
                while self.eat(&Token::Comma) {
                    primary_key.push(self.ident()?);
                }
                self.expect(Token::RParen)?;
            } else {
                let col = self.ident()?;
                let data_type = self.data_type()?;
                let mut not_null = false;
                if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                    not_null = true;
                }
                columns.push(ColumnSpec {
                    name: col,
                    data_type,
                    not_null,
                });
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(Token::RParen)?;
        let distribute = if self.eat_kw("DISTRIBUTE") {
            self.expect_kw("BY")?;
            Some(self.dist_spec()?)
        } else {
            None
        };
        Ok(Statement::CreateTable(CreateTable {
            name,
            columns,
            primary_key,
            distribute,
        }))
    }

    fn data_type(&mut self) -> GdbResult<ParsedType> {
        match self.next()? {
            Token::Keyword(k) => {
                let t = match k.as_str() {
                    "INT" | "BIGINT" => ParsedType::Int,
                    "DECIMAL" => {
                        // Optional (precision, scale) — accepted, ignored
                        // (our decimals are scaled i64s).
                        if self.eat(&Token::LParen) {
                            let _ = self.next()?;
                            if self.eat(&Token::Comma) {
                                let _ = self.next()?;
                            }
                            self.expect(Token::RParen)?;
                        }
                        ParsedType::Decimal
                    }
                    "TEXT" => ParsedType::Text,
                    "VARCHAR" | "CHAR" => {
                        if self.eat(&Token::LParen) {
                            let _ = self.next()?;
                            self.expect(Token::RParen)?;
                        }
                        ParsedType::Text
                    }
                    "BOOLEAN" | "BOOL" => ParsedType::Bool,
                    other => return Err(GdbError::Parse(format!("unknown type {other}"))),
                };
                Ok(t)
            }
            other => Err(GdbError::Parse(format!("expected type, found {other:?}"))),
        }
    }

    fn dist_spec(&mut self) -> GdbResult<DistSpec> {
        if self.eat_kw("HASH") {
            self.expect(Token::LParen)?;
            let mut cols = vec![self.ident()?];
            while self.eat(&Token::Comma) {
                cols.push(self.ident()?);
            }
            self.expect(Token::RParen)?;
            Ok(DistSpec::Hash(cols))
        } else if self.eat_kw("RANGE") {
            self.expect(Token::LParen)?;
            let mut cols = vec![self.ident()?];
            while self.eat(&Token::Comma) {
                cols.push(self.ident()?);
            }
            self.expect(Token::RParen)?;
            let mut split_points = Vec::new();
            if self.eat_kw("SPLIT") {
                self.expect_kw("AT")?;
                self.expect(Token::LParen)?;
                loop {
                    match self.next()? {
                        Token::Int(v) => split_points.push(v),
                        Token::Minus => match self.next()? {
                            Token::Int(v) => split_points.push(-v),
                            other => {
                                return Err(GdbError::Parse(format!(
                                    "expected integer split point, found {other:?}"
                                )))
                            }
                        },
                        other => {
                            return Err(GdbError::Parse(format!(
                                "expected integer split point, found {other:?}"
                            )))
                        }
                    }
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(Token::RParen)?;
            }
            Ok(DistSpec::Range {
                columns: cols,
                split_points,
            })
        } else if self.eat_kw("REPLICATION") {
            Ok(DistSpec::Replication)
        } else {
            Err(GdbError::Parse(format!(
                "expected HASH/RANGE/REPLICATION, found {:?}",
                self.peek()
            )))
        }
    }

    fn drop_stmt(&mut self) -> GdbResult<Statement> {
        self.expect_kw("DROP")?;
        if self.eat_kw("TABLE") {
            Ok(Statement::DropTable(self.ident()?))
        } else if self.eat_kw("INDEX") {
            Ok(Statement::DropIndex {
                name: self.ident()?,
            })
        } else {
            Err(GdbError::Parse("expected TABLE or INDEX after DROP".into()))
        }
    }

    // ---- DML ----------------------------------------------------------

    fn insert_stmt(&mut self) -> GdbResult<Statement> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat(&Token::LParen) {
            let mut cols = vec![self.ident()?];
            while self.eat(&Token::Comma) {
                cols.push(self.ident()?);
            }
            self.expect(Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut values = Vec::new();
        loop {
            self.expect(Token::LParen)?;
            let mut row = vec![self.expr()?];
            while self.eat(&Token::Comma) {
                row.push(self.expr()?);
            }
            self.expect(Token::RParen)?;
            values.push(row);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            values,
        })
    }

    fn update_stmt(&mut self) -> GdbResult<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(Token::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            filter,
        })
    }

    fn delete_stmt(&mut self) -> GdbResult<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    fn select_stmt(&mut self) -> GdbResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let mut items = Vec::new();
        loop {
            if self.eat(&Token::Star) {
                items.push(SelectItem::Star);
            } else {
                items.push(SelectItem::Expr(self.expr()?));
                // Optional alias: AS name | bare name.
                if self.eat_kw("AS") || matches!(self.peek(), Some(Token::Ident(_))) {
                    let _ = self.ident()?; // alias, accepted and ignored
                }
            }
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let mut from = vec![self.ident()?];
        if self.eat(&Token::Comma) {
            from.push(self.ident()?);
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let col = self.ident()?;
            let desc = if self.eat_kw("DESC") {
                true
            } else {
                let _ = self.eat_kw("ASC");
                false
            };
            Some((col, desc))
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            match self.next()? {
                Token::Int(v) if v >= 0 => Some(v as u64),
                other => {
                    return Err(GdbError::Parse(format!(
                        "expected LIMIT count, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        let for_update = if self.eat_kw("FOR") {
            self.expect_kw("UPDATE")?;
            true
        } else {
            false
        };
        Ok(SelectStmt {
            items,
            from,
            filter,
            order_by,
            limit,
            for_update,
        })
    }

    // ---- Expressions (precedence climbing) -----------------------------

    fn expr(&mut self) -> GdbResult<PExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> GdbResult<PExpr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = PExpr::Bin(Box::new(lhs), BinOp::Or, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> GdbResult<PExpr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = PExpr::Bin(Box::new(lhs), BinOp::And, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> GdbResult<PExpr> {
        if self.eat_kw("NOT") {
            Ok(PExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> GdbResult<PExpr> {
        let lhs = self.add_expr()?;
        // BETWEEN / IN / IS NULL postfix forms.
        if self.eat_kw("BETWEEN") {
            let lo = self.add_expr()?;
            self.expect_kw("AND")?;
            let hi = self.add_expr()?;
            return Ok(PExpr::Between {
                expr: Box::new(lhs),
                lo: Box::new(lo),
                hi: Box::new(hi),
            });
        }
        if self.eat_kw("IN") {
            self.expect(Token::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat(&Token::Comma) {
                list.push(self.expr()?);
            }
            self.expect(Token::RParen)?;
            return Ok(PExpr::InList {
                expr: Box::new(lhs),
                list,
            });
        }
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(PExpr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Neq) => BinOp::Neq,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Lte) => BinOp::Lte,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Gte) => BinOp::Gte,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.add_expr()?;
        Ok(PExpr::Bin(Box::new(lhs), op, Box::new(rhs)))
    }

    fn add_expr(&mut self) -> GdbResult<PExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = PExpr::Bin(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> GdbResult<PExpr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = PExpr::Bin(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> GdbResult<PExpr> {
        if self.eat(&Token::Minus) {
            let inner = self.unary_expr()?;
            return Ok(PExpr::Bin(
                Box::new(PExpr::Lit(Datum::Int(0))),
                BinOp::Sub,
                Box::new(inner),
            ));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> GdbResult<PExpr> {
        match self.next()? {
            Token::Int(v) => Ok(PExpr::Lit(Datum::Int(v))),
            // Float literals become scale-2 decimals (TPC-C money).
            Token::Float(v) => Ok(PExpr::Lit(Datum::Decimal((v * 100.0).round() as i64))),
            Token::Str(s) => Ok(PExpr::Lit(Datum::Text(s))),
            Token::Param => {
                let idx = self.params;
                self.params += 1;
                Ok(PExpr::Param(idx))
            }
            Token::Keyword(k) => match k.as_str() {
                "NULL" => Ok(PExpr::Lit(Datum::Null)),
                "TRUE" => Ok(PExpr::Lit(Datum::Bool(true))),
                "FALSE" => Ok(PExpr::Lit(Datum::Bool(false))),
                "COUNT" | "SUM" | "MIN" | "MAX" | "AVG" => {
                    let func = match k.as_str() {
                        "COUNT" => AggFunc::Count,
                        "SUM" => AggFunc::Sum,
                        "MIN" => AggFunc::Min,
                        "MAX" => AggFunc::Max,
                        _ => AggFunc::Avg,
                    };
                    self.expect(Token::LParen)?;
                    if func == AggFunc::Count && self.eat(&Token::Star) {
                        self.expect(Token::RParen)?;
                        return Ok(PExpr::Agg(func, None, false));
                    }
                    let distinct = self.eat_kw("DISTINCT");
                    let arg = self.expr()?;
                    self.expect(Token::RParen)?;
                    Ok(PExpr::Agg(func, Some(Box::new(arg)), distinct))
                }
                other => Err(GdbError::Parse(format!("unexpected keyword {other}"))),
            },
            Token::Ident(name) => {
                // Qualified column `t.col`?
                if self.eat(&Token::Dot) {
                    let col = self.ident()?;
                    Ok(PExpr::Col(Some(name), col))
                } else {
                    Ok(PExpr::Col(None, name))
                }
            }
            Token::LParen => {
                let inner = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(inner)
            }
            other => Err(GdbError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table_with_distribution() {
        let s = parse(
            "CREATE TABLE warehouse (w_id INT NOT NULL, w_name VARCHAR(10), w_ytd DECIMAL(12,2), \
             PRIMARY KEY (w_id)) DISTRIBUTE BY HASH(w_id)",
        )
        .unwrap();
        match s {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.name, "warehouse");
                assert_eq!(ct.columns.len(), 3);
                assert!(ct.columns[0].not_null);
                assert_eq!(ct.columns[1].data_type, ParsedType::Text);
                assert_eq!(ct.columns[2].data_type, ParsedType::Decimal);
                assert_eq!(ct.primary_key, vec!["w_id"]);
                assert_eq!(ct.distribute, Some(DistSpec::Hash(vec!["w_id".into()])));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_range_distribution_with_splits() {
        let s = parse(
            "CREATE TABLE t (a INT NOT NULL, PRIMARY KEY(a)) \
             DISTRIBUTE BY RANGE(a) SPLIT AT (100, 200, 300)",
        )
        .unwrap();
        match s {
            Statement::CreateTable(ct) => {
                assert_eq!(
                    ct.distribute,
                    Some(DistSpec::Range {
                        columns: vec!["a".into()],
                        split_points: vec![100, 200, 300]
                    })
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_replicated_table() {
        let s = parse(
            "CREATE TABLE item (i_id INT NOT NULL, PRIMARY KEY(i_id)) DISTRIBUTE BY REPLICATION",
        )
        .unwrap();
        match s {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.distribute, Some(DistSpec::Replication))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_insert_with_params() {
        let s = parse("INSERT INTO t (a, b) VALUES (?, ?)").unwrap();
        match s {
            Statement::Insert {
                table,
                columns,
                values,
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
                assert_eq!(values, vec![vec![PExpr::Param(0), PExpr::Param(1)]]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_multi_row_insert() {
        let s = parse("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert { values, .. } => assert_eq!(values.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_select_full_featured() {
        let s = parse(
            "SELECT c_first, c_balance FROM customer \
             WHERE c_w_id = ? AND c_d_id = ? AND c_last = ? \
             ORDER BY c_first ASC LIMIT 10 FOR UPDATE",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.items.len(), 2);
                assert_eq!(sel.from, vec!["customer"]);
                assert!(sel.filter.is_some());
                assert_eq!(sel.order_by, Some(("c_first".into(), false)));
                assert_eq!(sel.limit, Some(10));
                assert!(sel.for_update);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_stock_level_join() {
        // The TPC-C Stock-Level query shape.
        let s = parse(
            "SELECT COUNT(DISTINCT s_i_id) FROM order_line, stock \
             WHERE ol_w_id = ? AND ol_d_id = ? AND ol_o_id BETWEEN ? AND ? \
             AND s_w_id = ? AND s_i_id = ol_i_id AND s_quantity < ?",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.from, vec!["order_line", "stock"]);
                match &sel.items[0] {
                    SelectItem::Expr(PExpr::Agg(AggFunc::Count, Some(_), true)) => {}
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_update_with_arithmetic() {
        let s = parse("UPDATE stock SET s_quantity = s_quantity - ? WHERE s_i_id = ?").unwrap();
        match s {
            Statement::Update { sets, filter, .. } => {
                assert_eq!(sets.len(), 1);
                assert!(matches!(sets[0].1, PExpr::Bin(_, BinOp::Sub, _)));
                assert!(filter.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_delete() {
        let s = parse("DELETE FROM new_order WHERE no_w_id = ? AND no_o_id = 5").unwrap();
        assert!(matches!(s, Statement::Delete { .. }));
    }

    #[test]
    fn parameters_numbered_in_order() {
        let s = parse("SELECT a FROM t WHERE b = ? AND c = ? AND d = ?").unwrap();
        match s {
            Statement::Select(sel) => {
                // Collect param indices from the filter tree.
                fn collect(e: &PExpr, out: &mut Vec<usize>) {
                    match e {
                        PExpr::Param(i) => out.push(*i),
                        PExpr::Bin(l, _, r) => {
                            collect(l, out);
                            collect(r, out);
                        }
                        _ => {}
                    }
                }
                let mut idx = Vec::new();
                collect(sel.filter.as_ref().unwrap(), &mut idx);
                assert_eq!(idx, vec![0, 1, 2]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        // a + b * c parses as a + (b * c).
        let s = parse("SELECT a + b * c FROM t").unwrap();
        match s {
            Statement::Select(sel) => match &sel.items[0] {
                SelectItem::Expr(PExpr::Bin(_, BinOp::Add, rhs)) => {
                    assert!(matches!(**rhs, PExpr::Bin(_, BinOp::Mul, _)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let s = parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(sel.filter.unwrap(), PExpr::Bin(_, BinOp::Or, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unary_minus_and_floats() {
        let s = parse("SELECT a FROM t WHERE b > -5 AND c < 3.5").unwrap();
        assert!(matches!(s, Statement::Select(_)));
    }

    #[test]
    fn parse_errors_are_errors() {
        assert!(parse("SELEC a FROM t").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("INSERT INTO").is_err());
        assert!(parse("SELECT a FROM t extra garbage ,,").is_err());
        assert!(parse("CREATE TABLE t (a INT, PRIMARY KEY(a)) DISTRIBUTE BY MAGIC(a)").is_err());
    }

    #[test]
    fn qualified_columns_and_is_null() {
        let s = parse("SELECT t.a FROM t WHERE t.b IS NOT NULL AND a IN (1, 2, 3)").unwrap();
        match s {
            Statement::Select(sel) => {
                assert!(matches!(
                    &sel.items[0],
                    SelectItem::Expr(PExpr::Col(Some(q), c)) if q == "t" && c == "a"
                ));
                assert!(sel.filter.is_some());
            }
            other => panic!("{other:?}"),
        }
    }
}
