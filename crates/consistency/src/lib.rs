//! The Replica Consistency Point (paper §IV-A, Fig. 4).
//!
//! With asynchronous replication each replica shard has a different amount
//! of redo applied, so "read the latest on each replica" would produce an
//! inconsistent cross-shard snapshot. GlobalDB instead computes the
//! **RCP**: the largest commit timestamp available on *all* replicas —
//! `RCP = min over replicas of (max applied commit timestamp)` — and runs
//! every read-on-replica query at that snapshot.
//!
//! * [`RcpCalculator`] — collects per-replica max timestamps and computes
//!   a *monotonically non-decreasing* RCP (clients may be re-routed
//!   between CNs; the RCP must never move backwards from their
//!   perspective).
//! * [`CollectorElection`] — one CN per remote site collects and
//!   distributes the RCP; if it dies another takes over.
//! * [`DdlTracker`] — the two DDL-visibility conditions a ROR query must
//!   pass (all DDL replayed, or all DDL *on the query's tables* replayed).

pub mod collector;
pub mod ddl;
pub mod metrics;
pub mod rcp;

pub use collector::CollectorElection;
pub use ddl::DdlTracker;
pub use rcp::RcpCalculator;
