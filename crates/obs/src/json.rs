//! A minimal JSON tree, writer, and parser.
//!
//! The vendored `serde` is a marker-trait facade with no serialization
//! machinery, so artifacts are built as explicit [`Json`] trees and
//! written/parsed here. Objects preserve insertion order (a `Vec` of
//! pairs, not a map), which keeps output byte-stable for determinism
//! assertions and git-friendly baselines.

use std::fmt::Write as _;

/// A JSON value. Numbers are `f64` (ample for the counters and
/// microsecond latencies the artifacts carry).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// u64 → Json number. Precision-safe for every value the artifacts
    /// produce (counts and microsecond sums far below 2^53).
    pub fn u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact single-line encoding.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty encoding with two-space indentation and a trailing newline
    /// (the format of committed `BENCH_*.json` baselines).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must consume all non-whitespace input).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

/// Deterministic number formatting: integers (the common case) print
/// without a fractional part; everything else uses shortest-roundtrip.
fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']' , found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    s.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = Json::obj(vec![
            ("name", Json::str("fig6a")),
            ("n", Json::u64(42)),
            ("pi", Json::Num(3.25)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::u64(1), Json::u64(2)])),
        ]);
        let text = v.to_compact();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(
            text,
            r#"{"name":"fig6a","n":42,"pi":3.25,"ok":true,"none":null,"arr":[1,2]}"#
        );
    }

    #[test]
    fn round_trip_pretty() {
        let v = Json::obj(vec![
            ("a", Json::Arr(vec![Json::str("x"), Json::Obj(vec![])])),
            ("b", Json::Arr(vec![])),
        ]);
        let text = v.to_pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn string_escapes() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let text = v.to_compact();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::str("Aé"));
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::str("西安↔东莞 café");
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn numbers() {
        for (text, n) in [("0", 0.0), ("-12", -12.0), ("3.5", 3.5), ("1e3", 1000.0)] {
            assert_eq!(Json::parse(text).unwrap(), Json::Num(n));
        }
        // Large integers print without an exponent.
        let mut s = String::new();
        write_num(&mut s, 1_234_567_890_123.0);
        assert_eq!(s, "1234567890123");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn get_and_accessors() {
        let v = Json::obj(vec![("k", Json::u64(7))]);
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(7));
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("k").is_none());
    }
}
