//! Ablation — RCP freshness vs heartbeat / collection cadence
//! (paper §IV-A: heartbeats guarantee the max commit timestamp advances
//! even on idle replicas; the collector CN periodically recomputes and
//! distributes the RCP).
//!
//! Sweeps the heartbeat interval under the read-only TPC-C workload and
//! reports the RCP lag (how stale ROR snapshots are) and throughput.
//!
//! Regenerate with: `cargo run -p gdb-bench --release --bin ablation_rcp`

use gdb_bench::{print_table, rcp_lag_ms, tpcc_run, BenchParams};
use gdb_simnet::SimDuration;
use gdb_workloads::tpcc::TpccMix;
use globaldb::ClusterConfig;

fn main() {
    let params = BenchParams::from_env();
    let mut rows = Vec::new();
    for hb_ms in [5u64, 10, 50, 200, 1000] {
        let config = ClusterConfig {
            heartbeat_interval: SimDuration::from_millis(hb_ms),
            rcp_interval: SimDuration::from_millis((hb_ms / 2).max(5)),
            ..ClusterConfig::globaldb_three_city()
        };
        let (cluster, report) = tpcc_run(config, &params, TpccMix::read_only(), |wl| {
            wl.multi_shard_read_fraction = 0.5;
        });
        rows.push(vec![
            format!("{hb_ms} ms"),
            format!("{:.0}", report.throughput_per_sec()),
            format!("{:.1} ms", rcp_lag_ms(&cluster)),
            format!("{}", cluster.db.stats().rcp_rounds),
            format!("{}", report.reads_on_replica),
        ]);
    }
    print_table(
        "Ablation — heartbeat cadence vs RCP freshness (read-only TPC-C)",
        &[
            "heartbeat",
            "txn/s (sim)",
            "RCP lag",
            "RCP rounds",
            "replica reads",
        ],
        &rows,
    );
    println!(
        "Expected: slower heartbeats ⇒ staler RCP snapshots (bounded \
         freshness knob); throughput is largely unaffected."
    );
}
