//! Driving the online GTM↔GClock transition over the simulated network.
//!
//! The protocol state machines live in `gdb-txnmgr`
//! ([`gdb_txnmgr::TransitionOrchestrator`], [`gdb_txnmgr::handle_cn_msg`]);
//! this module delivers their messages with real network latency and arms
//! the DUAL hold timer on the event queue. The cluster accepts
//! transactions throughout — that is the entire point of DUAL mode.

use crate::cluster::GlobalDb;
use gdb_simnet::Sim;
use gdb_txnmgr::{handle_cn_msg, TmMsg, TransitionDirection, TransitionEvent};

/// Start a transition at the current virtual time.
pub fn start_transition(
    db: &mut GlobalDb,
    sim: &mut Sim<GlobalDb>,
    direction: TransitionDirection,
) {
    db.last_transition_completed = None;
    let events = {
        let GlobalDb {
            orchestrator, gtm, ..
        } = db;
        orchestrator.start(direction, gtm)
    };
    enact(db, sim, events);
}

/// Apply orchestrator side effects: send messages (with latency) or arm
/// the hold timer.
fn enact(db: &mut GlobalDb, sim: &mut Sim<GlobalDb>, events: Vec<TransitionEvent>) {
    for ev in events {
        match ev {
            TransitionEvent::SendToCn { cn, msg } => {
                let delay = db
                    .topo
                    .one_way(db.gtm_node, db.cns[cn].node, 128)
                    // An unreachable CN retries after a beat; the protocol
                    // is idle-safe because acks gate every phase.
                    .unwrap_or(gdb_simnet::SimDuration::from_millis(50));
                sim.schedule_after(delay, move |w: &mut GlobalDb, sim| {
                    deliver_to_cn(w, sim, cn, msg.clone());
                });
            }
            TransitionEvent::StartHoldTimer { duration } => {
                sim.schedule_after(duration, |w: &mut GlobalDb, sim| {
                    let events = {
                        let GlobalDb {
                            orchestrator, gtm, ..
                        } = w;
                        orchestrator.on_hold_elapsed(gtm)
                    };
                    enact(w, sim, events);
                });
            }
            TransitionEvent::Completed { direction } => {
                db.last_transition_completed = Some(direction);
            }
        }
    }
}

fn deliver_to_cn(db: &mut GlobalDb, sim: &mut Sim<GlobalDb>, cn: usize, msg: TmMsg) {
    let now = sim.now();
    db.sync_cn_clock(cn, now);
    let reply = handle_cn_msg(cn, &mut db.cns[cn].tm, &msg, now);
    if let Some(reply) = reply {
        let delay = db
            .topo
            .one_way(db.cns[cn].node, db.gtm_node, 128)
            .unwrap_or(gdb_simnet::SimDuration::from_millis(50));
        sim.schedule_after(delay, move |w: &mut GlobalDb, sim| {
            let events = {
                let GlobalDb {
                    orchestrator, gtm, ..
                } = w;
                match &reply {
                    TmMsg::AckDual {
                        cn,
                        err_bound,
                        gclock_upper,
                    } => orchestrator.on_ack_dual(*cn, *err_bound, *gclock_upper, gtm),
                    TmMsg::AckFinal { cn } => orchestrator.on_ack_final(*cn),
                    _ => Vec::new(),
                }
            };
            enact(w, sim, events);
        });
    }
}
