//! The chaos runner: a TPC-C workload in the foreground, a fault plan
//! and the invariant oracle interleaved as simulation events, a heal-all
//! recovery phase, and final whole-database checks.

use crate::fault::Fault;
use crate::nemesis::{ClusterShape, NemesisConfig};
use crate::oracle::{FailoverWindow, Oracle};
use crate::plan::FaultPlan;
use crate::trace::new_trace;
use gdb_workloads::tpcc::{consistency, TpccMix, TpccScale, TpccWorkload};
use gdb_workloads::{run_workload, RunConfig, Workload};
use globaldb::{Cluster, ClusterConfig, GlobalDb, ReplicationMode, SimDuration, SimTime};
use std::rc::Rc;

/// Knobs for one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    pub cluster_seed: u64,
    pub workload_seed: u64,
    pub terminals: usize,
    /// Fault-free lead-in before the plan starts.
    pub warmup: SimDuration,
    /// The fault window (plan offsets land inside it).
    pub duration: SimDuration,
    /// Idle recovery time between heal-all and the final checks.
    pub grace: SimDuration,
    pub probe_interval: SimDuration,
    pub probe_keys: i64,
    /// Let the nemesis generator overlay concurrent fault episodes
    /// ([`NemesisConfig::with_overlap`]).
    pub overlap: bool,
    /// Let the nemesis generator draw online-migration episodes
    /// ([`NemesisConfig::with_migrations`]).
    pub migrations: bool,
    /// Let the nemesis generator draw elastic-membership episodes
    /// ([`NemesisConfig::with_elastic`]).
    pub elastic: bool,
    /// Replication mode under torment. Synchronous modes get the strict
    /// durability oracle; `Async` gets the bounded-loss check (a failover
    /// may lose at most the shipping-window tail).
    pub replication: ReplicationMode,
}

impl ChaosConfig {
    /// A short run sized for the integration suite.
    pub fn quick(seed: u64) -> Self {
        ChaosConfig {
            cluster_seed: seed,
            workload_seed: seed ^ 0xc4a0_5bad,
            terminals: 8,
            warmup: SimDuration::from_millis(500),
            duration: SimDuration::from_secs(3),
            grace: SimDuration::from_secs(2),
            probe_interval: SimDuration::from_millis(25),
            probe_keys: 4,
            overlap: false,
            migrations: false,
            elastic: false,
            replication: ReplicationMode::SyncRemoteQuorum { quorum: 1 },
        }
    }

    /// The cluster every chaos run torments: the Three-City GlobalDB
    /// deployment with two CNs per region (so collector leadership can
    /// fail over), quorum-synchronous replication (so every fault leaves
    /// acknowledged writes recoverable and errors retryable), and
    /// two-phase RCP rounds (so a collector crash can land mid-round).
    pub fn cluster_config(&self) -> ClusterConfig {
        let mut c = ClusterConfig::globaldb_three_city().with_seed(self.cluster_seed);
        c.cn_count = 6;
        c.replication = self.replication;
        c.rcp_two_phase = true;
        c
    }
}

/// What a chaos run produced.
#[derive(Debug)]
pub struct ChaosReport {
    pub plan_name: String,
    /// Fault applications + violations, in virtual-time order. Two runs
    /// of the same seed produce identical traces.
    pub trace: Vec<String>,
    pub violations: Vec<String>,
    pub txns_committed: u64,
    pub txns_aborted: u64,
    pub probe_writes: u64,
    pub probe_reads: u64,
    pub rcp_rounds: u64,
    pub rcp_rounds_abandoned: u64,
    pub collector_failovers: u64,
    pub tpcc_rows_verified: usize,
    /// The fault window (committed/aborted counts cover the whole run).
    pub duration: SimDuration,
    /// End-to-end commit latency over the whole run.
    pub latency: gdb_obs::HistSummary,
    /// Full metrics snapshot of the tormented cluster at the end.
    pub metrics: gdb_obs::MetricsReport,
}

impl ChaosReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn render(&self) -> String {
        let mut out = format!(
            "plan: {}\ncommitted: {}  aborted: {}  probe writes: {}  probe reads: {}\n\
             rcp rounds: {} ({} abandoned)  collector failovers: {}\n\
             tpcc rows verified: {}\n--- trace ---\n",
            self.plan_name,
            self.txns_committed,
            self.txns_aborted,
            self.probe_writes,
            self.probe_reads,
            self.rcp_rounds,
            self.rcp_rounds_abandoned,
            self.collector_failovers,
            self.tpcc_rows_verified,
        );
        for line in &self.trace {
            out.push_str(line);
            out.push('\n');
        }
        if self.violations.is_empty() {
            out.push_str("--- all invariants held ---\n");
        } else {
            out.push_str("--- VIOLATIONS ---\n");
            for v in &self.violations {
                out.push_str(v);
                out.push('\n');
            }
        }
        out
    }
}

/// Restore every outstanding fault: heal partitions, clear injected
/// delay, reconnect clock-sync daemons, and restart every downed node
/// through its typed recovery path.
pub fn heal_all(db: &mut GlobalDb, now: SimTime) {
    db.topo_mut().heal_all();
    db.set_injected_delay(SimDuration::ZERO);
    for cn in 0..db.cns().len() {
        db.resume_clock_sync(cn, now);
    }
    for shard in 0..db.shards().len() {
        if db.topo().is_node_down(db.shards()[shard].primary) {
            db.restart_primary(shard);
        }
        for replica in 0..db.shards()[shard].replicas.len() {
            if db
                .topo()
                .is_node_down(db.shards()[shard].replicas[replica].node)
            {
                db.restart_replica(shard, replica, now);
            }
        }
    }
    if db.topo().is_node_down(db.gtm_node()) {
        db.restart_gtm();
    }
    for cn in 0..db.cns().len() {
        if db.topo().is_node_down(db.cns()[cn].node) {
            db.restart_cn(cn, now);
        }
    }
    // Anything still down is an orphan (e.g. a crashed-and-replaced old
    // primary that never rejoined); bring it back so the topology is clean.
    for node in db.topo().down_nodes() {
        db.restore_node(node);
    }
}

/// Extract every primary-failover episode (crash followed by promotion
/// of the same shard) from an already-shifted plan, for the oracle's
/// bounded-loss durability check.
fn failover_windows(plan: &FaultPlan) -> Vec<FailoverWindow> {
    let mut out = Vec::new();
    for ev in &plan.events {
        if let Fault::PromoteReplica { shard, .. } = ev.fault {
            let crash_at = plan
                .events
                .iter()
                .filter(|e| {
                    e.at <= ev.at
                        && matches!(e.fault, Fault::CrashPrimary { shard: s } if s == shard)
                })
                .map(|e| e.at)
                .max();
            if let Some(crash_at) = crash_at {
                out.push(FailoverWindow {
                    crash_at,
                    promote_at: ev.at,
                });
            }
        }
    }
    out
}

/// Run TPC-C under `plan` and return the full report.
pub fn run_plan(plan: FaultPlan, cfg: &ChaosConfig) -> ChaosReport {
    run_plan_on(plan, cfg, cfg.cluster_config())
}

/// [`run_plan`] against an explicit cluster config — the entry point for
/// scenario files, whose `[topology]` table overrides the canonical
/// chaos shape (shard/replica/CN counts, geometry) while keeping the
/// oracle, heal-all recovery, and final-check machinery intact.
pub fn run_plan_on(plan: FaultPlan, cfg: &ChaosConfig, cc: ClusterConfig) -> ChaosReport {
    run_plan_prepped(plan, cfg, cc, |_| {})
}

/// [`run_plan_on`] with a post-load cluster hook, called after TPC-C
/// setup and oracle installation but before the plan is scheduled. A
/// scenario uses it to arm periodic events of its own (e.g. recurring
/// auto-rebalance ticks). The hook must schedule via the cluster's own
/// simulation so determinism is preserved.
pub fn run_plan_prepped(
    plan: FaultPlan,
    cfg: &ChaosConfig,
    cc: ClusterConfig,
    prep: impl FnOnce(&mut Cluster),
) -> ChaosReport {
    let mut cluster = Cluster::new(cc);
    let strict = cluster.db.config().replication.is_sync();
    let scale = TpccScale::tiny();
    let mut workload = TpccWorkload::new(scale, TpccMix::standard(), cfg.workload_seed);
    workload.setup(&mut cluster).expect("TPC-C setup");
    let oracle = Oracle::install(&mut cluster, cfg.probe_keys).expect("oracle install");
    prep(&mut cluster);

    let t0 = cluster.now();
    let start = t0 + cfg.warmup;
    let end = start + cfg.duration;
    let trace = new_trace();

    let plan = plan.shifted(SimDuration::from_nanos(start.as_nanos()));
    let plan_name = plan.name.clone();
    let failovers = failover_windows(&plan);
    oracle.state.borrow_mut().lossy = !strict && !failovers.is_empty();
    // Async replication may lose the tail of acked writes still in the
    // shipping pipeline when a primary dies: an unsealed batch (one flush
    // interval), a sealed batch in flight, plus scheduling slack — but
    // never more. That bound is what the oracle enforces.
    let loss_window = cluster.db.config().flush_interval * 2 + SimDuration::from_millis(250);
    plan.schedule(&mut cluster, Rc::clone(&trace));
    oracle.schedule(&mut cluster, start, end, cfg.probe_interval, &trace);

    run_workload(
        &mut cluster,
        &mut workload,
        RunConfig {
            terminals: cfg.terminals,
            duration: cfg.duration,
            warmup: cfg.warmup,
            think_time: SimDuration::from_millis(10),
        },
    );

    // Recovery: heal everything, let replication / RCP catch up.
    let now = cluster.now();
    heal_all(&mut cluster.db, now);
    cluster.run_until(now + cfg.grace);

    oracle.final_check(&mut cluster, strict, &failovers, loss_window);
    let tpcc_rows_verified = match consistency::verify(&mut cluster, &scale) {
        Ok(rows) => rows,
        Err(e) => {
            oracle
                .state
                .borrow_mut()
                .violations
                .push(format!("TPC-C consistency after {plan_name}: {e}"));
            0
        }
    };

    let trace_lines = trace.borrow().lines();
    let state = oracle.state.borrow();
    let metrics = cluster.metrics_snapshot();
    let latency = metrics
        .histogram(gdb_txnmgr::metrics::LATENCY_US)
        .cloned()
        .unwrap_or_default();
    ChaosReport {
        plan_name,
        trace: trace_lines,
        violations: state.violations.clone(),
        txns_committed: cluster.db.stats().committed,
        txns_aborted: cluster.db.stats().aborted,
        probe_writes: state.writes_committed,
        probe_reads: state.reads_checked,
        rcp_rounds: cluster.db.stats().rcp_rounds,
        rcp_rounds_abandoned: cluster.db.stats().rcp_rounds_abandoned,
        collector_failovers: cluster.db.stats().collector_failovers,
        tpcc_rows_verified,
        duration: cfg.duration,
        latency,
        metrics,
    }
}

/// Generate a nemesis schedule from `seed` and run it. The schedule is a
/// pure function of the seed and the cluster shape, so the whole run —
/// trace included — replays bit-for-bit.
pub fn run_nemesis(seed: u64, cfg: &ChaosConfig) -> ChaosReport {
    // Shape is determined by the config, not a live cluster; build the
    // shape from the same parameters `run_plan` will use.
    let cc = cfg.cluster_config();
    let shape = ClusterShape {
        shards: cc.shard_count,
        replicas_per_shard: cc.replicas_per_shard,
        cns: cc.cn_count,
        regions: match cc.geometry {
            globaldb::Geometry::OneRegion { .. } => 1,
            globaldb::Geometry::ThreeCity { .. } => 3,
            globaldb::Geometry::MultiRegion { regions, .. } => regions,
        },
    };
    let mut nemesis = NemesisConfig::new(seed, SimTime::ZERO, cfg.duration);
    if cfg.overlap {
        nemesis = nemesis.with_overlap();
    }
    if cfg.migrations {
        nemesis = nemesis.with_migrations();
    }
    if cfg.elastic {
        nemesis = nemesis.with_elastic();
    }
    let plan = crate::nemesis::generate(&nemesis, &shape);
    run_plan(plan, cfg)
}
