//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use core::marker::PhantomData;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

/// Strategy for the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut SmallRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut SmallRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> f64 {
        rng.gen_range(-1.0e9f64..1.0e9)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut SmallRng) -> f32 {
        rng.gen_range(-1.0e9f32..1.0e9)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut SmallRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        rng.gen_range(0x20u32..0x7f).try_into().unwrap_or('?')
    }
}
