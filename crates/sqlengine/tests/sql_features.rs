//! Broad SQL feature coverage through the full
//! prepare → bind → plan → execute pipeline on the in-memory engine.

use gdb_model::{Datum, GdbError, GdbResult, Row};
use gdb_sqlengine::access::{DataAccess, MemAccess};
use gdb_sqlengine::{execute, prepare, ExecOutput};

fn run(da: &mut MemAccess, sql: &str, params: &[Datum]) -> GdbResult<ExecOutput> {
    let p = prepare(sql, da.catalog())?;
    execute(&p.bound, params, da)
}

fn setup() -> MemAccess {
    let mut da = MemAccess::new();
    run(
        &mut da,
        "CREATE TABLE items (id INT NOT NULL, cat TEXT, qty INT, price DECIMAL, note TEXT, \
         PRIMARY KEY (id))",
        &[],
    )
    .unwrap();
    for (id, cat, qty, price, note) in [
        (1, "fruit", 10, 150, Some("fresh")),
        (2, "fruit", 0, 300, None),
        (3, "tool", 5, 2500, Some("heavy")),
        (4, "tool", 7, 1200, None),
        (5, "book", 2, 999, Some("rare")),
    ] {
        run(
            &mut da,
            "INSERT INTO items VALUES (?, ?, ?, ?, ?)",
            &[
                Datum::Int(id),
                Datum::Text(cat.into()),
                Datum::Int(qty),
                Datum::Decimal(price),
                note.map(|n| Datum::Text(n.into())).unwrap_or(Datum::Null),
            ],
        )
        .unwrap();
    }
    da
}

#[test]
fn in_list_predicate() {
    let mut da = setup();
    let out = run(
        &mut da,
        "SELECT id FROM items WHERE cat IN ('fruit', 'book') ORDER BY id",
        &[],
    )
    .unwrap();
    let ids: Vec<i64> = out
        .rows()
        .iter()
        .map(|r| r.0[0].as_int().unwrap())
        .collect();
    assert_eq!(ids, vec![1, 2, 5]);
}

#[test]
fn is_null_and_is_not_null() {
    let mut da = setup();
    let out = run(
        &mut da,
        "SELECT id FROM items WHERE note IS NULL ORDER BY id",
        &[],
    )
    .unwrap();
    let ids: Vec<i64> = out
        .rows()
        .iter()
        .map(|r| r.0[0].as_int().unwrap())
        .collect();
    assert_eq!(ids, vec![2, 4]);
    let out = run(
        &mut da,
        "SELECT COUNT(*) FROM items WHERE note IS NOT NULL",
        &[],
    )
    .unwrap();
    assert_eq!(out.scalar_int(), Some(3));
}

#[test]
fn null_never_equals_anything() {
    let mut da = setup();
    // note = 'fresh' matches only the non-null 'fresh'; NULL rows excluded.
    let out = run(&mut da, "SELECT COUNT(*) FROM items WHERE note = note", &[]).unwrap();
    // NULL = NULL is unknown ⇒ rows 2 and 4 excluded.
    assert_eq!(out.scalar_int(), Some(3));
}

#[test]
fn arithmetic_projection_and_filter() {
    let mut da = setup();
    let out = run(
        &mut da,
        "SELECT id, qty * 2 + 1 FROM items WHERE qty * price > 5000 ORDER BY id",
        &[],
    )
    .unwrap();
    let rows = out.rows();
    // qty*price: 1500, 0, 12500, 8400, 1998 → ids 3, 4.
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0], Row(vec![Datum::Int(3), Datum::Int(11)]));
    assert_eq!(rows[1], Row(vec![Datum::Int(4), Datum::Int(15)]));
}

#[test]
fn order_by_desc_and_limit_zero() {
    let mut da = setup();
    let out = run(
        &mut da,
        "SELECT id FROM items ORDER BY qty DESC LIMIT 2",
        &[],
    )
    .unwrap();
    let ids: Vec<i64> = out
        .rows()
        .iter()
        .map(|r| r.0[0].as_int().unwrap())
        .collect();
    assert_eq!(ids, vec![1, 4]);
    let out = run(&mut da, "SELECT id FROM items LIMIT 0", &[]).unwrap();
    assert!(out.rows().is_empty());
}

#[test]
fn order_by_text_column() {
    let mut da = setup();
    let out = run(&mut da, "SELECT cat FROM items ORDER BY cat LIMIT 1", &[]).unwrap();
    assert_eq!(out.rows()[0].0[0], Datum::Text("book".into()));
}

#[test]
fn multi_row_insert_and_count() {
    let mut da = setup();
    let out = run(
        &mut da,
        "INSERT INTO items VALUES (10, 'x', 1, 1, NULL), (11, 'x', 2, 2, NULL), (12, 'x', 3, 3, NULL)",
        &[],
    )
    .unwrap();
    assert_eq!(out.count(), 3);
    let out = run(&mut da, "SELECT COUNT(*) FROM items", &[]).unwrap();
    assert_eq!(out.scalar_int(), Some(8));
}

#[test]
fn multi_row_insert_is_atomic_per_statement_failure() {
    let mut da = setup();
    // The second row duplicates id 1: the statement errors after the first
    // row applied (single-node semantics; the cluster wraps statements in
    // transactions which roll back fully — covered in core tests).
    let err = run(
        &mut da,
        "INSERT INTO items VALUES (20, 'y', 1, 1, NULL), (1, 'y', 1, 1, NULL)",
        &[],
    )
    .unwrap_err();
    assert!(matches!(err, GdbError::DuplicateKey(_)));
}

#[test]
fn delete_with_residual_predicate() {
    let mut da = setup();
    let out = run(&mut da, "DELETE FROM items WHERE qty = 0", &[]).unwrap();
    assert_eq!(out.count(), 1);
    let out = run(&mut da, "SELECT COUNT(*) FROM items", &[]).unwrap();
    assert_eq!(out.scalar_int(), Some(4));
}

#[test]
fn not_and_parenthesized_boolean_logic() {
    let mut da = setup();
    let out = run(
        &mut da,
        "SELECT id FROM items WHERE NOT (cat = 'tool' OR qty = 0) ORDER BY id",
        &[],
    )
    .unwrap();
    let ids: Vec<i64> = out
        .rows()
        .iter()
        .map(|r| r.0[0].as_int().unwrap())
        .collect();
    assert_eq!(ids, vec![1, 5]);
}

#[test]
fn between_on_decimal_column() {
    let mut da = setup();
    let out = run(
        &mut da,
        "SELECT id FROM items WHERE price BETWEEN 500 AND 2000 ORDER BY id",
        &[],
    )
    .unwrap();
    let ids: Vec<i64> = out
        .rows()
        .iter()
        .map(|r| r.0[0].as_int().unwrap())
        .collect();
    assert_eq!(ids, vec![4, 5]);
}

#[test]
fn select_star_projection_width() {
    let mut da = setup();
    let out = run(&mut da, "SELECT * FROM items WHERE id = 1", &[]).unwrap();
    assert_eq!(out.rows()[0].len(), 5);
}

#[test]
fn update_then_index_consistency() {
    let mut da = setup();
    run(&mut da, "CREATE INDEX by_cat ON items (cat)", &[]).unwrap();
    run(&mut da, "UPDATE items SET cat = 'fruit' WHERE id = 3", &[]).unwrap();
    let out = run(
        &mut da,
        "SELECT COUNT(*) FROM items WHERE cat = 'fruit'",
        &[],
    )
    .unwrap();
    assert_eq!(out.scalar_int(), Some(3));
    let out = run(
        &mut da,
        "SELECT COUNT(*) FROM items WHERE cat = 'tool'",
        &[],
    )
    .unwrap();
    assert_eq!(out.scalar_int(), Some(1));
}

#[test]
fn avg_and_sum_with_nulls_skipped() {
    let mut da = setup();
    run(
        &mut da,
        "INSERT INTO items VALUES (9, 'fruit', NULL, NULL, NULL)",
        &[],
    )
    .unwrap();
    // AVG(qty) over {10, 0, 5, 7, 2} — the NULL row is skipped.
    let out = run(&mut da, "SELECT AVG(qty), COUNT(qty) FROM items", &[]).unwrap();
    assert_eq!(out.rows()[0], Row(vec![Datum::Int(4), Datum::Int(5)]));
}

#[test]
fn division_and_divide_by_zero() {
    let mut da = setup();
    let out = run(&mut da, "SELECT qty / 2 FROM items WHERE id = 1", &[]).unwrap();
    assert_eq!(out.rows()[0].0[0], Datum::Int(5));
    let err = run(&mut da, "SELECT qty / 0 FROM items WHERE id = 1", &[]).unwrap_err();
    assert!(matches!(err, GdbError::Execution(_)));
}

#[test]
fn unknown_parameter_index_errors() {
    let mut da = setup();
    let err = run(&mut da, "SELECT id FROM items WHERE id = ?", &[]).unwrap_err();
    assert!(matches!(err, GdbError::Execution(_)));
}

#[test]
fn qualified_star_join_columns() {
    let mut da = setup();
    run(
        &mut da,
        "CREATE TABLE cats (name TEXT NOT NULL, tax DECIMAL, PRIMARY KEY (name))",
        &[],
    )
    .unwrap();
    for (name, tax) in [("fruit", 5), ("tool", 19), ("book", 0)] {
        run(
            &mut da,
            "INSERT INTO cats VALUES (?, ?)",
            &[Datum::Text(name.into()), Datum::Decimal(tax)],
        )
        .unwrap();
    }
    let out = run(
        &mut da,
        "SELECT items.id, cats.tax FROM items, cats \
         WHERE cats.name = items.cat AND items.qty > 4 ORDER BY id",
        &[],
    )
    .unwrap();
    let rows = out.rows();
    assert_eq!(rows.len(), 3); // ids 1, 3, 4
    assert_eq!(rows[0], Row(vec![Datum::Int(1), Datum::Decimal(5)]));
    assert_eq!(rows[1], Row(vec![Datum::Int(3), Datum::Decimal(19)]));
}
