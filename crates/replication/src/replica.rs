//! The replica-side applier.
//!
//! Replays the primary's redo stream in LSN order. A transaction's writes
//! are buffered (and its tuples locked) until its COMMIT / ABORT record
//! replays — the paper's `PENDING_COMMIT` safeguard (§IV-A): because
//! commit records can appear in the log out of timestamp order, a reader
//! must block on tuples of in-progress transactions rather than miss an
//! earlier-timestamped commit that has not replayed yet. 2PC prepared
//! transactions likewise block visibility until `COMMIT_PREPARED` /
//! `ABORT_PREPARED` replays.

use gdb_model::{GdbError, GdbResult, Row, RowKey, TableId, Timestamp, TxnId};
use gdb_simnet::SimTime;
use gdb_storage::DataNodeStorage;
use gdb_wal::{DdlKind, Lsn, RedoPayload, RedoRecord};
use std::collections::{HashMap, HashSet};

/// Result of a replica point read.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicaReadResult {
    /// The visible row (or none) at the snapshot.
    Row(Option<(Row, Timestamp)>),
    /// The tuple is locked by an in-progress (pending/prepared)
    /// transaction; the reader must wait for more replay.
    Blocked { by: TxnId },
}

#[derive(Debug, Default)]
struct PendingTxn {
    /// Buffered writes: (table, key, new row or tombstone).
    writes: Vec<(TableId, RowKey, Option<Row>)>,
    /// Saw the PENDING_COMMIT marker.
    has_marker: bool,
    /// 2PC: prepared, awaiting the coordinator's outcome.
    prepared: bool,
}

/// Replay state for one replica data node.
#[derive(Debug)]
pub struct ReplicaApplier {
    pub storage: DataNodeStorage,
    pending: HashMap<TxnId, PendingTxn>,
    /// Tuple locks held by pending transactions.
    locked: HashMap<(TableId, RowKey), TxnId>,
    /// Next LSN expected (records must arrive in order; duplicates from
    /// recovery rewinds are skipped idempotently).
    next_lsn: Lsn,
    /// Largest commit timestamp replayed — the replica's contribution to
    /// the RCP (paper Fig. 4).
    max_commit_ts: Timestamp,
    pub records_applied: u64,
}

impl ReplicaApplier {
    pub fn new(storage: DataNodeStorage) -> Self {
        ReplicaApplier {
            storage,
            pending: HashMap::new(),
            locked: HashMap::new(),
            next_lsn: Lsn(0),
            max_commit_ts: Timestamp::ZERO,
            records_applied: 0,
        }
    }

    /// An applier resuming mid-stream: `storage` is a snapshot already
    /// containing everything below `from` (a recovered node re-seeded from
    /// the current primary), so replay continues from that LSN.
    pub fn resumed(storage: DataNodeStorage, from: Lsn, max_commit_ts: Timestamp) -> Self {
        ReplicaApplier {
            storage,
            pending: HashMap::new(),
            locked: HashMap::new(),
            next_lsn: from,
            max_commit_ts,
            records_applied: 0,
        }
    }

    /// Largest commit timestamp replayed so far.
    pub fn max_commit_ts(&self) -> Timestamp {
        self.max_commit_ts
    }

    /// The LSN up to which the stream has been applied (exclusive).
    pub fn applied_lsn(&self) -> Lsn {
        self.next_lsn
    }

    /// Number of transactions currently in progress (pending or prepared).
    pub fn pending_txns(&self) -> usize {
        self.pending.len()
    }

    /// Where a restarted replica resumes the redo stream after a crash.
    ///
    /// Everything below this LSN was replayed from the replica's durable
    /// WAL before the crash (applied rows, pending-transaction buffers and
    /// their tuple locks are all reconstructed from it on restart), while
    /// batches that were in flight on the network died with the connection
    /// and must be re-shipped. The shipping channel should be rewound here;
    /// re-delivered duplicates below the LSN are skipped idempotently.
    pub fn resume_from(&self) -> Lsn {
        self.next_lsn
    }

    /// Apply one record at virtual time `vtime`.
    pub fn apply(&mut self, rec: &RedoRecord, vtime: SimTime) -> GdbResult<()> {
        if rec.lsn < self.next_lsn {
            return Ok(()); // duplicate from a recovery rewind — idempotent
        }
        if rec.lsn != self.next_lsn {
            return Err(GdbError::Internal(format!(
                "replay gap: expected {}, got {}",
                self.next_lsn, rec.lsn
            )));
        }
        self.next_lsn = rec.lsn.next();
        self.records_applied += 1;

        match &rec.payload {
            RedoPayload::PendingCommit => {
                self.pending.entry(rec.txn).or_default().has_marker = true;
            }
            RedoPayload::Insert { table, key, row } => {
                self.buffer_write(rec.txn, *table, key.clone(), Some(row.clone()));
            }
            RedoPayload::Update {
                table,
                key,
                new_row,
            } => {
                self.buffer_write(rec.txn, *table, key.clone(), Some(new_row.clone()));
            }
            RedoPayload::Delete { table, key } => {
                self.buffer_write(rec.txn, *table, key.clone(), None);
            }
            RedoPayload::Prepare => {
                self.pending.entry(rec.txn).or_default().prepared = true;
            }
            RedoPayload::Commit { commit_ts } | RedoPayload::CommitPrepared { commit_ts } => {
                self.finish(rec.txn, Some(*commit_ts), vtime)?;
            }
            RedoPayload::Abort | RedoPayload::AbortPrepared => {
                self.finish(rec.txn, None, vtime)?;
            }
            RedoPayload::Ddl { commit_ts, kind } => {
                self.apply_ddl(kind)?;
                self.advance_ts(*commit_ts);
            }
            RedoPayload::Heartbeat { commit_ts } => {
                self.advance_ts(*commit_ts);
            }
            RedoPayload::Checkpoint { .. } => {}
        }
        Ok(())
    }

    /// Apply a whole batch in order.
    pub fn apply_batch(&mut self, records: &[RedoRecord], vtime: SimTime) -> GdbResult<()> {
        for rec in records {
            self.apply(rec, vtime)?;
        }
        Ok(())
    }

    fn buffer_write(&mut self, txn: TxnId, table: TableId, key: RowKey, row: Option<Row>) {
        self.locked.insert((table, key.clone()), txn);
        self.pending
            .entry(txn)
            .or_default()
            .writes
            .push((table, key, row));
    }

    fn finish(
        &mut self,
        txn: TxnId,
        commit_ts: Option<Timestamp>,
        vtime: SimTime,
    ) -> GdbResult<()> {
        let state = self.pending.remove(&txn).unwrap_or_default();
        for (table, key, row) in state.writes {
            if self.locked.get(&(table, key.clone())) == Some(&txn) {
                self.locked.remove(&(table, key.clone()));
            }
            if let Some(ts) = commit_ts {
                match row {
                    Some(r) => self.storage.apply_put(table, key, r, ts, vtime)?,
                    None => self.storage.apply_delete(table, key, ts, vtime)?,
                }
            }
        }
        if let Some(ts) = commit_ts {
            self.advance_ts(ts);
        }
        Ok(())
    }

    fn advance_ts(&mut self, ts: Timestamp) {
        self.max_commit_ts = self.max_commit_ts.max(ts);
    }

    fn apply_ddl(&mut self, kind: &DdlKind) -> GdbResult<()> {
        match kind {
            DdlKind::CreateTable(schema) => self.storage.create_table(schema.clone()),
            DdlKind::DropTable(id) => self.storage.drop_table(*id),
            DdlKind::CreateIndex {
                table,
                index_name,
                columns,
            } => self
                .storage
                .create_index(*table, index_name.clone(), columns.clone())
                .map(|_| ()),
            DdlKind::DropIndex { index_name, .. } => self.storage.drop_index(index_name),
        }
    }

    /// Point read honouring PENDING_COMMIT locks.
    pub fn read(
        &mut self,
        table: TableId,
        key: &RowKey,
        snapshot: Timestamp,
    ) -> GdbResult<ReplicaReadResult> {
        if let Some(&by) = self.locked.get(&(table, key.clone())) {
            return Ok(ReplicaReadResult::Blocked { by });
        }
        let vis = self.storage.read(table, key, snapshot)?;
        Ok(ReplicaReadResult::Row(
            vis.map(|v| (v.row.clone(), v.commit_ts)),
        ))
    }

    /// True if any in-progress transaction holds a lock on this table
    /// within `[lo, hi]` — range scans block conservatively.
    pub fn is_range_blocked(
        &self,
        table: TableId,
        lo: Option<&RowKey>,
        hi: Option<&RowKey>,
    ) -> bool {
        self.locked
            .keys()
            .any(|(t, k)| *t == table && lo.is_none_or(|l| k >= l) && hi.is_none_or(|h| k <= h))
    }

    /// Keys currently locked (testing / diagnostics).
    pub fn locked_keys(&self) -> HashSet<(TableId, RowKey)> {
        self.locked.keys().cloned().collect()
    }

    /// True if an in-progress transaction holds this exact tuple.
    pub fn is_key_locked(&self, table: TableId, key: &RowKey) -> bool {
        self.locked.contains_key(&(table, key.clone()))
    }

    /// Consume the applier and take its storage — failover promotion: the
    /// replica becomes a primary. In-progress (pending/prepared)
    /// transactions are discarded: their coordinators died with the old
    /// primary and their writes never committed.
    pub fn into_storage(self) -> DataNodeStorage {
        self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdb_model::{ColumnDef, DataType, Datum, SchemaBuilder, TableSchema};
    use gdb_wal::RedoBuffer;

    fn schema() -> TableSchema {
        SchemaBuilder::new("t")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .column(ColumnDef::new("v", DataType::Text))
            .primary_key(&["id"])
            .build(TableId(0))
            .unwrap()
    }

    fn applier() -> ReplicaApplier {
        let mut st = DataNodeStorage::new();
        st.create_table(schema()).unwrap();
        ReplicaApplier::new(st)
    }

    fn row(id: i64, v: &str) -> Row {
        Row(vec![Datum::Int(id), Datum::Text(v.into())])
    }

    fn k(id: i64) -> RowKey {
        RowKey::single(id)
    }

    /// Writes are invisible until the commit record replays.
    #[test]
    fn writes_buffer_until_commit() {
        let mut a = applier();
        let mut buf = RedoBuffer::new();
        let txn = TxnId(1);
        buf.append(txn, RedoPayload::PendingCommit);
        buf.append(
            txn,
            RedoPayload::Insert {
                table: TableId(0),
                key: k(1),
                row: row(1, "x"),
            },
        );
        let batch = buf.batch_from(Lsn(0), 10);
        a.apply_batch(&batch.records, SimTime::ZERO).unwrap();

        // Blocked: the tuple is locked by the in-progress transaction.
        assert_eq!(
            a.read(TableId(0), &k(1), Timestamp(100)).unwrap(),
            ReplicaReadResult::Blocked { by: txn }
        );
        assert_eq!(a.max_commit_ts(), Timestamp::ZERO);

        buf.append(
            txn,
            RedoPayload::Commit {
                commit_ts: Timestamp(50),
            },
        );
        let batch2 = buf.batch_from(a.applied_lsn(), 10);
        a.apply_batch(&batch2.records, SimTime::from_millis(5))
            .unwrap();
        assert_eq!(a.max_commit_ts(), Timestamp(50));
        match a.read(TableId(0), &k(1), Timestamp(50)).unwrap() {
            ReplicaReadResult::Row(Some((r, ts))) => {
                assert_eq!(r, row(1, "x"));
                assert_eq!(ts, Timestamp(50));
            }
            other => panic!("{other:?}"),
        }
        // Below the commit ts the row is invisible but not blocked.
        assert_eq!(
            a.read(TableId(0), &k(1), Timestamp(49)).unwrap(),
            ReplicaReadResult::Row(None)
        );
    }

    #[test]
    fn aborted_writes_vanish_and_unlock() {
        let mut a = applier();
        let mut buf = RedoBuffer::new();
        buf.append(
            TxnId(1),
            RedoPayload::Insert {
                table: TableId(0),
                key: k(1),
                row: row(1, "junk"),
            },
        );
        buf.append(TxnId(1), RedoPayload::Abort);
        a.apply_batch(&buf.batch_from(Lsn(0), 10).records, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            a.read(TableId(0), &k(1), Timestamp(100)).unwrap(),
            ReplicaReadResult::Row(None)
        );
        assert!(a.locked_keys().is_empty());
        assert_eq!(a.pending_txns(), 0);
    }

    /// 2PC: prepared transactions keep tuples locked until the outcome.
    #[test]
    fn prepared_txn_blocks_until_outcome() {
        let mut a = applier();
        let mut buf = RedoBuffer::new();
        let txn = TxnId(7);
        buf.append(
            txn,
            RedoPayload::Insert {
                table: TableId(0),
                key: k(2),
                row: row(2, "2pc"),
            },
        );
        buf.append(txn, RedoPayload::Prepare);
        a.apply_batch(&buf.batch_from(Lsn(0), 10).records, SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            a.read(TableId(0), &k(2), Timestamp(100)).unwrap(),
            ReplicaReadResult::Blocked { .. }
        ));
        buf.append(
            txn,
            RedoPayload::CommitPrepared {
                commit_ts: Timestamp(30),
            },
        );
        a.apply_batch(&buf.batch_from(a.applied_lsn(), 10).records, SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            a.read(TableId(0), &k(2), Timestamp(30)).unwrap(),
            ReplicaReadResult::Row(Some(_))
        ));
        assert_eq!(a.max_commit_ts(), Timestamp(30));
    }

    /// The paper's out-of-order commit scenario: COMMIT(T2, ts=10) appears
    /// in the log before COMMIT(T1, ts=9). A reader at snapshot 10 must
    /// not miss T1 — it blocks on T1's locked tuple until T1 replays.
    #[test]
    fn out_of_order_commits_block_readers() {
        let mut a = applier();
        let mut buf = RedoBuffer::new();
        let (t1, t2) = (TxnId(1), TxnId(2));
        buf.append(t1, RedoPayload::PendingCommit);
        buf.append(t2, RedoPayload::PendingCommit);
        buf.append(
            t1,
            RedoPayload::Insert {
                table: TableId(0),
                key: k(1),
                row: row(1, "t1"),
            },
        );
        buf.append(
            t2,
            RedoPayload::Insert {
                table: TableId(0),
                key: k(2),
                row: row(2, "t2"),
            },
        );
        // T2's commit (ts 10) hits the log before T1's (ts 9).
        buf.append(
            t2,
            RedoPayload::Commit {
                commit_ts: Timestamp(10),
            },
        );
        a.apply_batch(&buf.batch_from(Lsn(0), 10).records, SimTime::ZERO)
            .unwrap();
        assert_eq!(a.max_commit_ts(), Timestamp(10));
        // Reading T1's key at snapshot 10: blocked, NOT silently missing.
        assert!(matches!(
            a.read(TableId(0), &k(1), Timestamp(10)).unwrap(),
            ReplicaReadResult::Blocked { .. }
        ));
        // T1's commit arrives; now visible with ts 9 <= 10.
        buf.append(
            t1,
            RedoPayload::Commit {
                commit_ts: Timestamp(9),
            },
        );
        a.apply_batch(&buf.batch_from(a.applied_lsn(), 10).records, SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            a.read(TableId(0), &k(1), Timestamp(10)).unwrap(),
            ReplicaReadResult::Row(Some(_))
        ));
    }

    #[test]
    fn heartbeats_advance_max_commit_ts() {
        let mut a = applier();
        let mut buf = RedoBuffer::new();
        buf.append(
            TxnId(0),
            RedoPayload::Heartbeat {
                commit_ts: Timestamp(123),
            },
        );
        a.apply_batch(&buf.batch_from(Lsn(0), 10).records, SimTime::ZERO)
            .unwrap();
        assert_eq!(a.max_commit_ts(), Timestamp(123));
    }

    #[test]
    fn ddl_replay_creates_and_drops_tables() {
        let mut a = applier();
        let new_schema = SchemaBuilder::new("t2")
            .column(ColumnDef::new("id", DataType::Int).not_null())
            .primary_key(&["id"])
            .build(TableId(5))
            .unwrap();
        let mut buf = RedoBuffer::new();
        buf.append(
            TxnId(0),
            RedoPayload::Ddl {
                commit_ts: Timestamp(40),
                kind: DdlKind::CreateTable(new_schema),
            },
        );
        a.apply_batch(&buf.batch_from(Lsn(0), 10).records, SimTime::ZERO)
            .unwrap();
        assert!(a.storage.catalog().table_by_name("t2").is_ok());
        assert_eq!(a.max_commit_ts(), Timestamp(40));
        buf.append(
            TxnId(0),
            RedoPayload::Ddl {
                commit_ts: Timestamp(41),
                kind: DdlKind::DropTable(TableId(5)),
            },
        );
        a.apply_batch(&buf.batch_from(a.applied_lsn(), 10).records, SimTime::ZERO)
            .unwrap();
        assert!(a.storage.catalog().table_by_name("t2").is_err());
    }

    #[test]
    fn gaps_rejected_duplicates_skipped() {
        let mut a = applier();
        let mut buf = RedoBuffer::new();
        buf.append(TxnId(1), RedoPayload::Abort);
        buf.append(TxnId(2), RedoPayload::Abort);
        let b = buf.batch_from(Lsn(0), 10);
        a.apply_batch(&b.records, SimTime::ZERO).unwrap();
        // Re-applying the same batch is a no-op.
        a.apply_batch(&b.records, SimTime::ZERO).unwrap();
        assert_eq!(a.records_applied, 2);
        // A gap is an internal error.
        let gap = RedoRecord {
            lsn: Lsn(5),
            txn: TxnId(3),
            payload: RedoPayload::Abort,
        };
        assert!(a.apply(&gap, SimTime::ZERO).is_err());
    }

    #[test]
    fn range_block_detection() {
        let mut a = applier();
        let mut buf = RedoBuffer::new();
        buf.append(
            TxnId(1),
            RedoPayload::Insert {
                table: TableId(0),
                key: k(5),
                row: row(5, "pending"),
            },
        );
        a.apply_batch(&buf.batch_from(Lsn(0), 10).records, SimTime::ZERO)
            .unwrap();
        assert!(a.is_range_blocked(TableId(0), Some(&k(1)), Some(&k(9))));
        assert!(!a.is_range_blocked(TableId(0), Some(&k(6)), Some(&k(9))));
        assert!(!a.is_range_blocked(TableId(1), None, None));
        assert!(a.is_range_blocked(TableId(0), None, None));
    }
}
